//! The negotiated wire codecs: JSON (the compatibility default) and a
//! compact binary encoding that skips float rendering/parsing on the hot
//! serve path.
//!
//! # Negotiation
//!
//! Framing is codec-independent: both codecs ride the same 4-byte
//! big-endian length prefix ([`crate::protocol::read_frame`]). A legacy
//! client simply sends JSON request frames and is served JSON — nothing
//! changed for it. A binary-capable client sends, as the **first frame**
//! on the connection, a 5-byte hello: the magic [`BINARY_MAGIC`]
//! (`"OBFB"`) followed by the version byte it proposes. JSON payloads
//! always start with `{`, so the magic is unambiguous. The server
//! answers with the same 5 bytes carrying the version it accepted
//! ([`BINARY_VERSION`] today) and both sides switch to binary for every
//! subsequent frame; a server configured JSON-only (or offered a version
//! it does not speak) instead answers a typed `bad_codec` **JSON** error
//! and the connection continues in JSON — negotiation failure is an
//! answer, never a hangup.
//!
//! # Binary encoding
//!
//! Fixed-width little-endian scalars, `u32`-length-prefixed UTF-8
//! strings, one leading tag byte per request/response kind and per
//! [`Json`] value — see DESIGN.md §14 for the byte-level layout. The
//! encoding is a pure function of the decoded value (like the canonical
//! JSON rendering), so equal values produce byte-identical frames and
//! the wire-equivalence suite can compare across codecs by comparing
//! decoded values. Floats travel as raw IEEE-754 bits (`f64::to_bits`),
//! which both avoids the shortest-round-trip formatting cost that
//! dominates JSON serve time and makes the round trip exact by
//! construction.
//!
//! Decoding is **zero-copy until ownership is needed**: [`BinReader`]
//! hands out `&str`/`&[u8]` slices borrowed straight from the frame
//! payload (UTF-8 validated in place, length-checked before any
//! allocation), and only the retained fields of the final owned
//! [`Request`]/[`Response`] are copied out of the buffer.

use obfuscade::json::Json;

use crate::protocol::{
    DetectSpec, JobSpec, Request, RequestBody, Response, SanitizeSpec, ServiceError, MAX_FRAME,
};
use am_mesh::Resolution;
use am_slicer::Orientation;

/// First four bytes of a binary hello/ack frame. `0x4F 0x42 0x46 0x42`.
pub const BINARY_MAGIC: [u8; 4] = *b"OBFB";

/// The binary codec version this build speaks.
pub const BINARY_VERSION: u8 = 1;

/// A wire codec for request/response payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Length-prefixed canonical JSON — the compatibility codec and the
    /// default for clients that never negotiate.
    #[default]
    Json,
    /// The negotiated compact binary encoding.
    Binary,
}

impl Codec {
    /// Stable lowercase name (CLI flag value, metrics field).
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Json => "json",
            Codec::Binary => "binary",
        }
    }

    /// Parses a CLI flag value.
    ///
    /// # Errors
    ///
    /// The unknown name.
    pub fn from_name(name: &str) -> Result<Codec, String> {
        match name {
            "json" => Ok(Codec::Json),
            "binary" => Ok(Codec::Binary),
            other => Err(format!("unknown codec `{other}` (json|binary)")),
        }
    }

    /// Encodes a request payload under this codec.
    pub fn encode_request(&self, request: &Request) -> Vec<u8> {
        match self {
            Codec::Json => request.encode(),
            Codec::Binary => encode_request_binary(request),
        }
    }

    /// Decodes a request payload under this codec.
    ///
    /// # Errors
    ///
    /// A description of the first malformed byte/field.
    pub fn decode_request(&self, payload: &[u8]) -> Result<Request, String> {
        match self {
            Codec::Json => Request::decode(payload),
            Codec::Binary => decode_request_binary(payload),
        }
    }

    /// Encodes a response payload under this codec.
    pub fn encode_response(&self, response: &Response) -> Vec<u8> {
        match self {
            Codec::Json => response.encode(),
            Codec::Binary => encode_response_binary(response),
        }
    }

    /// Decodes a response payload under this codec.
    ///
    /// # Errors
    ///
    /// A description of the first malformed byte/field.
    pub fn decode_response(&self, payload: &[u8]) -> Result<Response, String> {
        match self {
            Codec::Json => Response::decode(payload),
            Codec::Binary => decode_response_binary(payload),
        }
    }
}

/// The 5-byte hello a binary-capable client sends as its first frame
/// (also the ack shape the server answers with).
pub fn encode_hello(version: u8) -> Vec<u8> {
    let mut payload = BINARY_MAGIC.to_vec();
    payload.push(version);
    payload
}

/// Does this first frame open a binary negotiation? (Any payload leading
/// with the magic — a malformed tail is still a negotiation attempt, it
/// just fails with `bad_codec` rather than being fed to the JSON parser.)
pub fn is_binary_hello(payload: &[u8]) -> bool {
    payload.starts_with(&BINARY_MAGIC)
}

/// Decodes a hello/ack frame to its proposed/accepted version.
///
/// # Errors
///
/// Missing magic or a malformed length.
pub fn decode_hello(payload: &[u8]) -> Result<u8, String> {
    if !is_binary_hello(payload) {
        return Err("not a binary hello frame (missing OBFB magic)".to_string());
    }
    if payload.len() != 5 {
        return Err(format!("binary hello must be 5 bytes, got {}", payload.len()));
    }
    Ok(payload[4])
}

// --- binary writer ------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

// --- zero-copy binary reader --------------------------------------------

/// A cursor over a binary frame payload that yields scalars and
/// **borrowed** slices — no intermediate copies; UTF-8 is validated in
/// place and every length is checked against the remaining buffer before
/// anything is materialised.
pub struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    /// Wraps a frame payload.
    pub fn new(buf: &'a [u8]) -> BinReader<'a> {
        BinReader { buf, pos: 0 }
    }

    /// Takes `n` raw bytes as a borrowed slice.
    ///
    /// # Errors
    ///
    /// Fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| format!("binary frame truncated: wanted {n} bytes at {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// One byte.
    ///
    /// # Errors
    ///
    /// End of buffer.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    /// Little-endian `u32`.
    ///
    /// # Errors
    ///
    /// End of buffer.
    pub fn u32(&mut self) -> Result<u32, String> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian `u64`.
    ///
    /// # Errors
    ///
    /// End of buffer.
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.bytes(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    /// An `f64` from raw IEEE-754 bits.
    ///
    /// # Errors
    ///
    /// End of buffer.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length-prefixed string as a **borrowed** `&str` — the length is
    /// bounds-checked against the remaining payload before the slice is
    /// taken, and UTF-8 is validated in place.
    ///
    /// # Errors
    ///
    /// Truncation or invalid UTF-8.
    pub fn str_ref(&mut self) -> Result<&'a str, String> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        std::str::from_utf8(raw).map_err(|e| format!("binary string is not UTF-8: {e}"))
    }

    /// A collection length prefix, sanity-bounded: each element needs at
    /// least `min_element_bytes`, so a length the remaining buffer cannot
    /// possibly hold is rejected before any allocation.
    ///
    /// # Errors
    ///
    /// A length prefix larger than the remaining payload could encode.
    pub fn seq_len(&mut self, min_element_bytes: usize) -> Result<usize, String> {
        let len = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if len.saturating_mul(min_element_bytes.max(1)) > remaining {
            return Err(format!(
                "binary frame claims {len} elements but only {remaining} bytes remain"
            ));
        }
        Ok(len)
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// Trailing bytes.
    pub fn finish(&self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "binary frame has {} trailing bytes",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(format!("bad option tag {other}")),
        }
    }
}

// --- Json values --------------------------------------------------------

const J_NULL: u8 = 0;
const J_FALSE: u8 = 1;
const J_TRUE: u8 = 2;
const J_NUMBER: u8 = 3;
const J_STRING: u8 = 4;
const J_ARRAY: u8 = 5;
const J_OBJECT: u8 = 6;

/// Appends the binary encoding of a [`Json`] value (tag byte + payload).
pub fn put_json(out: &mut Vec<u8>, v: &Json) {
    match v {
        Json::Null => out.push(J_NULL),
        Json::Bool(false) => out.push(J_FALSE),
        Json::Bool(true) => out.push(J_TRUE),
        Json::Number(n) => {
            out.push(J_NUMBER);
            put_f64(out, *n);
        }
        Json::String(s) => {
            out.push(J_STRING);
            put_str(out, s);
        }
        Json::Array(items) => {
            out.push(J_ARRAY);
            put_u32(out, items.len() as u32);
            for item in items {
                put_json(out, item);
            }
        }
        Json::Object(fields) => {
            out.push(J_OBJECT);
            put_u32(out, fields.len() as u32);
            for (name, value) in fields {
                put_str(out, name);
                put_json(out, value);
            }
        }
    }
}

/// Reads one binary [`Json`] value.
///
/// # Errors
///
/// Truncation, an unknown tag, or a depth beyond the JSON parser's own
/// bound (128) — the two codecs accept the same value shapes.
pub fn read_json(r: &mut BinReader<'_>) -> Result<Json, String> {
    read_json_at(r, 0)
}

fn read_json_at(r: &mut BinReader<'_>, depth: u32) -> Result<Json, String> {
    if depth > 128 {
        return Err("binary JSON nests deeper than 128 levels".to_string());
    }
    match r.u8()? {
        J_NULL => Ok(Json::Null),
        J_FALSE => Ok(Json::Bool(false)),
        J_TRUE => Ok(Json::Bool(true)),
        J_NUMBER => Ok(Json::Number(r.f64()?)),
        J_STRING => Ok(Json::String(r.str_ref()?.to_string())),
        J_ARRAY => {
            let len = r.seq_len(1)?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(read_json_at(r, depth + 1)?);
            }
            Ok(Json::Array(items))
        }
        J_OBJECT => {
            let len = r.seq_len(5)?;
            let mut fields = Vec::with_capacity(len);
            for _ in 0..len {
                let name = r.str_ref()?.to_string();
                fields.push((name, read_json_at(r, depth + 1)?));
            }
            Ok(Json::Object(fields))
        }
        other => Err(format!("unknown binary JSON tag {other}")),
    }
}

// --- JobSpec ------------------------------------------------------------

fn put_job(out: &mut Vec<u8>, job: &JobSpec) {
    put_str(out, &job.part);
    out.push(u8::from(job.intact));
    out.push(match job.resolution {
        Resolution::Coarse => 0,
        Resolution::Fine => 1,
        Resolution::Custom => 2,
    });
    out.push(match job.orientation {
        Orientation::Xy => 0,
        Orientation::Xz => 1,
    });
    put_u64(out, job.seed);
    out.push(u8::from(job.tensile));
    put_str(out, job.solver.name());
    match job.layer {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
    }
    put_str(out, &job.faults);
    put_u64(out, job.fault_seed);
}

fn read_job(r: &mut BinReader<'_>) -> Result<JobSpec, String> {
    // Every string decodes as a borrowed slice first; only the retained
    // fields are copied into the owned spec.
    let part = r.str_ref()?;
    let intact = r.u8()? != 0;
    let resolution = match r.u8()? {
        0 => Resolution::Coarse,
        1 => Resolution::Fine,
        2 => Resolution::Custom,
        other => return Err(format!("unknown resolution tag {other}")),
    };
    let orientation = match r.u8()? {
        0 => Orientation::Xy,
        1 => Orientation::Xz,
        other => return Err(format!("unknown orientation tag {other}")),
    };
    let seed = r.u64()?;
    let tensile = r.u8()? != 0;
    let solver = r.str_ref()?.parse()?;
    let layer = match r.u8()? {
        0 => None,
        1 => {
            let v = r.f64()?;
            if !(v.is_finite() && v > 0.0) {
                return Err("`layer` must be a positive finite number".to_string());
            }
            Some(v)
        }
        other => return Err(format!("bad layer tag {other}")),
    };
    let faults = r.str_ref()?;
    let fault_seed = r.u64()?;
    Ok(JobSpec {
        part: part.to_string(),
        intact,
        resolution,
        orientation,
        seed,
        tensile,
        solver,
        layer,
        faults: faults.to_string(),
        fault_seed,
    })
}

fn put_detect_spec(out: &mut Vec<u8>, spec: &DetectSpec) {
    put_job(out, &spec.job);
    put_str(out, &spec.quality);
    put_f64(out, spec.jam_amplitude);
    put_u64(out, spec.trace_seed);
}

fn read_detect_spec(r: &mut BinReader<'_>) -> Result<DetectSpec, String> {
    let job = read_job(r)?;
    let quality = r.str_ref()?.to_string();
    let jam_amplitude = r.f64()?;
    if !(jam_amplitude.is_finite() && jam_amplitude >= 0.0) {
        return Err("`jam_amplitude` must be a non-negative number".to_string());
    }
    Ok(DetectSpec { job, quality, jam_amplitude, trace_seed: r.u64()? })
}

fn put_sanitize_spec(out: &mut Vec<u8>, spec: &SanitizeSpec) {
    put_job(out, &spec.job);
    put_u64(out, spec.payload_seed);
    out.push(spec.payload_bits as u8);
}

fn read_sanitize_spec(r: &mut BinReader<'_>) -> Result<SanitizeSpec, String> {
    let job = read_job(r)?;
    let payload_seed = r.u64()?;
    let payload_bits = u64::from(r.u8()?);
    if !(1..=8).contains(&payload_bits) {
        return Err("`payload_bits` must be an integer in 1..=8".to_string());
    }
    Ok(SanitizeSpec { job, payload_seed, payload_bits })
}

// --- requests -----------------------------------------------------------

const RQ_PING: u8 = 0;
const RQ_STATS: u8 = 1;
const RQ_SHUTDOWN: u8 = 2;
const RQ_RUN: u8 = 3;
const RQ_AUTHENTICATE: u8 = 4;
const RQ_DETECT: u8 = 5;
const RQ_SANITIZE: u8 = 6;

/// Binary request payload: kind tag, id, then the kind's fields.
pub fn encode_request_binary(request: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match &request.body {
        RequestBody::Ping => out.push(RQ_PING),
        RequestBody::Stats => out.push(RQ_STATS),
        RequestBody::Shutdown => out.push(RQ_SHUTDOWN),
        RequestBody::Run { .. } => out.push(RQ_RUN),
        RequestBody::Authenticate { .. } => out.push(RQ_AUTHENTICATE),
        RequestBody::Detect { .. } => out.push(RQ_DETECT),
        RequestBody::Sanitize { .. } => out.push(RQ_SANITIZE),
    }
    put_u64(&mut out, request.id);
    match &request.body {
        RequestBody::Ping | RequestBody::Stats | RequestBody::Shutdown => {}
        RequestBody::Run { jobs, deadline_ms } => {
            put_u32(&mut out, jobs.len() as u32);
            for job in jobs {
                put_job(&mut out, job);
            }
            put_opt_u64(&mut out, *deadline_ms);
        }
        RequestBody::Authenticate { job, deadline_ms } => {
            put_job(&mut out, job);
            put_opt_u64(&mut out, *deadline_ms);
        }
        RequestBody::Detect { jobs, deadline_ms } => {
            put_u32(&mut out, jobs.len() as u32);
            for spec in jobs {
                put_detect_spec(&mut out, spec);
            }
            put_opt_u64(&mut out, *deadline_ms);
        }
        RequestBody::Sanitize { jobs, deadline_ms } => {
            put_u32(&mut out, jobs.len() as u32);
            for spec in jobs {
                put_sanitize_spec(&mut out, spec);
            }
            put_opt_u64(&mut out, *deadline_ms);
        }
    }
    debug_assert!(out.len() <= MAX_FRAME);
    out
}

/// Decodes a binary request payload.
///
/// # Errors
///
/// Truncation, unknown tags, malformed fields, or trailing bytes.
pub fn decode_request_binary(payload: &[u8]) -> Result<Request, String> {
    let mut r = BinReader::new(payload);
    let kind = r.u8()?;
    let id = r.u64()?;
    let body = match kind {
        RQ_PING => RequestBody::Ping,
        RQ_STATS => RequestBody::Stats,
        RQ_SHUTDOWN => RequestBody::Shutdown,
        RQ_RUN => {
            // A job is ≥ 40 bytes even with empty strings.
            let n = r.seq_len(40)?;
            let mut jobs = Vec::with_capacity(n);
            for _ in 0..n {
                jobs.push(read_job(&mut r)?);
            }
            RequestBody::Run { jobs, deadline_ms: r.opt_u64()? }
        }
        RQ_AUTHENTICATE => {
            RequestBody::Authenticate { job: read_job(&mut r)?, deadline_ms: r.opt_u64()? }
        }
        RQ_DETECT => {
            // A detect spec carries a job (≥ 40 bytes) plus its capture setup.
            let n = r.seq_len(60)?;
            let mut jobs = Vec::with_capacity(n);
            for _ in 0..n {
                jobs.push(read_detect_spec(&mut r)?);
            }
            RequestBody::Detect { jobs, deadline_ms: r.opt_u64()? }
        }
        RQ_SANITIZE => {
            let n = r.seq_len(49)?;
            let mut jobs = Vec::with_capacity(n);
            for _ in 0..n {
                jobs.push(read_sanitize_spec(&mut r)?);
            }
            RequestBody::Sanitize { jobs, deadline_ms: r.opt_u64()? }
        }
        other => return Err(format!("unknown binary request kind {other}")),
    };
    r.finish()?;
    Ok(Request { id, body })
}

// --- responses ----------------------------------------------------------

const RS_PONG: u8 = 0;
const RS_STATS: u8 = 1;
const RS_BYE: u8 = 2;
const RS_RESULTS: u8 = 3;
const RS_VERDICT: u8 = 4;
const RS_ERROR: u8 = 5;
const RS_DETECTIONS: u8 = 6;
const RS_SANITIZED: u8 = 7;

fn error_tag(error: ServiceError) -> u8 {
    match error {
        ServiceError::Overloaded => 0,
        ServiceError::ShuttingDown => 1,
        ServiceError::Malformed => 2,
        ServiceError::Forbidden => 3,
        ServiceError::Job => 4,
        ServiceError::Internal => 5,
        ServiceError::BadCodec => 6,
    }
}

fn error_from_tag(tag: u8) -> Result<ServiceError, String> {
    Ok(match tag {
        0 => ServiceError::Overloaded,
        1 => ServiceError::ShuttingDown,
        2 => ServiceError::Malformed,
        3 => ServiceError::Forbidden,
        4 => ServiceError::Job,
        5 => ServiceError::Internal,
        6 => ServiceError::BadCodec,
        other => return Err(format!("unknown binary error class {other}")),
    })
}

/// Binary response payload: kind tag, echoed id, then the kind's fields.
pub fn encode_response_binary(response: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    match response {
        Response::Pong { .. } => out.push(RS_PONG),
        Response::Stats { .. } => out.push(RS_STATS),
        Response::Bye { .. } => out.push(RS_BYE),
        Response::Results { .. } => out.push(RS_RESULTS),
        Response::Verdict { .. } => out.push(RS_VERDICT),
        Response::Error { .. } => out.push(RS_ERROR),
        Response::Detections { .. } => out.push(RS_DETECTIONS),
        Response::Sanitized { .. } => out.push(RS_SANITIZED),
    }
    put_u64(&mut out, response.id());
    match response {
        Response::Pong { .. } => {}
        Response::Stats { metrics, .. } => put_json(&mut out, metrics),
        Response::Bye { completed, .. } => put_u64(&mut out, *completed),
        Response::Results { results, .. } => {
            put_u32(&mut out, results.len() as u32);
            for result in results {
                put_json(&mut out, result);
            }
        }
        Response::Verdict { verdict, cold_joint_mm2, void_mm3, .. } => {
            put_str(&mut out, verdict);
            put_f64(&mut out, *cold_joint_mm2);
            put_f64(&mut out, *void_mm3);
        }
        Response::Error { error, message, .. } => {
            out.push(error_tag(*error));
            put_str(&mut out, message);
        }
        Response::Detections { reports, .. } | Response::Sanitized { reports, .. } => {
            put_u32(&mut out, reports.len() as u32);
            for report in reports {
                put_json(&mut out, report);
            }
        }
    }
    out
}

/// Decodes a binary response payload.
///
/// # Errors
///
/// Truncation, unknown tags, malformed fields, or trailing bytes.
pub fn decode_response_binary(payload: &[u8]) -> Result<Response, String> {
    let mut r = BinReader::new(payload);
    let kind = r.u8()?;
    let id = r.u64()?;
    let response = match kind {
        RS_PONG => Response::Pong { id },
        RS_STATS => Response::Stats { id, metrics: read_json(&mut r)? },
        RS_BYE => Response::Bye { id, completed: r.u64()? },
        RS_RESULTS => {
            let n = r.seq_len(1)?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                results.push(read_json(&mut r)?);
            }
            Response::Results { id, results }
        }
        RS_VERDICT => Response::Verdict {
            id,
            verdict: r.str_ref()?.to_string(),
            cold_joint_mm2: r.f64()?,
            void_mm3: r.f64()?,
        },
        RS_ERROR => {
            let error = error_from_tag(r.u8()?)?;
            Response::Error { id, error, message: r.str_ref()?.to_string() }
        }
        RS_DETECTIONS | RS_SANITIZED => {
            let n = r.seq_len(1)?;
            let mut reports = Vec::with_capacity(n);
            for _ in 0..n {
                reports.push(read_json(&mut r)?);
            }
            if kind == RS_DETECTIONS {
                Response::Detections { id, reports }
            } else {
                Response::Sanitized { id, reports }
            }
        }
        other => return Err(format!("unknown binary response kind {other}")),
    };
    r.finish()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_frames_round_trip_and_reject_garbage() {
        let hello = encode_hello(BINARY_VERSION);
        assert_eq!(hello.len(), 5);
        assert!(is_binary_hello(&hello));
        assert_eq!(decode_hello(&hello).expect("hello"), BINARY_VERSION);
        assert!(!is_binary_hello(b"{\"id\":1}"));
        assert!(decode_hello(b"OBFB").is_err(), "truncated hello");
        assert!(decode_hello(b"OBFBxx").is_err(), "overlong hello");
        assert!(decode_hello(b"NOPE!").is_err());
    }

    #[test]
    fn binary_requests_round_trip_to_identical_values() {
        let job = JobSpec {
            part: "bar".into(),
            intact: true,
            resolution: Resolution::Fine,
            orientation: Orientation::Xz,
            seed: u64::MAX,
            tensile: true,
            layer: None,
            faults: "void-stl stl.degenerate=3".into(),
            fault_seed: 42,
            ..JobSpec::default()
        };
        for body in [
            RequestBody::Ping,
            RequestBody::Stats,
            RequestBody::Shutdown,
            RequestBody::Run { jobs: vec![job.clone(), JobSpec::default()], deadline_ms: Some(250) },
            RequestBody::Run { jobs: vec![], deadline_ms: None },
            RequestBody::Authenticate { job: job.clone(), deadline_ms: None },
            RequestBody::Detect {
                jobs: vec![
                    DetectSpec {
                        job: job.clone(),
                        quality: "room".into(),
                        jam_amplitude: 2.5,
                        trace_seed: u64::MAX,
                    },
                    DetectSpec::default(),
                ],
                deadline_ms: Some(750),
            },
            RequestBody::Sanitize {
                jobs: vec![SanitizeSpec { job: job.clone(), payload_seed: 99, payload_bits: 8 }],
                deadline_ms: None,
            },
        ] {
            let request = Request { id: 0xdead_beef, body };
            let payload = encode_request_binary(&request);
            let decoded = decode_request_binary(&payload).expect("decode");
            assert_eq!(decoded, request);
            // Pure function of the value: re-encoding is byte-identical.
            assert_eq!(encode_request_binary(&decoded), payload);
        }
    }

    #[test]
    fn binary_responses_round_trip_including_exact_floats() {
        // Values chosen to be hostile to text round-trips: subnormals,
        // negative zero, and a number needing all 17 digits.
        let nasty = Json::Array(vec![
            Json::Number(f64::MIN_POSITIVE / 2.0),
            Json::Number(-0.0),
            Json::Number(0.123_456_789_012_345_67),
            Json::Object(vec![("k".into(), Json::Null)]),
        ]);
        for response in [
            Response::Pong { id: 1 },
            Response::Stats { id: 2, metrics: nasty.clone() },
            Response::Bye { id: 3, completed: u64::MAX },
            Response::Results { id: 4, results: vec![nasty, Json::Bool(true)] },
            Response::Verdict {
                id: 5,
                verdict: "genuine".into(),
                cold_joint_mm2: 0.1 + 0.2,
                void_mm3: f64::EPSILON,
            },
            Response::Error { id: 6, error: ServiceError::BadCodec, message: "no".into() },
            Response::Detections {
                id: 7,
                reports: vec![Json::Object(vec![(
                    "ok".into(),
                    Json::Object(vec![("fused_score".into(), Json::Number(0.1 + 0.2))]),
                )])],
            },
            Response::Sanitized { id: 8, reports: vec![Json::Null, Json::Bool(false)] },
        ] {
            let payload = encode_response_binary(&response);
            let decoded = decode_response_binary(&payload).expect("decode");
            assert_eq!(decoded, response);
            assert_eq!(encode_response_binary(&decoded), payload);
        }
    }

    #[test]
    fn every_error_class_survives_the_binary_tag_round_trip() {
        for error in [
            ServiceError::Overloaded,
            ServiceError::ShuttingDown,
            ServiceError::Malformed,
            ServiceError::Forbidden,
            ServiceError::Job,
            ServiceError::Internal,
            ServiceError::BadCodec,
        ] {
            assert_eq!(error_from_tag(error_tag(error)).expect("tag"), error);
        }
        assert!(error_from_tag(200).is_err());
    }

    #[test]
    fn truncated_and_oversized_binary_frames_fail_before_allocating() {
        let request = Request {
            id: 9,
            body: RequestBody::Run { jobs: vec![JobSpec::default()], deadline_ms: None },
        };
        let payload = encode_request_binary(&request);
        for cut in [0, 1, 5, 9, 13, payload.len() - 1] {
            assert!(
                decode_request_binary(&payload[..cut]).is_err(),
                "a {cut}-byte prefix must not decode"
            );
        }
        // Trailing bytes are rejected, not ignored.
        let mut padded = payload.clone();
        padded.push(0);
        assert!(decode_request_binary(&padded).is_err());

        // A length prefix claiming 500M jobs in a 20-byte frame dies on
        // the seq_len bound, not in Vec::with_capacity.
        let mut bomb = vec![RQ_RUN];
        bomb.extend_from_slice(&7u64.to_le_bytes());
        bomb.extend_from_slice(&500_000_000u32.to_le_bytes());
        let err = decode_request_binary(&bomb).expect_err("bomb");
        assert!(err.contains("elements"), "{err}");
    }

    #[test]
    fn codec_dispatch_matches_the_underlying_encodings() {
        let request = Request { id: 1, body: RequestBody::Ping };
        assert_eq!(Codec::Json.encode_request(&request), request.encode());
        assert_eq!(Codec::Binary.encode_request(&request), encode_request_binary(&request));
        for codec in [Codec::Json, Codec::Binary] {
            let decoded =
                codec.decode_request(&codec.encode_request(&request)).expect("round trip");
            assert_eq!(decoded, request);
            assert_eq!(Codec::from_name(codec.name()).expect("name"), codec);
        }
        assert!(Codec::from_name("msgpack").is_err());
        // The binary encoding is denser than JSON for a real batch.
        let run = Request {
            id: 2,
            body: RequestBody::Run { jobs: vec![JobSpec::default(); 4], deadline_ms: Some(100) },
        };
        assert!(Codec::Binary.encode_request(&run).len() < Codec::Json.encode_request(&run).len());
    }
}
