//! **am-service** — the ObfusCADe obfuscation daemon and its client.
//!
//! Turns the batch pipeline engine ([`obfuscade::run_pipeline_jobs`])
//! into a long-running network service: a thread-per-connection daemon
//! speaking a length-prefixed JSON protocol over TCP (and a Unix-domain
//! socket on Unix), with a bounded job queue in front of a fixed worker
//! pool, one process-wide shared [`obfuscade::StageCache`], typed
//! `overloaded` admission rejections, per-request deadlines
//! (budget-checked between pipeline stages, so nothing half-computed is
//! ever cached), and drain-then-stop graceful shutdown.
//!
//! The determinism contract carries over the wire: a served batch
//! renders byte-identically to the same batch run in-process, which the
//! `wire_equivalence` suite and the load generator both enforce.
//!
//! # Example
//!
//! ```no_run
//! use am_service::{Client, Endpoint, JobSpec, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default())?;
//! let endpoint = Endpoint::Tcp(server.addr().to_string());
//! let mut client = Client::connect(&endpoint)?;
//! let response = client.run(vec![JobSpec::default()], Some(5_000));
//! client.shutdown()?;
//! server.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{
    expected_results_wire, run_load, run_load_with, Client, Endpoint, LoadReport, RetryPolicy,
    RetryingClient,
};
pub use protocol::{
    encode_outcome, read_frame, write_frame, JobSpec, Request, RequestBody, Response,
    ServiceError, MAX_FRAME,
};
pub use server::{ChaosPlan, Server, ServerConfig};
