//! **am-service** — the ObfusCADe obfuscation daemon and its client.
//!
//! Turns the batch pipeline engine ([`obfuscade::run_pipeline_jobs`])
//! into a long-running network service: a daemon speaking a
//! length-prefixed frame protocol over TCP (and a Unix-domain socket on
//! Unix) — JSON payloads by default, with a version-negotiated compact
//! binary codec ([`Codec`]) clients opt into via a magic first frame —
//! with a bounded job queue in front of a fixed worker pool, one
//! process-wide shared [`obfuscade::StageCache`], typed `overloaded`
//! admission rejections, per-request deadlines (budget-checked between
//! pipeline stages, so nothing half-computed is ever cached), and
//! drain-then-stop graceful shutdown.
//!
//! Connections are served by one of two interchangeable backends
//! ([`ConnBackend`]): a non-blocking epoll **reactor** (the Linux
//! default — one event-loop thread multiplexing every socket, with
//! per-connection reassembly buffers, write backpressure, and
//! idle/slow-loris timeouts; built on the vendored `am-reactor` syscall
//! shim so this crate stays `forbid(unsafe_code)`) and the original
//! **thread-per-connection** backend, kept as the differential oracle.
//!
//! The determinism contract carries over the wire: a served batch
//! renders byte-identically to the same batch run in-process — on
//! either backend, under either codec — which the `wire_equivalence`
//! suite and the load generator both enforce.
//!
//! # Example
//!
//! ```no_run
//! use am_service::{Client, Endpoint, JobSpec, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default())?;
//! let endpoint = Endpoint::Tcp(server.addr().to_string());
//! let mut client = Client::connect(&endpoint)?;
//! let response = client.run(vec![JobSpec::default()], Some(5_000));
//! client.shutdown()?;
//! server.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod protocol;
pub mod reactor;
pub mod server;

pub use client::{
    expected_detections_wire, expected_results_wire, expected_sanitize_wire, run_load,
    run_load_mixed, run_load_with, Client, Endpoint, LoadReport, LoadRequest, RetryPolicy,
    RetryingClient,
};
pub use codec::{decode_hello, encode_hello, is_binary_hello, Codec, BINARY_MAGIC, BINARY_VERSION};
pub use protocol::{
    encode_detect_outcome, encode_outcome, encode_sanitize_outcome, read_frame, write_frame,
    DetectSpec, JobSpec, Request, RequestBody, Response, SanitizeSpec, ServiceError, MAX_FRAME,
};
pub use server::{ChaosPlan, ConnBackend, Engine, Forwarder, Server, ServerConfig};
