//! The epoll connection backend: one reactor thread multiplexing every
//! client socket (TCP and Unix-domain) through [`am_reactor::Poller`].
//!
//! Where the thread backend spends two OS threads per connection (a
//! reader and a writer), the reactor runs per-connection **state
//! machines**: each
//! [`Conn`] owns a read buffer that reassembles partial frames, a write
//! buffer with an explicit send offset, and a pending-job count. All
//! protocol logic is shared with the thread backend through
//! [`process_frame`](crate::server), so the two backends serve
//! byte-identical responses — the wire-equivalence suite holds across
//! both.
//!
//! Mechanics worth naming:
//!
//! * **Edge-triggered** readiness: every readable/writable event drains
//!   its direction until `WouldBlock`, as the poller's contract requires.
//! * **Write backpressure**: a `WouldBlock` mid-flush parks the unsent
//!   tail, bumps the `backpressure_stalls` counter and switches the
//!   interest to `ReadWrite`; the next writable edge resumes, and a
//!   fully drained buffer switches back to `Read`.
//! * **Worker hand-off**: queued jobs reply through the [`Hub`] — a
//!   mutex-guarded completion list plus a socketpair waker, so a worker
//!   finishing mid-`epoll_wait` wakes the reactor without blocking
//!   itself. Shutdown drains inside the reactor thread; worker replies
//!   pile into the hub meanwhile and are flushed before the thread
//!   exits.
//! * **Idle / slow-loris timeouts**: progress means *completing* a frame
//!   or moving response bytes, not merely dribbling single bytes — a
//!   peer that parks a half-frame, or never reads its responses, is cut
//!   after [`ServerConfig::idle_timeout`](crate::ServerConfig), unless
//!   its jobs are still in flight.
//!
//! Off Linux the module is a stub whose `spawn` reports `Unsupported`;
//! [`ConnBackend::Threads`](crate::ConnBackend) remains available there.

#[cfg(target_os = "linux")]
mod imp {
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::PathBuf;
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, Mutex};
    use std::thread::{self, JoinHandle};
    use std::time::{Duration, Instant};

    use am_reactor::{Event, Interest, Poller};

    use crate::protocol::MAX_FRAME;
    use crate::server::{
        chaos_drops_accept, lock, process_frame, ConnProto, FrameOutcome, ReplySink, Shared,
        STOPPED,
    };

    /// Token of the TCP listener.
    const TOK_TCP: u64 = 0;
    /// Token of the Unix-domain listener (when configured).
    const TOK_UNIX: u64 = 1;
    /// Token of the hub waker's read end.
    const TOK_WAKER: u64 = 2;
    /// First connection token; monotonically increasing, never reused.
    const FIRST_CONN: u64 = 3;

    /// Poll tick: idle-scan granularity and the completion-latency bound
    /// should a waker byte ever be coalesced away.
    const TICK: Duration = Duration::from_millis(25);

    /// Per-`read(2)` window.
    const READ_CHUNK: usize = 16 * 1024;

    /// Per-connection write timeout of the final post-shutdown flush.
    const FLUSH_GRACE: Duration = Duration::from_secs(1);

    /// How long the reactor keeps serving **existing** connections after
    /// the daemon stopped (listeners closed, admission refused with
    /// typed `shutting_down` errors) so peers can read their final
    /// responses — matching the thread backend, whose connection threads
    /// outlive the drain. Exits early once every peer hangs up.
    const LINGER: Duration = Duration::from_secs(1);

    /// Worker-to-reactor completion channel: finished jobs' encoded
    /// response payloads, keyed by connection token, plus a socketpair
    /// waker that interrupts `epoll_wait`. `push` never blocks.
    pub(crate) struct Hub {
        completions: Mutex<Vec<(u64, Vec<u8>)>>,
        waker: UnixStream,
    }

    impl Hub {
        /// Deposits one encoded response payload for `conn` and wakes
        /// the reactor.
        pub(crate) fn push(&self, conn: u64, payload: Vec<u8>) {
            lock(&self.completions).push((conn, payload));
            // One byte is enough; WouldBlock means wake bytes are
            // already pending, which wakes the reactor just the same.
            let mut waker: &UnixStream = &self.waker;
            let _ = waker.write(&[1]);
        }

        fn take(&self) -> Vec<(u64, Vec<u8>)> {
            std::mem::take(&mut *lock(&self.completions))
        }
    }

    /// A connected client socket, either transport behind one interface.
    enum Stream {
        Tcp(TcpStream),
        Unix(UnixStream),
    }

    impl Stream {
        fn fd(&self) -> i32 {
            match self {
                Stream::Tcp(s) => s.as_raw_fd(),
                Stream::Unix(s) => s.as_raw_fd(),
            }
        }

        /// Switches to blocking writes with a bounded timeout — only for
        /// the final post-shutdown flush, after the fd left the poller.
        fn make_blocking(&self, timeout: Duration) {
            match self {
                Stream::Tcp(s) => {
                    let _ = s.set_nonblocking(false);
                    let _ = s.set_write_timeout(Some(timeout));
                }
                Stream::Unix(s) => {
                    let _ = s.set_nonblocking(false);
                    let _ = s.set_write_timeout(Some(timeout));
                }
            }
        }
    }

    impl Read for Stream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self {
                Stream::Tcp(s) => s.read(buf),
                Stream::Unix(s) => s.read(buf),
            }
        }
    }

    impl Write for Stream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match self {
                Stream::Tcp(s) => s.write(buf),
                Stream::Unix(s) => s.write(buf),
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            match self {
                Stream::Tcp(s) => s.flush(),
                Stream::Unix(s) => s.flush(),
            }
        }
    }

    /// One connection's state machine.
    struct Conn {
        stream: Stream,
        proto: ConnProto,
        local_peer: bool,
        /// Partial-frame reassembly buffer (unparsed inbound bytes).
        inbuf: Vec<u8>,
        /// Framed outbound bytes; `sent` of them are already written.
        outbuf: Vec<u8>,
        sent: usize,
        /// Whether the poller interest currently includes `Write`.
        want_write: bool,
        /// Peer sent EOF; the connection lives on until every pending
        /// job replied and the write buffer drained.
        read_closed: bool,
        /// Jobs admitted for this connection whose replies are still in
        /// flight — exempts the connection from the idle kill.
        pending: u64,
        /// Last time a frame completed or response bytes moved. *Not*
        /// advanced by raw inbound bytes, so a slow-loris dribble cannot
        /// keep a connection alive.
        last_progress: Instant,
    }

    /// What a pump pass decided about the connection's fate.
    enum Pump {
        Open,
        Close,
    }

    /// Boots the reactor: binds the optional Unix listener, builds the
    /// poller and hub, registers the fixed tokens, then spawns the event
    /// loop thread. Bind/registration errors surface to `Server::start`.
    pub(crate) fn spawn(
        shared: Arc<Shared>,
        listener: TcpListener,
        unix_socket: Option<PathBuf>,
    ) -> io::Result<JoinHandle<()>> {
        let unix = match &unix_socket {
            Some(path) => {
                // A stale socket file from a previous run would fail the
                // bind.
                let _ = std::fs::remove_file(path);
                let unix = UnixListener::bind(path)?;
                unix.set_nonblocking(true)?;
                Some(unix)
            }
            None => None,
        };
        let mut poller = Poller::new(1024)?;
        let (waker_rx, waker_tx) = UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;
        let hub = Arc::new(Hub { completions: Mutex::new(Vec::new()), waker: waker_tx });
        poller.register(listener.as_raw_fd(), TOK_TCP, Interest::Read)?;
        if let Some(unix) = &unix {
            poller.register(unix.as_raw_fd(), TOK_UNIX, Interest::Read)?;
        }
        poller.register(waker_rx.as_raw_fd(), TOK_WAKER, Interest::Read)?;
        // Prove epoll works before committing to the backend: an empty
        // wait on a fresh instance must time out cleanly.
        poller.wait(Some(Duration::ZERO))?;
        Ok(thread::spawn(move || {
            event_loop(&shared, poller, &listener, unix.as_ref(), &hub, &waker_rx);
            drop(listener);
            drop(unix);
            if let Some(path) = &unix_socket {
                let _ = std::fs::remove_file(path);
            }
        }))
    }

    /// The reactor proper: waits, dispatches, delivers completions,
    /// scans for idle/finished connections — until the daemon stops,
    /// then flushes surviving write buffers with a bounded grace.
    fn event_loop(
        shared: &Arc<Shared>,
        mut poller: Poller,
        tcp: &TcpListener,
        unix: Option<&UnixListener>,
        hub: &Arc<Hub>,
        waker_rx: &UnixStream,
    ) {
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token = FIRST_CONN;
        let mut linger_deadline: Option<Instant> = None;
        loop {
            if shared.phase() == STOPPED {
                // First pass after the stop: close the doors but keep
                // serving whoever is already inside, briefly.
                let deadline = *linger_deadline.get_or_insert_with(|| {
                    let _ = poller.deregister(tcp.as_raw_fd());
                    if let Some(unix) = unix {
                        let _ = poller.deregister(unix.as_raw_fd());
                    }
                    Instant::now() + LINGER
                });
                if conns.is_empty() || Instant::now() >= deadline {
                    break;
                }
            }
            let events: Vec<Event> = match poller.wait(Some(TICK)) {
                Ok(events) => events.to_vec(),
                Err(_) => {
                    // epoll_wait failing (beyond EINTR, retried inside)
                    // means something is deeply wrong with the fd set;
                    // back off instead of spinning.
                    thread::sleep(Duration::from_millis(5));
                    continue;
                }
            };
            let mut dead: Vec<u64> = Vec::new();
            for event in events {
                match event.token {
                    TOK_TCP => accept_tcp(shared, &poller, tcp, &mut conns, &mut next_token),
                    TOK_UNIX => {
                        if let Some(unix) = unix {
                            accept_unix(shared, &poller, unix, &mut conns, &mut next_token);
                        }
                    }
                    TOK_WAKER => drain_waker(waker_rx),
                    token => {
                        let Some(conn) = conns.get_mut(&token) else { continue };
                        let mut pump = Pump::Open;
                        if event.readable || event.closed {
                            pump = pump_read(shared, hub, token, conn);
                        }
                        if let Pump::Open = pump {
                            // Covers both fresh replies queued by the
                            // read pass and writable edges resuming a
                            // backpressured buffer.
                            pump = flush(shared, &poller, token, conn);
                        }
                        if matches!(pump, Pump::Close) {
                            dead.push(token);
                        }
                    }
                }
            }
            for (token, payload) in hub.take() {
                let Some(conn) = conns.get_mut(&token) else { continue };
                conn.pending = conn.pending.saturating_sub(1);
                conn.last_progress = Instant::now();
                queue_frame(conn, &payload);
                if matches!(flush(shared, &poller, token, conn), Pump::Close) {
                    dead.push(token);
                }
            }
            let now = Instant::now();
            for (token, conn) in &conns {
                let drained = conn.sent >= conn.outbuf.len();
                let finished = conn.read_closed && conn.pending == 0 && drained;
                let idle = conn.pending == 0
                    && now.duration_since(conn.last_progress) > shared.idle_timeout;
                if finished || idle {
                    dead.push(*token);
                }
            }
            for token in dead {
                if let Some(conn) = conns.remove(&token) {
                    let _ = poller.deregister(conn.stream.fd());
                }
            }
        }
        // Stopped: every job has completed (the drain guarantees it), so
        // the hub holds the last replies. Deliver them, then flush each
        // connection's tail with a blocking bounded write.
        for (token, payload) in hub.take() {
            if let Some(conn) = conns.get_mut(&token) {
                queue_frame(conn, &payload);
            }
        }
        for (_token, mut conn) in conns {
            if conn.sent < conn.outbuf.len() {
                conn.stream.make_blocking(FLUSH_GRACE);
                let tail = conn.outbuf.split_off(conn.sent);
                let _ = conn.stream.write_all(&tail);
                let _ = conn.stream.flush();
            }
        }
    }

    /// Accepts from the TCP listener until `WouldBlock`.
    fn accept_tcp(
        shared: &Arc<Shared>,
        poller: &Poller,
        listener: &TcpListener,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
    ) {
        while let Ok((stream, peer)) = listener.accept() {
            if chaos_drops_accept(shared) {
                drop(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let local_peer = peer.ip().is_loopback();
            install(shared, poller, conns, next_token, Stream::Tcp(stream), local_peer);
        }
    }

    /// Accepts from the Unix-domain listener until `WouldBlock`.
    fn accept_unix(
        shared: &Arc<Shared>,
        poller: &Poller,
        listener: &UnixListener,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
    ) {
        while let Ok((stream, _peer)) = listener.accept() {
            if chaos_drops_accept(shared) {
                drop(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // A Unix-socket peer is local by construction.
            install(shared, poller, conns, next_token, Stream::Unix(stream), true);
        }
    }

    /// Registers a freshly accepted stream under a new token. EPOLLET
    /// reports readiness present at add time, so bytes that raced the
    /// registration still produce an edge.
    fn install(
        shared: &Arc<Shared>,
        poller: &Poller,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
        stream: Stream,
        local_peer: bool,
    ) {
        let token = *next_token;
        *next_token += 1;
        if poller.register(stream.fd(), token, Interest::Read).is_err() {
            return;
        }
        shared.connections.fetch_add(1, Ordering::SeqCst);
        conns.insert(
            token,
            Conn {
                stream,
                proto: ConnProto::new(),
                local_peer,
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                sent: 0,
                want_write: false,
                read_closed: false,
                pending: 0,
                last_progress: Instant::now(),
            },
        );
    }

    /// Swallows pending waker bytes (their job was interrupting the
    /// wait; the hub itself is drained unconditionally every tick).
    fn drain_waker(waker_rx: &UnixStream) {
        let mut sink = [0u8; 256];
        let mut waker: &UnixStream = waker_rx;
        while matches!(waker.read(&mut sink), Ok(n) if n > 0) {}
    }

    /// Drains the socket until `WouldBlock`/EOF, then parses and
    /// dispatches every complete frame. Chaos faults mirror the thread
    /// backend's `ChaosReader`: an occasional ~1 ms stall and 1-byte
    /// read window per read decision.
    fn pump_read(shared: &Arc<Shared>, hub: &Arc<Hub>, token: u64, conn: &mut Conn) -> Pump {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let (stall, chop) = shared.chaos_read_fault();
            if stall {
                thread::sleep(Duration::from_millis(1));
            }
            let window = if chop { 1 } else { READ_CHUNK };
            match conn.stream.read(&mut chunk[..window]) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => conn.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Pump::Close,
            }
        }
        dispatch_frames(shared, hub, token, conn)
    }

    /// Parses every complete frame out of the reassembly buffer and runs
    /// it through the shared protocol path. An oversized length prefix
    /// closes the connection before any allocation, same bound as the
    /// blocking `read_frame`.
    fn dispatch_frames(shared: &Arc<Shared>, hub: &Arc<Hub>, token: u64, conn: &mut Conn) -> Pump {
        // Detach the buffer so frames can borrow it while dispatch
        // mutates the rest of the connection.
        let buf = std::mem::take(&mut conn.inbuf);
        let mut consumed = 0;
        let mut kill = false;
        while buf.len() - consumed >= 4 {
            let mut head = [0u8; 4];
            head.copy_from_slice(&buf[consumed..consumed + 4]);
            let len = u32::from_be_bytes(head) as usize;
            if len > MAX_FRAME {
                kill = true;
                break;
            }
            if buf.len() - consumed < 4 + len {
                break;
            }
            let frame = &buf[consumed + 4..consumed + 4 + len];
            consumed += 4 + len;
            let sink = |codec| ReplySink::Reactor { conn: token, hub: Arc::clone(hub), codec };
            match process_frame(shared, &mut conn.proto, frame, conn.local_peer, &sink) {
                FrameOutcome::Reply(payload) => queue_frame(conn, &payload),
                FrameOutcome::Queued => conn.pending += 1,
            }
        }
        if consumed > 0 {
            // Progress = at least one frame *completed*; raw dribbled
            // bytes intentionally do not reset the idle clock.
            conn.last_progress = Instant::now();
        }
        conn.inbuf = buf;
        conn.inbuf.drain(..consumed);
        if kill {
            Pump::Close
        } else {
            Pump::Open
        }
    }

    /// Appends one length-prefixed frame to the write buffer.
    fn queue_frame(conn: &mut Conn, payload: &[u8]) {
        conn.outbuf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        conn.outbuf.extend_from_slice(payload);
    }

    /// Writes buffered bytes until drained or `WouldBlock`. Backpressure
    /// widens the interest to `ReadWrite` (and counts the stall); a
    /// drained buffer narrows it back to `Read`.
    fn flush(shared: &Arc<Shared>, poller: &Poller, token: u64, conn: &mut Conn) -> Pump {
        while conn.sent < conn.outbuf.len() {
            match conn.stream.write(&conn.outbuf[conn.sent..]) {
                Ok(0) => return Pump::Close,
                Ok(n) => {
                    conn.sent += n;
                    conn.last_progress = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    shared.backpressure_stalls.fetch_add(1, Ordering::SeqCst);
                    if !conn.want_write {
                        conn.want_write = true;
                        if poller.modify(conn.stream.fd(), token, Interest::ReadWrite).is_err() {
                            return Pump::Close;
                        }
                    }
                    return Pump::Open;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Pump::Close,
            }
        }
        conn.outbuf.clear();
        conn.sent = 0;
        if conn.want_write {
            conn.want_write = false;
            if poller.modify(conn.stream.fd(), token, Interest::Read).is_err() {
                return Pump::Close;
            }
        }
        Pump::Open
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::io;
    use std::net::TcpListener;
    use std::path::PathBuf;
    use std::sync::Arc;
    use std::thread::JoinHandle;

    use crate::server::Shared;

    /// Stub hub: never constructed off Linux (spawn fails first), but
    /// keeps the worker reply plumbing compiling on every platform.
    pub(crate) struct Hub;

    impl Hub {
        pub(crate) fn push(&self, _conn: u64, _payload: Vec<u8>) {}
    }

    /// Off-Linux stub: selecting the reactor backend is a start error.
    pub(crate) fn spawn(
        _shared: Arc<Shared>,
        _listener: TcpListener,
        _unix_socket: Option<PathBuf>,
    ) -> io::Result<JoinHandle<()>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the reactor backend requires Linux epoll; use ConnBackend::Threads",
        ))
    }
}

pub(crate) use imp::{spawn, Hub};
