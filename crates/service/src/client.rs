//! Client side: a blocking one-request-at-a-time [`Client`], plus the
//! [`run_load`] generator the CLI (`submit --load`) and the bench serve
//! mode use to measure the daemon under concurrency.
//!
//! The load generator verifies more than liveness: when given the
//! expected wire encoding (computed in-process by
//! [`expected_results_wire`] over the same job specs), every response
//! body is compared byte-for-byte — any divergence between the served
//! pipeline and a local [`obfuscade::run_pipeline_jobs`] run counts as a
//! `mismatch` and fails the run.
//!
//! # Retries (PR 6)
//!
//! [`RetryingClient`] wraps the blocking client with read timeouts,
//! bounded exponential backoff and transparent reconnects. Retrying a
//! `run`/`authenticate` submission is **safe by construction**: the
//! daemon's pipeline is deterministic and content-addressed, so a
//! duplicate execution returns byte-identical results and at-most-once
//! delivery is unnecessary. Only transient failures are retried —
//! transport errors (dropped connections, timeouts) and the typed
//! `overloaded`/`internal` responses; `malformed`, `forbidden`,
//! `shutting_down` and `job` errors are the daemon's real answer and are
//! returned as-is. `shutdown` is never retried.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use am_par::Parallelism;
use obfuscade::json::Json;
use obfuscade::{run_pipeline_jobs, BatchJob, StageCache, StageHasher};

use crate::codec::{decode_hello, encode_hello, is_binary_hello, Codec, BINARY_VERSION};
use crate::protocol::{
    encode_detect_outcome, encode_outcome, encode_sanitize_outcome, read_frame, write_frame,
    DetectSpec, JobSpec, Request, RequestBody, Response, SanitizeSpec, ServiceError,
};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:4817`.
    Tcp(String),
    /// A Unix-domain socket path (Unix only; connecting on other
    /// platforms errors).
    Unix(PathBuf),
}

/// The underlying connected stream.
enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// A blocking service client: one in-flight request at a time, ids
/// assigned sequentially per connection.
pub struct Client {
    stream: ClientStream,
    next_id: u64,
    codec: Codec,
}

impl Client {
    /// Connects to the daemon.
    ///
    /// # Errors
    ///
    /// Connection failures; on non-Unix platforms, any
    /// [`Endpoint::Unix`].
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        Client::connect_with(endpoint, None)
    }

    /// [`Client::connect`] with a read timeout: a response that takes
    /// longer than `read_timeout` fails the call with a transport error
    /// instead of blocking forever (a hung daemon then surfaces as a
    /// retryable failure).
    ///
    /// # Errors
    ///
    /// Connection failures; on non-Unix platforms, any
    /// [`Endpoint::Unix`].
    pub fn connect_with(
        endpoint: &Endpoint,
        read_timeout: Option<Duration>,
    ) -> io::Result<Client> {
        let stream = match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                let _ = stream.set_nodelay(true);
                stream.set_read_timeout(read_timeout)?;
                ClientStream::Tcp(stream)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = std::os::unix::net::UnixStream::connect(path)?;
                stream.set_read_timeout(read_timeout)?;
                ClientStream::Unix(stream)
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix-domain sockets are not available on this platform",
                ))
            }
        };
        Ok(Client { stream, next_id: 1, codec: Codec::Json })
    }

    /// [`Client::connect_with`] plus codec selection: [`Codec::Binary`]
    /// performs the hello negotiation on the fresh connection before
    /// returning, so a successfully built client speaks the requested
    /// codec from its first request.
    ///
    /// # Errors
    ///
    /// Connection failures, or the daemon refusing the binary codec
    /// (JSON-only daemon, version mismatch) — surfaced as `InvalidData`
    /// with the daemon's typed `bad_codec` message.
    pub fn connect_with_codec(
        endpoint: &Endpoint,
        read_timeout: Option<Duration>,
        codec: Codec,
    ) -> io::Result<Client> {
        let mut client = Client::connect_with(endpoint, read_timeout)?;
        if codec == Codec::Binary {
            client
                .negotiate_binary()
                .map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))?;
        }
        Ok(client)
    }

    /// The codec this connection speaks.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Sends the binary hello and interprets the daemon's answer: an
    /// echoed hello switches the connection to binary; a JSON `bad_codec`
    /// error is the daemon's refusal (the connection would survive in
    /// JSON, but the caller asked for binary, so it surfaces as an
    /// error here).
    fn negotiate_binary(&mut self) -> Result<(), String> {
        write_frame(&mut self.stream, &encode_hello(BINARY_VERSION))
            .map_err(|e| format!("hello send failed: {e}"))?;
        let frame = read_frame(&mut self.stream)
            .map_err(|e| format!("hello receive failed: {e}"))?
            .ok_or("the daemon closed the connection during codec negotiation")?;
        if is_binary_hello(&frame) {
            let version = decode_hello(&frame)?;
            if version != BINARY_VERSION {
                return Err(format!(
                    "daemon acknowledged binary version {version}, expected {BINARY_VERSION}"
                ));
            }
            self.codec = Codec::Binary;
            return Ok(());
        }
        match Response::decode(&frame) {
            Ok(Response::Error { error, message, .. }) => {
                Err(format!("binary codec refused ({}): {message}", error.name()))
            }
            Ok(other) => Err(format!("expected a hello ack, got {other:?}")),
            Err(e) => Err(format!("undecodable negotiation reply: {e}")),
        }
    }

    /// Sends one request body and waits for the matching response.
    ///
    /// # Errors
    ///
    /// Transport failures, a closed connection, an undecodable reply, or
    /// a response id that does not echo the request id.
    pub fn call(&mut self, body: RequestBody) -> Result<Response, String> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request { id, body };
        let payload = self.codec.encode_request(&request);
        write_frame(&mut self.stream, &payload).map_err(|e| format!("send failed: {e}"))?;
        let frame = read_frame(&mut self.stream)
            .map_err(|e| format!("receive failed: {e}"))?
            .ok_or("the daemon closed the connection")?;
        let response = self.codec.decode_response(&frame)?;
        if response.id() == id || matches!(response, Response::Error { id: 0, .. }) {
            Ok(response)
        } else {
            Err(format!("response id {} does not match request id {id}", response.id()))
        }
    }

    /// Sends raw frame-payload bytes and decodes whatever comes back as
    /// JSON — the hook tests use to probe the daemon's malformed-input
    /// handling (only meaningful on a JSON connection).
    ///
    /// # Errors
    ///
    /// Transport failures, a closed connection, or an undecodable reply.
    pub fn raw_call(&mut self, payload: &[u8]) -> Result<Response, String> {
        write_frame(&mut self.stream, payload).map_err(|e| format!("send failed: {e}"))?;
        let frame = read_frame(&mut self.stream)
            .map_err(|e| format!("receive failed: {e}"))?
            .ok_or("the daemon closed the connection")?;
        Response::decode(&frame)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response kind.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.call(RequestBody::Ping)? {
            Response::Pong { .. } => Ok(()),
            other => Err(format!("expected pong, got {other:?}")),
        }
    }

    /// Fetches the daemon's metrics snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response kind.
    pub fn stats(&mut self) -> Result<Json, String> {
        match self.call(RequestBody::Stats)? {
            Response::Stats { metrics, .. } => Ok(metrics),
            other => Err(format!("expected stats, got {other:?}")),
        }
    }

    /// Requests a graceful drain; returns the daemon's lifetime
    /// completed-job count.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response kind.
    pub fn shutdown(&mut self) -> Result<u64, String> {
        match self.call(RequestBody::Shutdown)? {
            Response::Bye { completed, .. } => Ok(completed),
            other => Err(format!("expected bye, got {other:?}")),
        }
    }

    /// Submits a batch of jobs.
    ///
    /// # Errors
    ///
    /// Transport failures; the returned [`Response`] may itself be a
    /// typed error (overloaded, shutting down, …).
    pub fn run(
        &mut self,
        jobs: Vec<JobSpec>,
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.call(RequestBody::Run { jobs, deadline_ms })
    }

    /// Submits one job for manufacture-and-authenticate.
    ///
    /// # Errors
    ///
    /// Transport failures; the returned [`Response`] may itself be a
    /// typed error.
    pub fn authenticate(
        &mut self,
        job: JobSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.call(RequestBody::Authenticate { job, deadline_ms })
    }

    /// Submits a batch of side-channel detection jobs.
    ///
    /// # Errors
    ///
    /// Transport failures; the returned [`Response`] may itself be a
    /// typed error.
    pub fn detect(
        &mut self,
        jobs: Vec<DetectSpec>,
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.call(RequestBody::Detect { jobs, deadline_ms })
    }

    /// Submits a batch of stego-sanitization jobs.
    ///
    /// # Errors
    ///
    /// Transport failures; the returned [`Response`] may itself be a
    /// typed error.
    pub fn sanitize(
        &mut self,
        jobs: Vec<SanitizeSpec>,
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.call(RequestBody::Sanitize { jobs, deadline_ms })
    }
}

/// Timeout and bounded-exponential-backoff schedule for
/// [`RetryingClient`].
///
/// The backoff is **deterministic including its jitter**: attempt *k*
/// (zero-based) sleeps `min(base_backoff · 2^(k-1), max_backoff)` plus a
/// jitter drawn as a pure hash of `(jitter_seed, k)`, bounded by
/// `jitter`. Distinct seeds decorrelate the schedules of concurrent
/// clients — without the jitter, every load worker that watched the same
/// daemon die retries in lockstep and the reconnect burst arrives as one
/// synchronized wave — while a fixed seed keeps any single schedule
/// exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (≥ 1).
    pub attempts: u32,
    /// Per-read socket timeout; a response slower than this is a
    /// transport failure (and thus retryable).
    pub timeout: Duration,
    /// Sleep before the first retry.
    pub base_backoff: Duration,
    /// Backoff ceiling: doubling stops here (jitter is added on top).
    pub max_backoff: Duration,
    /// Upper bound on the deterministic jitter added to every backoff
    /// sleep; `Duration::ZERO` disables jitter entirely.
    pub jitter: Duration,
    /// Seed the jitter is derived from. Give concurrent clients distinct
    /// seeds (the load generator seeds each worker with its index) so
    /// their retry bursts de-synchronize.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            timeout: Duration::from_secs(30),
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(400),
            jitter: Duration::from_millis(25),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// This policy with a different jitter seed — how the load generator
    /// and the router hand each worker its own reproducible schedule.
    #[must_use]
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The sleep before retry number `retry` (zero-based):
    /// `base_backoff · 2^retry`, capped at `max_backoff`, plus the
    /// seeded jitter for this retry (at most `jitter`).
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        let base = self
            .base_backoff
            .checked_mul(factor)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff);
        base + self.jitter_for(retry)
    }

    /// The deterministic jitter component of [`RetryPolicy::backoff`]:
    /// a pure function of `(jitter_seed, retry)`, uniform over
    /// `[0, jitter]` in whole nanoseconds.
    fn jitter_for(&self, retry: u32) -> Duration {
        let cap_ns = u64::try_from(self.jitter.as_nanos()).unwrap_or(u64::MAX);
        if cap_ns == 0 {
            return Duration::ZERO;
        }
        let mut h = StageHasher::new("obfuscade/backoff/v1");
        h.write_u64(self.jitter_seed);
        h.write_u64(u64::from(retry));
        let draw = h.finish().to_words()[0] % (cap_ns + 1);
        Duration::from_nanos(draw)
    }
}

/// Is this typed response worth retrying? Only `overloaded` (queue was
/// momentarily full) and `internal` (the worker died; the supervisor
/// respawns it and the submission is idempotent). Everything else —
/// `malformed`, `forbidden`, `shutting_down`, per-job errors — is the
/// daemon's real answer.
fn retryable(response: &Response) -> bool {
    matches!(
        response,
        Response::Error { error: ServiceError::Overloaded | ServiceError::Internal, .. }
    )
}

/// A [`Client`] that survives daemon restarts: connects lazily, applies
/// the [`RetryPolicy`] read timeout, and on transport failures or
/// retryable typed errors backs off, reconnects if needed, and resends.
///
/// Resending is safe because `run`/`authenticate` submissions are
/// idempotent: the pipeline is deterministic and content-addressed, so
/// a duplicated execution produces byte-identical results. Requests
/// with side effects (`shutdown`) are deliberately not offered here.
///
/// Built over **one or more** endpoints: when a connection cannot be
/// established at the active endpoint, the client rotates to the next
/// one (a `failover`) before retrying — the client-side analogue of the
/// router tier's node failover, and safe for the same idempotency
/// reason. Single-endpoint clients never fail over.
pub struct RetryingClient {
    endpoints: Vec<Endpoint>,
    active: usize,
    policy: RetryPolicy,
    codec: Codec,
    conn: Option<Client>,
    retries: u64,
    connects: u64,
    failovers: u64,
}

impl RetryingClient {
    /// Creates the client without connecting; the first request (or
    /// [`RetryingClient::connect`]) establishes the connection. Speaks
    /// JSON; use [`RetryingClient::new_with_codec`] to negotiate binary.
    pub fn new(endpoint: &Endpoint, policy: RetryPolicy) -> RetryingClient {
        RetryingClient::new_with_codec(endpoint, policy, Codec::Json)
    }

    /// [`RetryingClient::new`] with an explicit codec. Every connection
    /// (including reconnects after transport failures) negotiates that
    /// codec before requests flow.
    pub fn new_with_codec(
        endpoint: &Endpoint,
        policy: RetryPolicy,
        codec: Codec,
    ) -> RetryingClient {
        RetryingClient::new_multi_with_codec(std::slice::from_ref(endpoint), policy, codec)
    }

    /// A client over several equivalent endpoints (e.g. the daemons of a
    /// routed fleet, addressed directly): connection failures rotate to
    /// the next endpoint instead of burning every attempt on a dead one.
    ///
    /// # Panics
    ///
    /// When `endpoints` is empty.
    pub fn new_multi_with_codec(
        endpoints: &[Endpoint],
        policy: RetryPolicy,
        codec: Codec,
    ) -> RetryingClient {
        assert!(!endpoints.is_empty(), "a RetryingClient needs at least one endpoint");
        RetryingClient {
            endpoints: endpoints.to_vec(),
            active: 0,
            policy,
            codec,
            conn: None,
            retries: 0,
            connects: 0,
            failovers: 0,
        }
    }

    /// Retries performed so far — backoff-then-resend cycles, whether
    /// triggered by transport failures or retryable typed errors.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Connections established over this client's lifetime. A healthy
    /// run reuses one connection for every request, so this stays at 1;
    /// each transport-failure reconnect adds one.
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Connections established beyond the first — the chaos-forced
    /// portion of [`RetryingClient::connects`]; 0 for a healthy run.
    pub fn reconnects(&self) -> u64 {
        self.connects.saturating_sub(1)
    }

    /// Times this client rotated to another endpoint after failing to
    /// connect to the active one. Always 0 for single-endpoint clients.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// The endpoint the next connection attempt will target.
    pub fn active_endpoint(&self) -> &Endpoint {
        &self.endpoints[self.active]
    }

    /// Rotates to the next endpoint after a connect failure.
    fn fail_over(&mut self) {
        if self.endpoints.len() > 1 {
            self.active = (self.active + 1) % self.endpoints.len();
            self.failovers += 1;
        }
    }

    /// Establishes the connection now, retrying with backoff per the
    /// policy. Useful to fail fast before starting a measured run.
    ///
    /// # Errors
    ///
    /// Connection still failing after all attempts.
    pub fn connect(&mut self) -> Result<(), String> {
        let mut last = String::new();
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff(attempt - 1));
                self.retries += 1;
            }
            if self.conn.is_some() {
                return Ok(());
            }
            let endpoint = &self.endpoints[self.active];
            match Client::connect_with_codec(endpoint, Some(self.policy.timeout), self.codec) {
                Ok(client) => {
                    self.connects += 1;
                    self.conn = Some(client);
                    return Ok(());
                }
                Err(err) => {
                    last = err.to_string();
                    self.fail_over();
                }
            }
        }
        Err(format!(
            "could not connect after {} attempts: {last}",
            self.policy.attempts.max(1)
        ))
    }

    /// Submits a `run` batch, retrying transient failures.
    ///
    /// # Errors
    ///
    /// Transport still failing (or the daemon still answering
    /// `overloaded`/`internal`) after all attempts. A non-retryable
    /// typed error comes back as `Ok(Response::Error { .. })`.
    pub fn run(
        &mut self,
        jobs: &[JobSpec],
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.call_with_retry(|client| client.run(jobs.to_vec(), deadline_ms))
    }

    /// Submits an `authenticate` job, retrying transient failures.
    ///
    /// # Errors
    ///
    /// As for [`RetryingClient::run`].
    pub fn authenticate(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.call_with_retry(|client| client.authenticate(job.clone(), deadline_ms))
    }

    /// Submits a `detect` batch, retrying transient failures — safe for
    /// the same reason as `run`: detection is deterministic and
    /// content-addressed, so a duplicate execution returns identical
    /// reports.
    ///
    /// # Errors
    ///
    /// As for [`RetryingClient::run`].
    pub fn detect(
        &mut self,
        jobs: &[DetectSpec],
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.call_with_retry(|client| client.detect(jobs.to_vec(), deadline_ms))
    }

    /// Submits a `sanitize` batch, retrying transient failures.
    ///
    /// # Errors
    ///
    /// As for [`RetryingClient::run`].
    pub fn sanitize(
        &mut self,
        jobs: &[SanitizeSpec],
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.call_with_retry(|client| client.sanitize(jobs.to_vec(), deadline_ms))
    }

    /// Fetches the daemon's metrics snapshot, retrying transient
    /// failures.
    ///
    /// # Errors
    ///
    /// As for [`RetryingClient::run`], plus an unexpected response
    /// kind.
    pub fn stats(&mut self) -> Result<Json, String> {
        match self.call_with_retry(|client| client.call(RequestBody::Stats))? {
            Response::Stats { metrics, .. } => Ok(metrics),
            other => Err(format!("expected stats, got {other:?}")),
        }
    }

    fn call_with_retry(
        &mut self,
        mut send: impl FnMut(&mut Client) -> Result<Response, String>,
    ) -> Result<Response, String> {
        let attempts = self.policy.attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff(attempt - 1));
                self.retries += 1;
            }
            let client = match self.conn {
                Some(ref mut client) => client,
                None => {
                    let endpoint = self.endpoints[self.active].clone();
                    match Client::connect_with_codec(
                        &endpoint,
                        Some(self.policy.timeout),
                        self.codec,
                    ) {
                        Ok(client) => {
                            self.connects += 1;
                            self.conn.insert(client)
                        }
                        Err(err) => {
                            last = format!("connect failed: {err}");
                            self.fail_over();
                            continue;
                        }
                    }
                }
            };
            match send(client) {
                Ok(response) if retryable(&response) => {
                    // The connection is still healthy; only the request
                    // needs another go.
                    if let Response::Error { ref error, .. } = response {
                        last = format!("daemon answered `{}`", error.name());
                    }
                }
                Ok(response) => return Ok(response),
                Err(err) => {
                    // Transport failure: the stream is in an unknown
                    // state, drop it and reconnect on the next attempt.
                    self.conn = None;
                    last = err;
                }
            }
        }
        Err(format!("gave up after {attempts} attempts: {last}"))
    }
}

/// What one load run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: u64,
    /// Client threads used.
    pub concurrency: usize,
    /// Transport failures plus typed error responses.
    pub errors: u64,
    /// Client threads that failed to establish their connection.
    pub dropped_connections: u64,
    /// Responses whose body differed from the expected wire bytes.
    pub mismatches: u64,
    /// Backoff-then-resend cycles across all threads. A retried request
    /// that eventually succeeds counts here and **not** in `errors` or
    /// `dropped_connections` — a run is still [`LoadReport::clean`]
    /// under chaos as long as every request got correct bytes in the
    /// end.
    pub retries: u64,
    /// Connections established across all threads. Each thread reuses
    /// one connection for its whole share, so a clean run reports
    /// exactly `concurrency`; anything above that is chaos-forced
    /// reconnects.
    pub connects: u64,
    /// Connections established beyond each thread's first — the
    /// chaos-forced portion of `connects`, summed across threads. 0 for
    /// a healthy run regardless of concurrency.
    pub reconnects: u64,
    /// Times a worker's client rotated to another endpoint after a
    /// connect failure. Always 0 for single-endpoint loads; nonzero only
    /// when the load was pointed at several fleet endpoints directly.
    pub failovers: u64,
    /// Per-request round-trip latencies, sorted ascending (ms).
    pub latencies_ms: Vec<f64>,
    /// Wall-clock duration of the whole run (s).
    pub wall_s: f64,
}

impl LoadReport {
    /// Exact sample quantile (0 < q ≤ 1): the ⌈q·n⌉-th smallest latency
    /// per the workspace-wide rank rule
    /// ([`obfuscade::metrics::quantile`]). 0 when no request completed.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        obfuscade::metrics::quantile(&self.latencies_ms, q)
    }

    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_s > 0.0 {
            (self.requests - self.errors) as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// `true` when nothing was dropped, rejected, or served wrong bytes.
    pub fn clean(&self) -> bool {
        self.errors == 0 && self.dropped_connections == 0 && self.mismatches == 0
    }
}

/// Computes, in-process, the exact wire encoding a `run` request over
/// `jobs` must come back with: the batch runs through
/// [`obfuscade::run_pipeline_jobs`] against a fresh cache and each
/// outcome is encoded with [`encode_outcome`] — the same function the
/// daemon uses.
///
/// # Errors
///
/// An invalid part family or fault spec in `jobs`.
pub fn expected_results_wire(jobs: &[JobSpec]) -> Result<String, String> {
    let mut parts = Vec::with_capacity(jobs.len());
    let mut faults = Vec::with_capacity(jobs.len());
    for job in jobs {
        parts.push(job.build_part()?);
        faults.push(job.fault_plan()?);
    }
    let batch: Vec<BatchJob<'_>> = jobs
        .iter()
        .zip(parts.iter())
        .zip(faults.iter())
        .map(|((job, part), fault)| BatchJob { part, plan: job.plan(), faults: fault.clone() })
        .collect();
    let cache = StageCache::with_budget(StageCache::DEFAULT_BUDGET);
    let outcomes = run_pipeline_jobs(&batch, &cache, Parallelism::serial());
    Ok(Json::Array(outcomes.iter().map(encode_outcome).collect()).render())
}

/// Computes, in-process, the exact wire encoding a `detect` request over
/// `specs` must come back with — the same `am_detect::detect_counterfeit`
/// calls the daemon makes, against a fresh cache, encoded with
/// [`encode_detect_outcome`].
///
/// # Errors
///
/// An invalid part family, fault spec, or capture-quality preset.
pub fn expected_detections_wire(specs: &[DetectSpec]) -> Result<String, String> {
    let cache = StageCache::with_budget(StageCache::DEFAULT_BUDGET);
    let mut reports = Vec::with_capacity(specs.len());
    for spec in specs {
        am_detect::capture_quality(&spec.quality)?;
        let part = spec.job.build_part()?;
        let faults = spec.job.fault_plan()?;
        let config = am_detect::DetectConfig {
            quality: spec.quality.clone(),
            jam_amplitude: spec.jam_amplitude,
            trace_seed: spec.trace_seed,
            ..am_detect::DetectConfig::default()
        };
        let outcome = am_detect::detect_counterfeit(
            &part,
            &spec.job.plan(),
            &faults,
            &spec.job.faults,
            &config,
            &cache,
            obfuscade::Deadline::none(),
        );
        reports.push(encode_detect_outcome(&outcome));
    }
    Ok(Json::Array(reports).render())
}

/// Computes, in-process, the exact wire encoding a `sanitize` request
/// over `specs` must come back with (see [`expected_detections_wire`]).
///
/// # Errors
///
/// An invalid part family or fault spec.
pub fn expected_sanitize_wire(specs: &[SanitizeSpec]) -> Result<String, String> {
    let cache = StageCache::with_budget(StageCache::DEFAULT_BUDGET);
    let mut reports = Vec::with_capacity(specs.len());
    for spec in specs {
        let part = spec.job.build_part()?;
        let faults = spec.job.fault_plan()?;
        let config = am_detect::SanitizeConfig {
            payload_seed: spec.payload_seed,
            payload_bits: spec.payload_bits as u32,
        };
        let outcome = am_detect::sanitize_toolpath(
            &part,
            &spec.job.plan(),
            &faults,
            &config,
            &cache,
            obfuscade::Deadline::none(),
        );
        reports.push(encode_sanitize_outcome(&outcome));
    }
    Ok(Json::Array(reports).render())
}

/// Drives `total` identical `run` requests at the daemon from
/// `concurrency` client threads (each with its own connection) and
/// measures per-request round-trip latency.
///
/// When `expected` is given (see [`expected_results_wire`]), each
/// response's results array must render to exactly those bytes;
/// divergences are counted as mismatches.
pub fn run_load(
    endpoint: &Endpoint,
    total: u64,
    concurrency: usize,
    jobs: &[JobSpec],
    expected: Option<&str>,
) -> LoadReport {
    run_load_with(endpoint, total, concurrency, jobs, expected, &RetryPolicy::default(), Codec::Json)
}

/// [`run_load`] with an explicit [`RetryPolicy`] and wire codec: each
/// client thread drives a [`RetryingClient`], so transient failures
/// (chaos-injected connection drops, worker panics, even a daemon
/// restart mid-run) are retried with backoff instead of counted as
/// errors. Only a request that still fails after exhausting the
/// policy's attempts — or a non-retryable typed error — lands in
/// `errors`.
///
/// The byte-identity check is codec-independent: binary responses are
/// decoded and re-rendered as canonical JSON before comparing against
/// `expected`, so both codecs must agree with the in-process reference.
pub fn run_load_with(
    endpoint: &Endpoint,
    total: u64,
    concurrency: usize,
    jobs: &[JobSpec],
    expected: Option<&str>,
    policy: &RetryPolicy,
    codec: Codec,
) -> LoadReport {
    let concurrency = concurrency.max(1);
    let report = Mutex::new(LoadReport {
        requests: total,
        concurrency,
        ..LoadReport::default()
    });
    let started = Instant::now();

    std::thread::scope(|scope| {
        for worker in 0..concurrency {
            // Spread the total across threads, first threads take the
            // remainder.
            let share = total / concurrency as u64
                + u64::from((worker as u64) < total % concurrency as u64);
            if share == 0 {
                continue;
            }
            let report = &report;
            let jobs = jobs.to_vec();
            scope.spawn(move || {
                // Each worker gets its own jitter seed, so the backoff
                // schedules of workers that hit the same outage spread
                // out instead of re-bursting in lockstep.
                let policy = policy.with_jitter_seed(worker as u64 + 1);
                let mut client = RetryingClient::new_with_codec(endpoint, policy, codec);
                if client.connect().is_err() {
                    let mut r = report.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    r.dropped_connections += 1;
                    r.errors += share;
                    merge_client_counters(&mut r, &client);
                    return;
                }
                let mut latencies = Vec::with_capacity(share as usize);
                let mut errors = 0u64;
                let mut mismatches = 0u64;
                for _ in 0..share {
                    let sent = Instant::now();
                    match client.run(&jobs, None) {
                        Ok(Response::Results { results, .. }) => {
                            latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                            if let Some(expected) = expected {
                                if Json::Array(results).render() != expected {
                                    mismatches += 1;
                                }
                            }
                        }
                        Ok(_) | Err(_) => errors += 1,
                    }
                }
                let mut r = report.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                r.latencies_ms.extend(latencies);
                r.errors += errors;
                r.mismatches += mismatches;
                merge_client_counters(&mut r, &client);
            });
        }
    });

    let mut report = report.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    report.wall_s = started.elapsed().as_secs_f64();
    report
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    report
}

/// Folds one worker's client counters into the shared report.
fn merge_client_counters(report: &mut LoadReport, client: &RetryingClient) {
    report.retries += client.retries();
    report.connects += client.connects();
    report.reconnects += client.reconnects();
    report.failovers += client.failovers();
}

/// One request of a mixed load run: a job batch plus (optionally) its
/// expected results-array rendering from [`expected_results_wire`].
#[derive(Debug, Clone)]
pub struct LoadRequest {
    /// Jobs submitted together in one `run` frame.
    pub jobs: Vec<JobSpec>,
    /// Expected wire rendering of the results array; responses that
    /// differ count as mismatches.
    pub expected: Option<String>,
}

/// Like [`run_load_with`], but every request can carry a *different*
/// job batch — the shape fleet sweeps need, where the request stream
/// interleaves several stage-key prefixes. Worker `w` takes requests
/// `w, w + concurrency, w + 2·concurrency, …` in order, so a seed-major
/// request grid spreads each wave of prefixes across the workers
/// deterministically.
pub fn run_load_mixed(
    endpoint: &Endpoint,
    requests: &[LoadRequest],
    concurrency: usize,
    policy: &RetryPolicy,
    codec: Codec,
) -> LoadReport {
    let concurrency = concurrency.max(1);
    let report = Mutex::new(LoadReport {
        requests: requests.len() as u64,
        concurrency,
        ..LoadReport::default()
    });
    let started = Instant::now();

    std::thread::scope(|scope| {
        for worker in 0..concurrency {
            if worker >= requests.len() {
                continue;
            }
            let report = &report;
            scope.spawn(move || {
                let policy = policy.with_jitter_seed(worker as u64 + 1);
                let mut client = RetryingClient::new_with_codec(endpoint, policy, codec);
                let share = requests.iter().skip(worker).step_by(concurrency);
                if client.connect().is_err() {
                    let mut r = report.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    r.dropped_connections += 1;
                    r.errors += share.count() as u64;
                    merge_client_counters(&mut r, &client);
                    return;
                }
                let mut latencies = Vec::new();
                let mut errors = 0u64;
                let mut mismatches = 0u64;
                for request in share {
                    let sent = Instant::now();
                    match client.run(&request.jobs, None) {
                        Ok(Response::Results { results, .. }) => {
                            latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                            if let Some(expected) = &request.expected {
                                if Json::Array(results).render() != *expected {
                                    mismatches += 1;
                                }
                            }
                        }
                        Ok(_) | Err(_) => errors += 1,
                    }
                }
                let mut r = report.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                r.latencies_ms.extend(latencies);
                r.errors += errors;
                r.mismatches += mismatches;
                merge_client_counters(&mut r, &client);
            });
        }
    });

    let mut report = report.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    report.wall_s = started.elapsed().as_secs_f64();
    report
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_deterministically_and_caps() {
        let policy = RetryPolicy { jitter: Duration::ZERO, ..RetryPolicy::default() };
        assert_eq!(policy.backoff(0), Duration::from_millis(25));
        assert_eq!(policy.backoff(1), Duration::from_millis(50));
        assert_eq!(policy.backoff(2), Duration::from_millis(100));
        assert_eq!(policy.backoff(3), Duration::from_millis(200));
        assert_eq!(policy.backoff(4), Duration::from_millis(400));
        assert_eq!(policy.backoff(5), Duration::from_millis(400));
        assert_eq!(policy.backoff(63), Duration::from_millis(400));
    }

    #[test]
    fn backoff_jitter_is_bounded_seeded_and_reproducible() {
        let policy = RetryPolicy::default();
        for retry in 0..8 {
            let pure =
                RetryPolicy { jitter: Duration::ZERO, ..policy }.backoff(retry);
            let jittered = policy.backoff(retry);
            // Bounded: never below the doubling schedule, never more
            // than the jitter cap above it.
            assert!(jittered >= pure, "retry {retry}: {jittered:?} < {pure:?}");
            assert!(
                jittered <= pure + policy.jitter,
                "retry {retry}: jitter exceeded its cap"
            );
            // Reproducible: the same seed always draws the same sleep.
            assert_eq!(jittered, policy.backoff(retry));
        }
        // Seeded: distinct seeds decorrelate — across a handful of
        // retries at least one sleep must differ (the fix for the
        // synchronized dead-socket retry burst across load workers).
        let other = policy.with_jitter_seed(7);
        assert!(
            (0..8).any(|r| policy.backoff(r) != other.backoff(r)),
            "distinct jitter seeds produced identical schedules"
        );
    }

    #[test]
    fn multi_endpoint_client_fails_over_between_dead_endpoints() {
        let policy = RetryPolicy {
            attempts: 3,
            timeout: Duration::from_millis(200),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter: Duration::from_millis(1),
            jitter_seed: 1,
        };
        // Two ports from the low range nothing in the suite binds.
        let endpoints =
            [Endpoint::Tcp("127.0.0.1:1".to_string()), Endpoint::Tcp("127.0.0.1:2".to_string())];
        let mut client = RetryingClient::new_multi_with_codec(&endpoints, policy, Codec::Json);
        let err = client.run(&[JobSpec::default()], None).unwrap_err();
        assert!(err.contains("gave up after 3 attempts"), "{err}");
        // Every failed connect rotated to the other endpoint.
        assert_eq!(client.failovers(), 3);
        assert_eq!(client.reconnects(), 0);
        // A single-endpoint client never fails over.
        let mut single = RetryingClient::new(&endpoints[0], policy);
        let _ = single.run(&[JobSpec::default()], None).unwrap_err();
        assert_eq!(single.failovers(), 0);
    }

    #[test]
    fn only_overloaded_and_internal_are_retryable() {
        let wrap = |error: ServiceError| Response::Error { id: 1, error, message: String::new() };
        assert!(retryable(&wrap(ServiceError::Overloaded)));
        assert!(retryable(&wrap(ServiceError::Internal)));
        assert!(!retryable(&wrap(ServiceError::Malformed)));
        assert!(!retryable(&wrap(ServiceError::Forbidden)));
        assert!(!retryable(&wrap(ServiceError::ShuttingDown)));
        assert!(!retryable(&Response::Pong { id: 1 }));
    }

    #[test]
    fn exhausted_retries_against_a_dead_endpoint_fail_with_context() {
        let policy = RetryPolicy {
            attempts: 2,
            timeout: Duration::from_millis(200),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter: Duration::from_millis(1),
            jitter_seed: 0,
        };
        // A port from the dynamic range nothing in the test suite binds.
        let endpoint = Endpoint::Tcp("127.0.0.1:1".to_string());
        let mut client = RetryingClient::new(&endpoint, policy);
        let err = client.run(&[JobSpec::default()], None).unwrap_err();
        assert!(err.contains("gave up after 2 attempts"), "{err}");
        assert_eq!(client.retries(), 1);
    }

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let report = LoadReport {
            requests: 4,
            latencies_ms: vec![1.0, 2.0, 3.0, 4.0],
            wall_s: 2.0,
            ..LoadReport::default()
        };
        assert_eq!(report.quantile_ms(0.25), 1.0);
        assert_eq!(report.quantile_ms(0.5), 2.0);
        assert_eq!(report.quantile_ms(0.75), 3.0);
        assert_eq!(report.quantile_ms(0.99), 4.0);
        assert_eq!(report.quantile_ms(1.0), 4.0);
        assert!((report.throughput_rps() - 2.0).abs() < 1e-12);
        assert!(report.clean());
        assert_eq!(LoadReport::default().quantile_ms(0.5), 0.0);
    }

    #[test]
    fn expected_wire_is_deterministic() {
        let jobs = vec![JobSpec::default()];
        let a = expected_results_wire(&jobs).expect("reference run");
        let b = expected_results_wire(&jobs).expect("reference run");
        assert_eq!(a, b);
        assert!(a.starts_with('['), "a results array: {a}");
    }
}
