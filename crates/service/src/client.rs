//! Client side: a blocking one-request-at-a-time [`Client`], plus the
//! [`run_load`] generator the CLI (`submit --load`) and the bench serve
//! mode use to measure the daemon under concurrency.
//!
//! The load generator verifies more than liveness: when given the
//! expected wire encoding (computed in-process by
//! [`expected_results_wire`] over the same job specs), every response
//! body is compared byte-for-byte — any divergence between the served
//! pipeline and a local [`obfuscade::run_pipeline_jobs`] run counts as a
//! `mismatch` and fails the run.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use am_par::Parallelism;
use obfuscade::json::Json;
use obfuscade::{run_pipeline_jobs, BatchJob, StageCache};

use crate::protocol::{
    encode_outcome, read_frame, write_frame, JobSpec, Request, RequestBody, Response,
};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:4817`.
    Tcp(String),
    /// A Unix-domain socket path (Unix only; connecting on other
    /// platforms errors).
    Unix(PathBuf),
}

/// The underlying connected stream.
enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// A blocking service client: one in-flight request at a time, ids
/// assigned sequentially per connection.
pub struct Client {
    stream: ClientStream,
    next_id: u64,
}

impl Client {
    /// Connects to the daemon.
    ///
    /// # Errors
    ///
    /// Connection failures; on non-Unix platforms, any
    /// [`Endpoint::Unix`].
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let stream = match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                let _ = stream.set_nodelay(true);
                ClientStream::Tcp(stream)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                ClientStream::Unix(std::os::unix::net::UnixStream::connect(path)?)
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix-domain sockets are not available on this platform",
                ))
            }
        };
        Ok(Client { stream, next_id: 1 })
    }

    /// Sends one request body and waits for the matching response.
    ///
    /// # Errors
    ///
    /// Transport failures, a closed connection, an undecodable reply, or
    /// a response id that does not echo the request id.
    pub fn call(&mut self, body: RequestBody) -> Result<Response, String> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request { id, body };
        self.raw_call(&request.encode()).and_then(|response| {
            if response.id() == id || matches!(response, Response::Error { id: 0, .. }) {
                Ok(response)
            } else {
                Err(format!("response id {} does not match request id {id}", response.id()))
            }
        })
    }

    /// Sends raw frame-payload bytes and decodes whatever comes back —
    /// the hook tests use to probe the daemon's malformed-input handling.
    ///
    /// # Errors
    ///
    /// Transport failures, a closed connection, or an undecodable reply.
    pub fn raw_call(&mut self, payload: &[u8]) -> Result<Response, String> {
        write_frame(&mut self.stream, payload).map_err(|e| format!("send failed: {e}"))?;
        let frame = read_frame(&mut self.stream)
            .map_err(|e| format!("receive failed: {e}"))?
            .ok_or("the daemon closed the connection")?;
        Response::decode(&frame)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response kind.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.call(RequestBody::Ping)? {
            Response::Pong { .. } => Ok(()),
            other => Err(format!("expected pong, got {other:?}")),
        }
    }

    /// Fetches the daemon's metrics snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response kind.
    pub fn stats(&mut self) -> Result<Json, String> {
        match self.call(RequestBody::Stats)? {
            Response::Stats { metrics, .. } => Ok(metrics),
            other => Err(format!("expected stats, got {other:?}")),
        }
    }

    /// Requests a graceful drain; returns the daemon's lifetime
    /// completed-job count.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response kind.
    pub fn shutdown(&mut self) -> Result<u64, String> {
        match self.call(RequestBody::Shutdown)? {
            Response::Bye { completed, .. } => Ok(completed),
            other => Err(format!("expected bye, got {other:?}")),
        }
    }

    /// Submits a batch of jobs.
    ///
    /// # Errors
    ///
    /// Transport failures; the returned [`Response`] may itself be a
    /// typed error (overloaded, shutting down, …).
    pub fn run(
        &mut self,
        jobs: Vec<JobSpec>,
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.call(RequestBody::Run { jobs, deadline_ms })
    }

    /// Submits one job for manufacture-and-authenticate.
    ///
    /// # Errors
    ///
    /// Transport failures; the returned [`Response`] may itself be a
    /// typed error.
    pub fn authenticate(
        &mut self,
        job: JobSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.call(RequestBody::Authenticate { job, deadline_ms })
    }
}

/// What one load run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: u64,
    /// Client threads used.
    pub concurrency: usize,
    /// Transport failures plus typed error responses.
    pub errors: u64,
    /// Client threads that failed to establish their connection.
    pub dropped_connections: u64,
    /// Responses whose body differed from the expected wire bytes.
    pub mismatches: u64,
    /// Per-request round-trip latencies, sorted ascending (ms).
    pub latencies_ms: Vec<f64>,
    /// Wall-clock duration of the whole run (s).
    pub wall_s: f64,
}

impl LoadReport {
    /// Exact sample quantile (0 < q ≤ 1): the ⌈q·n⌉-th smallest latency.
    /// 0 when no request completed.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let n = self.latencies_ms.len();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.latencies_ms[rank - 1]
    }

    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_s > 0.0 {
            (self.requests - self.errors) as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// `true` when nothing was dropped, rejected, or served wrong bytes.
    pub fn clean(&self) -> bool {
        self.errors == 0 && self.dropped_connections == 0 && self.mismatches == 0
    }
}

/// Computes, in-process, the exact wire encoding a `run` request over
/// `jobs` must come back with: the batch runs through
/// [`obfuscade::run_pipeline_jobs`] against a fresh cache and each
/// outcome is encoded with [`encode_outcome`] — the same function the
/// daemon uses.
///
/// # Errors
///
/// An invalid part family or fault spec in `jobs`.
pub fn expected_results_wire(jobs: &[JobSpec]) -> Result<String, String> {
    let mut parts = Vec::with_capacity(jobs.len());
    let mut faults = Vec::with_capacity(jobs.len());
    for job in jobs {
        parts.push(job.build_part()?);
        faults.push(job.fault_plan()?);
    }
    let batch: Vec<BatchJob<'_>> = jobs
        .iter()
        .zip(parts.iter())
        .zip(faults.iter())
        .map(|((job, part), fault)| BatchJob { part, plan: job.plan(), faults: fault.clone() })
        .collect();
    let cache = StageCache::with_budget(StageCache::DEFAULT_BUDGET);
    let outcomes = run_pipeline_jobs(&batch, &cache, Parallelism::serial());
    Ok(Json::Array(outcomes.iter().map(encode_outcome).collect()).render())
}

/// Drives `total` identical `run` requests at the daemon from
/// `concurrency` client threads (each with its own connection) and
/// measures per-request round-trip latency.
///
/// When `expected` is given (see [`expected_results_wire`]), each
/// response's results array must render to exactly those bytes;
/// divergences are counted as mismatches.
pub fn run_load(
    endpoint: &Endpoint,
    total: u64,
    concurrency: usize,
    jobs: &[JobSpec],
    expected: Option<&str>,
) -> LoadReport {
    let concurrency = concurrency.max(1);
    let report = Mutex::new(LoadReport {
        requests: total,
        concurrency,
        ..LoadReport::default()
    });
    let started = Instant::now();

    std::thread::scope(|scope| {
        for worker in 0..concurrency {
            // Spread the total across threads, first threads take the
            // remainder.
            let share = total / concurrency as u64
                + u64::from((worker as u64) < total % concurrency as u64);
            if share == 0 {
                continue;
            }
            let report = &report;
            let jobs = jobs.to_vec();
            scope.spawn(move || {
                let mut client = match Client::connect(endpoint) {
                    Ok(client) => client,
                    Err(_) => {
                        let mut r = report.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        r.dropped_connections += 1;
                        r.errors += share;
                        return;
                    }
                };
                let mut latencies = Vec::with_capacity(share as usize);
                let mut errors = 0u64;
                let mut mismatches = 0u64;
                for _ in 0..share {
                    let sent = Instant::now();
                    match client.run(jobs.clone(), None) {
                        Ok(Response::Results { results, .. }) => {
                            latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                            if let Some(expected) = expected {
                                if Json::Array(results).render() != expected {
                                    mismatches += 1;
                                }
                            }
                        }
                        Ok(_) | Err(_) => errors += 1,
                    }
                }
                let mut r = report.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                r.latencies_ms.extend(latencies);
                r.errors += errors;
                r.mismatches += mismatches;
            });
        }
    });

    let mut report = report.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    report.wall_s = started.elapsed().as_secs_f64();
    report
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let report = LoadReport {
            requests: 4,
            latencies_ms: vec![1.0, 2.0, 3.0, 4.0],
            wall_s: 2.0,
            ..LoadReport::default()
        };
        assert_eq!(report.quantile_ms(0.25), 1.0);
        assert_eq!(report.quantile_ms(0.5), 2.0);
        assert_eq!(report.quantile_ms(0.75), 3.0);
        assert_eq!(report.quantile_ms(0.99), 4.0);
        assert_eq!(report.quantile_ms(1.0), 4.0);
        assert!((report.throughput_rps() - 2.0).abs() < 1e-12);
        assert!(report.clean());
        assert_eq!(LoadReport::default().quantile_ms(0.5), 0.0);
    }

    #[test]
    fn expected_wire_is_deterministic() {
        let jobs = vec![JobSpec::default()];
        let a = expected_results_wire(&jobs).expect("reference run");
        let b = expected_results_wire(&jobs).expect("reference run");
        assert_eq!(a, b);
        assert!(a.starts_with('['), "a results array: {a}");
    }
}
