//! The obfuscation daemon: acceptor threads feed per-connection reader
//! threads, which either answer control requests inline (`ping`,
//! `stats`, `shutdown`) or push job requests onto one bounded queue that
//! a fixed pool of worker threads drains. All connections share a single
//! process-wide [`StageCache`] (and, through it, the fea crate's solver
//! pool), so repeated requests for the same stage prefixes are served
//! from cache across clients.
//!
//! # Admission control and shutdown
//!
//! The queue is bounded: a `run`/`authenticate` arriving while it is full
//! is rejected immediately with a typed `overloaded` error — the client
//! owns the retry policy. Shutdown is drain-then-stop: after a
//! `shutdown` request (or [`Server::begin_shutdown`]) no new jobs are
//! admitted, every queued and in-flight job still completes and its
//! response is delivered, and only then do the listeners close and the
//! worker threads exit. The phase transition happens under the queue
//! lock, so no job can slip in between "stop admitting" and "queue is
//! empty".
//!
//! Wire `shutdown` carries no authentication, so it is honored only
//! from local peers (loopback TCP or the Unix socket) unless
//! [`ServerConfig::allow_remote_shutdown`] is set — otherwise a daemon
//! bound to a routable address would be one anonymous frame away from a
//! permanent stop. Non-local shutdown attempts get a typed `forbidden`
//! error and the daemon keeps running.
//!
//! # Fault tolerance (PR 6)
//!
//! Workers are **supervised**: each job executes under
//! `std::panic::catch_unwind`, so a panicking job costs exactly that job
//! — its client receives a typed `internal` error (safe to retry:
//! submission is idempotent and content-addressed), the worker thread
//! exits, and a supervisor thread immediately spawns a replacement so
//! the queue keeps draining at full width. With
//! [`ServerConfig::spill_dir`] set, the shared cache gains a crash-safe
//! persistent spill tier ([`obfuscade::SpillStore`]) — evicted artifacts
//! survive a daemon kill and warm-start the next process.
//!
//! A deterministic **chaos layer** ([`ChaosPlan`]) injects the faults
//! this machinery defends against — accept-time connection drops,
//! mid-frame short reads and stalls, forced worker panics, and spill
//! write failures — all derived from one seed, so a failing run replays
//! exactly.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use am_par::Parallelism;
use obfuscade::json::Json;
use obfuscade::metrics::{LatencyHistogram, MetricsSnapshot, ServiceStats};
use obfuscade::{
    run_pipeline_jobs_with, BatchJob, Deadline, PipelineError, SpillStore, StageCache, StageHasher,
};

use crate::codec::{decode_hello, encode_hello, is_binary_hello, Codec, BINARY_VERSION};
use crate::protocol::{
    encode_detect_outcome, encode_outcome, encode_sanitize_outcome, read_frame, write_frame,
    DetectSpec, JobSpec, RequestBody, Response, SanitizeSpec, ServiceError,
};
use crate::reactor;

/// Lifecycle phase: accepting and executing.
pub(crate) const RUNNING: u8 = 0;
/// Draining: no new jobs admitted, queued/in-flight jobs still complete.
const DRAINING: u8 = 1;
/// Stopped: drain complete, listeners closing, workers exited.
pub(crate) const STOPPED: u8 = 2;

/// How long acceptors sleep between polls of their non-blocking
/// listeners (std has no accept-with-timeout).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Deterministic fault-injection plan: every chaos decision is a pure
/// function of the seed, the site name and a per-site ordinal, so a run
/// under a given seed replays its exact fault schedule.
///
/// Each knob is a `one_in` rate: the fault fires on roughly one out of
/// that many opportunities; `0` disables the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Drop an accepted connection immediately (one in N accepts).
    pub accept_drop_one_in: u64,
    /// Serve a 1-byte short read instead of a full one (one in N reads) —
    /// exercises the frame reassembly path.
    pub read_chop_one_in: u64,
    /// Stall a read for ~1 ms (one in N reads).
    pub read_stall_one_in: u64,
    /// Panic a worker at job pickup (one in N jobs) — exercises
    /// supervision and the typed `internal` error.
    pub worker_panic_one_in: u64,
    /// Fail a spill-tier disk append (one in N writes).
    pub spill_fail_one_in: u64,
}

impl ChaosPlan {
    /// The default chaos mix for `seed`: frequent short reads, regular
    /// accept drops and spill write failures, occasional stalls and
    /// worker panics. Matches the `serve --chaos-seed` CLI flag.
    pub fn from_seed(seed: u64) -> Self {
        ChaosPlan {
            seed,
            accept_drop_one_in: 8,
            read_chop_one_in: 4,
            read_stall_one_in: 32,
            worker_panic_one_in: 24,
            spill_fail_one_in: 8,
        }
    }

    /// The deterministic coin flip: does the `ordinal`-th opportunity at
    /// `site` fault, at a one-in-`one_in` rate?
    fn fires(&self, site: &str, ordinal: u64, one_in: u64) -> bool {
        if one_in == 0 {
            return false;
        }
        let mut h = StageHasher::new("obfuscade/chaos/v1");
        h.write_u64(self.seed);
        h.write_str(site);
        h.write_u64(ordinal);
        h.finish().to_words()[0].is_multiple_of(one_in)
    }
}

/// Live chaos state: the plan plus one monotonically increasing ordinal
/// per site, giving every opportunity a stable identity.
struct ChaosState {
    plan: ChaosPlan,
    accepts: AtomicU64,
    reads: AtomicU64,
    jobs: AtomicU64,
}

impl ChaosState {
    fn new(plan: ChaosPlan) -> Self {
        ChaosState {
            plan,
            accepts: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
        }
    }

    fn drop_accept(&self) -> bool {
        let n = self.accepts.fetch_add(1, Ordering::Relaxed);
        self.plan.fires("accept_drop", n, self.plan.accept_drop_one_in)
    }

    /// Read-time decision: `(stall, chop)` for this read opportunity.
    fn read_fault(&self) -> (bool, bool) {
        let n = self.reads.fetch_add(1, Ordering::Relaxed);
        (
            self.plan.fires("read_stall", n, self.plan.read_stall_one_in),
            self.plan.fires("read_chop", n, self.plan.read_chop_one_in),
        )
    }

    fn panic_job(&self) -> bool {
        let n = self.jobs.fetch_add(1, Ordering::Relaxed);
        self.plan.fires("worker_panic", n, self.plan.worker_panic_one_in)
    }
}

/// Which connection layer the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnBackend {
    /// One OS thread per connection (the PR 5 design, retained as the
    /// oracle the reactor is byte-compared against). Caps concurrent
    /// clients at thread count; works on every platform.
    Threads,
    /// One non-blocking reactor thread multiplexing every socket through
    /// epoll ([`am_reactor::Poller`]): per-connection state machines with
    /// partial-frame reassembly, write backpressure and idle/slow-loris
    /// timeouts. Linux only.
    Reactor,
}

impl ConnBackend {
    /// Stable lowercase name (CLI flag value, metrics field).
    pub fn name(&self) -> &'static str {
        match self {
            ConnBackend::Threads => "threads",
            ConnBackend::Reactor => "reactor",
        }
    }

    /// Parses a CLI flag value.
    ///
    /// # Errors
    ///
    /// The unknown name.
    pub fn from_name(name: &str) -> Result<ConnBackend, String> {
        match name {
            "threads" => Ok(ConnBackend::Threads),
            "reactor" => Ok(ConnBackend::Reactor),
            other => Err(format!("unknown backend `{other}` (threads|reactor)")),
        }
    }
}

impl Default for ConnBackend {
    /// The reactor where it exists (Linux), threads elsewhere.
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            ConnBackend::Reactor
        } else {
            ConnBackend::Threads
        }
    }
}

/// Where admitted jobs are executed: in-process (the daemon proper) or
/// handed to a [`Forwarder`] (the router tier). Everything in front of
/// the engine — both connection backends, both codecs, admission
/// control, the queue, stats — is shared; only the execution step
/// differs.
#[derive(Clone, Default)]
pub enum Engine {
    /// Run jobs against this process's shared [`StageCache`] (default).
    #[default]
    Local,
    /// Hand jobs to a forwarder — `am-router` plugs its rendezvous fleet
    /// in here, turning the server into a routing front end.
    Forward(Arc<dyn Forwarder>),
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Local => f.write_str("Engine::Local"),
            Engine::Forward(_) => f.write_str("Engine::Forward(..)"),
        }
    }
}

/// Executes queued jobs somewhere other than the local pipeline. The
/// implementation owns delivery (routing, retries, failover) and must
/// return a [`Response`] carrying the **front** request id `id` — the
/// one the waiting client correlates on — whatever ids it used upstream.
pub trait Forwarder: Send + Sync {
    /// Forwards one `run` batch; `deadline_ms` is the client's original
    /// per-request budget, to be passed through untouched.
    fn run(&self, id: u64, specs: &[JobSpec], deadline_ms: Option<u64>) -> Response;

    /// Forwards one `authenticate` probe.
    fn authenticate(&self, id: u64, spec: &JobSpec, deadline_ms: Option<u64>) -> Response;

    /// Forwards one `detect` batch.
    fn detect(&self, id: u64, specs: &[DetectSpec], deadline_ms: Option<u64>) -> Response;

    /// Forwards one `sanitize` batch.
    fn sanitize(&self, id: u64, specs: &[SanitizeSpec], deadline_ms: Option<u64>) -> Response;

    /// Routing-tier counters for the stats wire (`fleet` section of the
    /// metrics snapshot). `None` keeps the section `null`.
    fn stats(&self) -> Option<Json> {
        None
    }
}

/// Everything needed to boot a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP bind address; port 0 picks a free port (read it back with
    /// [`Server::addr`]).
    pub addr: String,
    /// Optional Unix-domain socket path to listen on as well
    /// (Unix only; `Some` on other platforms is a start error).
    pub unix_socket: Option<PathBuf>,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects with
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Thread budget *within* one batch request. Serial by default —
    /// concurrency comes from the worker pool fanning across requests,
    /// and the determinism contract makes the choice unobservable in
    /// responses.
    pub parallelism: Parallelism,
    /// Byte budget of the shared stage cache.
    pub cache_budget: usize,
    /// Honor wire `shutdown` from non-local peers. **Off by default**:
    /// `shutdown` carries no authentication, so on a non-loopback `addr`
    /// any anonymous client could otherwise stop the daemon permanently.
    /// Loopback TCP peers and Unix-socket peers may always shut down.
    pub allow_remote_shutdown: bool,
    /// Directory of the persistent spill tier. When set, cache evictions
    /// spill to CRC-checked segment files there and a restarted daemon
    /// pointed at the same directory warm-starts from them.
    pub spill_dir: Option<PathBuf>,
    /// Deterministic fault injection; `None` (the default) runs clean.
    pub chaos: Option<ChaosPlan>,
    /// Connection layer: the epoll reactor (default on Linux) or the
    /// thread-per-connection oracle.
    pub backend: ConnBackend,
    /// Refuse binary codec negotiation: a binary hello gets a typed
    /// `bad_codec` error and the connection stays JSON. Off by default
    /// (the daemon speaks both; clients that never negotiate stay JSON
    /// regardless).
    pub json_only: bool,
    /// Reactor-only: a connection that makes no progress for this long —
    /// no bytes read or written, nothing in flight — is closed. Also the
    /// slow-loris bound: a peer dribbling a partial frame must finish it
    /// within this window.
    pub idle_timeout: Duration,
    /// Operator-chosen node name surfaced in stats snapshots (`serve
    /// --node`). Empty (the default) means unnamed; fleet tooling names
    /// each backend so routed deployments can tell the N daemons apart.
    pub node: String,
    /// Job execution engine: local pipeline (default) or a forwarder.
    pub engine: Engine,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            unix_socket: None,
            workers: 2,
            queue_capacity: 64,
            parallelism: Parallelism::serial(),
            cache_budget: StageCache::DEFAULT_BUDGET,
            allow_remote_shutdown: false,
            spill_dir: None,
            chaos: None,
            backend: ConnBackend::default(),
            json_only: false,
            idle_timeout: Duration::from_secs(60),
            node: String::new(),
            engine: Engine::Local,
        }
    }
}

/// Where a worker's response goes, and in which codec. Both backends
/// admit jobs through the same queue; only the delivery route differs.
#[derive(Clone)]
pub(crate) enum ReplySink {
    /// Thread backend: the connection's writer-thread channel.
    Channel {
        /// Encoded frame payloads for the writer thread.
        tx: Sender<Vec<u8>>,
        /// The connection's negotiated codec.
        codec: Codec,
    },
    /// Reactor backend: the reactor's completion hub plus the connection
    /// token the response is for.
    Reactor {
        /// Connection token inside the reactor.
        conn: u64,
        /// Completion queue + waker shared with the reactor thread.
        hub: Arc<reactor::Hub>,
        /// The connection's negotiated codec.
        codec: Codec,
    },
}

impl ReplySink {
    /// Encodes `response` under the connection's codec and routes it.
    pub(crate) fn send(&self, response: &Response) {
        match self {
            ReplySink::Channel { tx, codec } => {
                let _ = tx.send(codec.encode_response(response));
            }
            ReplySink::Reactor { conn, hub, codec } => {
                hub.push(*conn, codec.encode_response(response));
            }
        }
    }
}

/// A job admitted to the queue, waiting for a worker.
struct QueuedJob {
    request_id: u64,
    work: Work,
    deadline: Deadline,
    /// The client's original deadline in milliseconds, preserved so a
    /// forwarding engine can pass the budget through to a backend
    /// untouched (re-deriving it from `deadline` would shrink it by the
    /// local queue wait).
    deadline_ms: Option<u64>,
    reply: ReplySink,
    enqueued: Instant,
}

/// The queueable request kinds.
enum Work {
    Run(Vec<JobSpec>),
    Authenticate(JobSpec),
    Detect(Vec<DetectSpec>),
    Sanitize(Vec<SanitizeSpec>),
}

/// State shared by acceptors, connection readers and workers.
pub(crate) struct Shared {
    cache: StageCache,
    parallelism: Parallelism,
    workers: usize,
    queue_capacity: usize,
    allow_remote_shutdown: bool,
    backend: ConnBackend,
    json_only: bool,
    node: String,
    engine: Engine,
    pub(crate) idle_timeout: Duration,
    queue: Mutex<VecDeque<QueuedJob>>,
    /// Signalled when a job is enqueued or the phase changes.
    queue_cv: Condvar,
    /// Signalled when a job finishes (drain waits on it).
    drained_cv: Condvar,
    in_flight: AtomicUsize,
    phase: AtomicU8,
    pub(crate) connections: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    worker_panics: AtomicU64,
    respawns: AtomicU64,
    /// Request frames decoded under the JSON codec.
    frames_json: AtomicU64,
    /// Request frames decoded under the binary codec.
    frames_binary: AtomicU64,
    /// Connections that successfully negotiated the binary codec.
    binary_negotiated: AtomicU64,
    /// Reactor writes deferred because the peer's socket buffer was full
    /// (each is one `WouldBlock` → wait-for-writable transition).
    pub(crate) backpressure_stalls: AtomicU64,
    latency: Mutex<LatencyHistogram>,
    chaos: Option<ChaosState>,
    /// Handles of live (and exited) worker threads. The supervisor pushes
    /// replacements here; [`Server::join`] drains it.
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Channel to the supervisor thread (worker-death notices, stop).
    supervisor: Mutex<Option<Sender<SupervisorMsg>>>,
}

/// Messages to the supervisor thread.
enum SupervisorMsg {
    /// A worker thread is exiting after a caught panic.
    WorkerDied,
    /// The drain completed; the supervisor should exit.
    Stop,
}

/// Locks a mutex, recovering the guard from a poisoned lock — the state
/// behind every mutex here (queue, histogram) stays consistent even if a
/// holder panicked mid-update.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    pub(crate) fn phase(&self) -> u8 {
        self.phase.load(Ordering::SeqCst)
    }

    /// Chaos decision for one socket read: `(stall, chop)`. `(false,
    /// false)` when the daemon runs clean. Both backends consult this so
    /// a given seed injects the same fault mix regardless of backend.
    pub(crate) fn chaos_read_fault(&self) -> (bool, bool) {
        match &self.chaos {
            Some(chaos) => chaos.read_fault(),
            None => (false, false),
        }
    }

    /// One coherent metrics snapshot with the service section filled in.
    fn snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::gather(&self.cache);
        if let Engine::Forward(forwarder) = &self.engine {
            snapshot.fleet = forwarder.stats();
        }
        snapshot.service = Some(ServiceStats {
            node: self.node.clone(),
            workers: self.workers,
            queue_capacity: self.queue_capacity,
            queue_depth: lock(&self.queue).len(),
            connections: self.connections.load(Ordering::SeqCst),
            accepted: self.accepted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            rejected_overloaded: self.rejected.load(Ordering::SeqCst),
            expired_deadlines: self.expired.load(Ordering::SeqCst),
            worker_panics: self.worker_panics.load(Ordering::SeqCst),
            respawns: self.respawns.load(Ordering::SeqCst),
            backend: self.backend.name(),
            frames_json: self.frames_json.load(Ordering::SeqCst),
            frames_binary: self.frames_binary.load(Ordering::SeqCst),
            binary_negotiated: self.binary_negotiated.load(Ordering::SeqCst),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::SeqCst),
            latency: *lock(&self.latency),
        });
        snapshot
    }
}

/// A running daemon. Dropping the handle does **not** stop it; use a
/// wire `shutdown` request or [`Server::begin_shutdown`], then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listeners and spawns acceptor, worker and supervisor
    /// threads (and opens the spill tier, when configured).
    ///
    /// # Errors
    ///
    /// Bind/configuration failures, a `unix_socket` path on a non-Unix
    /// platform, or an unusable `spill_dir`.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let cache = match &config.spill_dir {
            None => StageCache::with_budget(config.cache_budget),
            Some(dir) => {
                let store = SpillStore::open(dir)?;
                if let Some(plan) = config.chaos {
                    if plan.spill_fail_one_in > 0 {
                        // The write ordinal is already a stable per-site
                        // counter — feed it straight into the plan.
                        store.set_write_fault(move |ordinal| {
                            plan.fires("spill_fail", ordinal, plan.spill_fail_one_in)
                        });
                    }
                }
                StageCache::with_budget_and_spill(config.cache_budget, store)
            }
        };

        let shared = Arc::new(Shared {
            cache,
            parallelism: config.parallelism,
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            allow_remote_shutdown: config.allow_remote_shutdown,
            backend: config.backend,
            json_only: config.json_only,
            node: config.node.clone(),
            engine: config.engine.clone(),
            idle_timeout: config.idle_timeout,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            drained_cv: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            phase: AtomicU8::new(RUNNING),
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            frames_json: AtomicU64::new(0),
            frames_binary: AtomicU64::new(0),
            binary_negotiated: AtomicU64::new(0),
            backpressure_stalls: AtomicU64::new(0),
            latency: Mutex::new(LatencyHistogram::default()),
            chaos: config.chaos.map(ChaosState::new),
            worker_handles: Mutex::new(Vec::new()),
            supervisor: Mutex::new(None),
        });

        let mut threads = Vec::new();
        match config.backend {
            ConnBackend::Threads => {
                {
                    let shared = Arc::clone(&shared);
                    threads.push(thread::spawn(move || tcp_acceptor(shared, listener)));
                }
                if let Some(path) = config.unix_socket.clone() {
                    threads.push(unix_acceptor_thread(Arc::clone(&shared), path)?);
                }
            }
            ConnBackend::Reactor => {
                threads.push(reactor::spawn(
                    Arc::clone(&shared),
                    listener,
                    config.unix_socket.clone(),
                )?);
            }
        }

        let (tx, rx) = mpsc::channel::<SupervisorMsg>();
        *lock(&shared.supervisor) = Some(tx);
        for _ in 0..shared.workers {
            spawn_worker(&shared);
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(thread::spawn(move || supervisor_loop(shared, rx)));
        }
        Ok(Server { shared, addr, threads })
    }

    /// The bound TCP address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A metrics snapshot taken directly from the shared state (no wire
    /// round trip).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// Initiates and completes a graceful drain from within the process:
    /// blocks until every queued and in-flight job has finished, then
    /// marks the daemon stopped. Equivalent to a wire `shutdown`.
    pub fn begin_shutdown(&self) {
        drain(&self.shared);
    }

    /// Waits for every acceptor, supervisor and worker thread to exit.
    /// Returns only after a shutdown (wire or [`Server::begin_shutdown`])
    /// completed.
    pub fn join(self) {
        for handle in self.threads {
            let _ = handle.join();
        }
        // Workers live in shared state (the supervisor spawns
        // replacements at runtime); drain whatever is there once the
        // supervisor has exited.
        loop {
            let Some(handle) = lock(&self.shared.worker_handles).pop() else { break };
            let _ = handle.join();
        }
    }
}

/// Performs the drain-then-stop transition; returns lifetime completed
/// jobs. Idempotent — concurrent callers all block until the drain is
/// done.
fn drain(shared: &Shared) -> u64 {
    {
        // Under the queue lock so admission cannot race the transition.
        let _queue = lock(&shared.queue);
        let _ = shared.phase.compare_exchange(RUNNING, DRAINING, Ordering::SeqCst, Ordering::SeqCst);
    }
    shared.queue_cv.notify_all();
    let mut queue = lock(&shared.queue);
    while !(queue.is_empty() && shared.in_flight.load(Ordering::SeqCst) == 0) {
        let (guard, _timeout) = shared
            .drained_cv
            .wait_timeout(queue, Duration::from_millis(20))
            .unwrap_or_else(PoisonError::into_inner);
        queue = guard;
    }
    drop(queue);
    shared.phase.store(STOPPED, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    // The drain is complete; release the supervisor. Dropping the sender
    // also closes the channel, so a second drain is a no-op here.
    if let Some(tx) = lock(&shared.supervisor).take() {
        let _ = tx.send(SupervisorMsg::Stop);
    }
    shared.completed.load(Ordering::SeqCst)
}

/// Spawns one worker thread, tracking its handle in shared state.
fn spawn_worker(shared: &Arc<Shared>) {
    let worker_shared = Arc::clone(shared);
    let handle = thread::spawn(move || worker_loop(worker_shared));
    lock(&shared.worker_handles).push(handle);
}

/// Supervisor: replaces every worker that dies to a panicking job, as
/// long as the daemon has not stopped. Exits on `Stop` (sent when the
/// drain completes) or when every sender is gone.
fn supervisor_loop(shared: Arc<Shared>, rx: mpsc::Receiver<SupervisorMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            SupervisorMsg::WorkerDied => {
                if shared.phase() == STOPPED {
                    continue;
                }
                shared.respawns.fetch_add(1, Ordering::SeqCst);
                spawn_worker(&shared);
            }
            SupervisorMsg::Stop => break,
        }
    }
}

/// Worker: pop, execute, reply, account. Exits once the daemon is
/// draining and the queue is empty — or after a job panics, in which
/// case the job's client gets a typed `internal` error, the supervisor
/// is told to spawn a replacement, and this thread unwinds cleanly.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    // Claim in-flight status under the lock so the drain
                    // cannot observe "queue empty, nothing in flight"
                    // between the pop and the increment.
                    shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    break job;
                }
                if shared.phase() != RUNNING {
                    return;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let id = job.request_id;
        // The panic boundary: a job that unwinds — the pipeline's own
        // bug, or a chaos-forced panic — costs exactly this job. Shared
        // state stays coherent (every mutex here recovers from poison,
        // and the accounting below runs on both paths).
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(chaos) = &shared.chaos {
                if chaos.panic_job() {
                    panic!("chaos-injected worker panic");
                }
            }
            execute(&shared, id, job.work, job.deadline, job.deadline_ms)
        }));
        let (response, panicked) = match outcome {
            Ok(response) => (response, false),
            Err(_) => {
                shared.worker_panics.fetch_add(1, Ordering::SeqCst);
                let error = Response::Error {
                    id,
                    error: ServiceError::Internal,
                    message: "the worker processing this job died; the job was not \
                              completed — submission is idempotent, retry is safe"
                        .to_string(),
                };
                (error, true)
            }
        };
        // Account *before* replying: a client that sees its response and
        // immediately asks for stats must observe the completion.
        let waited_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
        lock(&shared.latency).record_ms(waited_ms);
        shared.completed.fetch_add(1, Ordering::SeqCst);
        job.reply.send(&response);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.drained_cv.notify_all();
        if panicked {
            // Die visibly: tell the supervisor to replace this worker,
            // then exit. The queue keeps draining on the replacement.
            if let Some(tx) = lock(&shared.supervisor).as_ref() {
                let _ = tx.send(SupervisorMsg::WorkerDied);
            }
            return;
        }
    }
}

/// Runs one queued request: through the engine's forwarder when this
/// server is a routing front end, against the shared cache otherwise.
fn execute(
    shared: &Shared,
    id: u64,
    work: Work,
    deadline: Deadline,
    deadline_ms: Option<u64>,
) -> Response {
    if let Engine::Forward(forwarder) = &shared.engine {
        return match work {
            Work::Run(specs) => forwarder.run(id, &specs, deadline_ms),
            Work::Authenticate(spec) => forwarder.authenticate(id, &spec, deadline_ms),
            Work::Detect(specs) => forwarder.detect(id, &specs, deadline_ms),
            Work::Sanitize(specs) => forwarder.sanitize(id, &specs, deadline_ms),
        };
    }
    match work {
        Work::Run(specs) => match run_specs(shared, &specs, deadline) {
            Ok(outcomes) => {
                Response::Results { id, results: outcomes.iter().map(encode_outcome).collect() }
            }
            Err(message) => Response::Error { id, error: ServiceError::Malformed, message },
        },
        Work::Authenticate(spec) => {
            match run_specs(shared, std::slice::from_ref(&spec), deadline) {
                Ok(outcomes) => match outcomes.into_iter().next() {
                    Some(Ok(output)) => {
                        // Absolute thresholds, same as the CLI `authenticate`
                        // command: a genuine FDM print of these demo parts
                        // measures ~0 on both axes.
                        let cold = output.scan.cold_joint_area;
                        let voids = output.scan.internal_void_volume;
                        let verdict = if cold > 10.0 || voids > 20.0 {
                            "counterfeit"
                        } else {
                            "genuine"
                        };
                        Response::Verdict {
                            id,
                            verdict: verdict.to_string(),
                            cold_joint_mm2: cold,
                            void_mm3: voids,
                        }
                    }
                    Some(Err(e)) => {
                        Response::Error { id, error: ServiceError::Job, message: e.to_string() }
                    }
                    None => Response::Error {
                        id,
                        error: ServiceError::Job,
                        message: "empty batch".to_string(),
                    },
                },
                Err(message) => Response::Error { id, error: ServiceError::Malformed, message },
            }
        }
        Work::Detect(specs) => match detect_specs(shared, &specs, deadline) {
            Ok(outcomes) => Response::Detections {
                id,
                reports: outcomes.iter().map(encode_detect_outcome).collect(),
            },
            Err(message) => Response::Error { id, error: ServiceError::Malformed, message },
        },
        Work::Sanitize(specs) => match sanitize_specs(shared, &specs, deadline) {
            Ok(outcomes) => Response::Sanitized {
                id,
                reports: outcomes.iter().map(encode_sanitize_outcome).collect(),
            },
            Err(message) => Response::Error { id, error: ServiceError::Malformed, message },
        },
    }
}

/// Materialises the specs and runs them through the shared batch engine.
#[allow(clippy::type_complexity)]
fn run_specs(
    shared: &Shared,
    specs: &[JobSpec],
    deadline: Deadline,
) -> Result<Vec<Result<obfuscade::PipelineOutput, PipelineError>>, String> {
    let mut parts = Vec::with_capacity(specs.len());
    let mut faults = Vec::with_capacity(specs.len());
    for spec in specs {
        parts.push(spec.build_part()?);
        faults.push(spec.fault_plan()?);
    }
    let jobs: Vec<BatchJob<'_>> = specs
        .iter()
        .zip(parts.iter())
        .zip(faults.iter())
        .map(|((spec, part), fault)| BatchJob { part, plan: spec.plan(), faults: fault.clone() })
        .collect();
    let outcomes = run_pipeline_jobs_with(&jobs, &shared.cache, shared.parallelism, deadline);
    if outcomes
        .iter()
        .any(|o| matches!(o, Err(PipelineError::DeadlineExceeded { .. })))
    {
        shared.expired.fetch_add(1, Ordering::SeqCst);
    }
    Ok(outcomes)
}

/// Materialises detect specs and runs each through `am-detect` against
/// the shared cache. Detection jobs share the batch engine's error
/// taxonomy: a malformed spec (bad part name, fault spec or quality
/// preset) fails the whole batch as `malformed`; per-job pipeline
/// failures are typed outcomes in the report list.
#[allow(clippy::type_complexity)]
fn detect_specs(
    shared: &Shared,
    specs: &[DetectSpec],
    deadline: Deadline,
) -> Result<Vec<Result<obfuscade::DetectionReport, am_detect::DetectError>>, String> {
    let mut prepared = Vec::with_capacity(specs.len());
    for spec in specs {
        am_detect::capture_quality(&spec.quality)?;
        let part = spec.job.build_part()?;
        let faults = spec.job.fault_plan()?;
        let config = am_detect::DetectConfig {
            quality: spec.quality.clone(),
            jam_amplitude: spec.jam_amplitude,
            trace_seed: spec.trace_seed,
            ..am_detect::DetectConfig::default()
        };
        prepared.push((part, faults, config));
    }
    let outcomes: Vec<_> = specs
        .iter()
        .zip(&prepared)
        .map(|(spec, (part, faults, config))| {
            am_detect::detect_counterfeit(
                part,
                &spec.job.plan(),
                faults,
                &spec.job.faults,
                config,
                &shared.cache,
                deadline,
            )
        })
        .collect();
    note_expired_detect(shared, &outcomes);
    Ok(outcomes)
}

/// Materialises sanitize specs and runs each through `am-detect`.
#[allow(clippy::type_complexity)]
fn sanitize_specs(
    shared: &Shared,
    specs: &[SanitizeSpec],
    deadline: Deadline,
) -> Result<Vec<Result<obfuscade::SanitizeReport, am_detect::DetectError>>, String> {
    let mut prepared = Vec::with_capacity(specs.len());
    for spec in specs {
        let part = spec.job.build_part()?;
        let faults = spec.job.fault_plan()?;
        let config = am_detect::SanitizeConfig {
            payload_seed: spec.payload_seed,
            payload_bits: spec.payload_bits as u32,
        };
        prepared.push((part, faults, config));
    }
    let outcomes: Vec<_> = specs
        .iter()
        .zip(&prepared)
        .map(|(spec, (part, faults, config))| {
            am_detect::sanitize_toolpath(
                part,
                &spec.job.plan(),
                faults,
                config,
                &shared.cache,
                deadline,
            )
        })
        .collect();
    note_expired_detect(shared, &outcomes);
    Ok(outcomes)
}

/// Bumps the expired-deadline counter when any detect-subsystem outcome
/// died to the request deadline (mirrors [`run_specs`]'s accounting).
fn note_expired_detect<T>(shared: &Shared, outcomes: &[Result<T, am_detect::DetectError>]) {
    if outcomes.iter().any(|o| {
        matches!(
            o,
            Err(am_detect::DetectError::Pipeline(PipelineError::DeadlineExceeded { .. }))
        )
    }) {
        shared.expired.fetch_add(1, Ordering::SeqCst);
    }
}

/// Admission control for queueable requests. The phase check and the
/// capacity check both happen under the queue lock.
fn admit(shared: &Arc<Shared>, id: u64, work: Work, deadline_ms: Option<u64>, reply: &ReplySink) {
    let deadline = deadline_ms
        .map(|ms| Deadline::within(Duration::from_millis(ms)))
        .unwrap_or_default();
    let mut queue = lock(&shared.queue);
    if shared.phase() != RUNNING {
        drop(queue);
        reply.send(&Response::Error {
            id,
            error: ServiceError::ShuttingDown,
            message: "the daemon is draining and admits no new jobs".to_string(),
        });
        return;
    }
    if queue.len() >= shared.queue_capacity {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        drop(queue);
        reply.send(&Response::Error {
            id,
            error: ServiceError::Overloaded,
            message: format!("job queue is at capacity ({})", shared.queue_capacity),
        });
        return;
    }
    queue.push_back(QueuedJob {
        request_id: id,
        work,
        deadline,
        deadline_ms,
        reply: reply.clone(),
        enqueued: Instant::now(),
    });
    shared.accepted.fetch_add(1, Ordering::SeqCst);
    drop(queue);
    shared.queue_cv.notify_one();
}

/// Per-connection protocol state shared by both backends: the codec is
/// undetermined until the first frame arrives (binary hello → binary,
/// anything else → JSON, permanently).
pub(crate) struct ConnProto {
    codec: Option<Codec>,
}

impl ConnProto {
    pub(crate) fn new() -> ConnProto {
        ConnProto { codec: None }
    }

    /// The codec the connection settled on (JSON until negotiated).
    pub(crate) fn codec(&self) -> Codec {
        self.codec.unwrap_or(Codec::Json)
    }
}

/// What the connection layer should do after feeding one inbound frame
/// through [`process_frame`].
pub(crate) enum FrameOutcome {
    /// Write these encoded payload bytes back now.
    Reply(Vec<u8>),
    /// The request was admitted to the job queue; the response arrives
    /// later through the [`ReplySink`] built by `sink`.
    Queued,
}

/// One inbound frame through negotiation + dispatch — the single
/// protocol path both backends share. `sink` builds the backend's reply
/// route for the connection's (just-settled) codec; it is only invoked
/// for queueable requests.
///
/// Control requests (`ping`, `stats`, `shutdown`) are answered inline;
/// `shutdown` from an authorised peer blocks the calling thread in
/// [`drain`] until every queued and in-flight job completed (worker
/// replies are deposited through their sinks meanwhile, never through
/// this thread).
pub(crate) fn process_frame(
    shared: &Arc<Shared>,
    proto: &mut ConnProto,
    frame: &[u8],
    local_peer: bool,
    sink: &dyn Fn(Codec) -> ReplySink,
) -> FrameOutcome {
    if proto.codec.is_none() {
        if is_binary_hello(frame) {
            // A negotiation attempt. Failure is answered (in JSON, the
            // codec the connection stays on) — never a hangup.
            let refusal = if shared.json_only {
                "this daemon is configured JSON-only (bad_codec); continue in JSON".to_string()
            } else {
                match decode_hello(frame) {
                    Ok(BINARY_VERSION) => {
                        proto.codec = Some(Codec::Binary);
                        shared.binary_negotiated.fetch_add(1, Ordering::SeqCst);
                        return FrameOutcome::Reply(encode_hello(BINARY_VERSION));
                    }
                    Ok(version) => format!(
                        "binary codec version {version} is not supported (this daemon \
                         speaks {BINARY_VERSION}); continue in JSON"
                    ),
                    Err(message) => message,
                }
            };
            proto.codec = Some(Codec::Json);
            let error =
                Response::Error { id: 0, error: ServiceError::BadCodec, message: refusal };
            return FrameOutcome::Reply(error.encode());
        }
        proto.codec = Some(Codec::Json);
    }
    let codec = proto.codec();
    match codec {
        Codec::Json => shared.frames_json.fetch_add(1, Ordering::SeqCst),
        Codec::Binary => shared.frames_binary.fetch_add(1, Ordering::SeqCst),
    };
    let request = match codec.decode_request(frame) {
        Ok(request) => request,
        Err(message) => {
            let error = Response::Error { id: 0, error: ServiceError::Malformed, message };
            return FrameOutcome::Reply(codec.encode_response(&error));
        }
    };
    let id = request.id;
    let inline = match request.body {
        RequestBody::Ping => Response::Pong { id },
        RequestBody::Stats => Response::Stats { id, metrics: shared.snapshot().to_json() },
        RequestBody::Shutdown => {
            if local_peer || shared.allow_remote_shutdown {
                let completed = drain(shared);
                Response::Bye { id, completed }
            } else {
                Response::Error {
                    id,
                    error: ServiceError::Forbidden,
                    message: "shutdown is only honored from loopback/Unix-socket \
                              peers (start with allow_remote_shutdown to override)"
                        .to_string(),
                }
            }
        }
        RequestBody::Run { jobs, deadline_ms } => {
            admit(shared, id, Work::Run(jobs), deadline_ms, &sink(codec));
            return FrameOutcome::Queued;
        }
        RequestBody::Authenticate { job, deadline_ms } => {
            admit(shared, id, Work::Authenticate(job), deadline_ms, &sink(codec));
            return FrameOutcome::Queued;
        }
        RequestBody::Detect { jobs, deadline_ms } => {
            admit(shared, id, Work::Detect(jobs), deadline_ms, &sink(codec));
            return FrameOutcome::Queued;
        }
        RequestBody::Sanitize { jobs, deadline_ms } => {
            admit(shared, id, Work::Sanitize(jobs), deadline_ms, &sink(codec));
            return FrameOutcome::Queued;
        }
    };
    FrameOutcome::Reply(codec.encode_response(&inline))
}

/// Per-connection protocol loop (thread backend): a writer thread
/// serialises all frames for the connection (workers reply through the
/// same channel), the calling thread reads and dispatches requests until
/// EOF or shutdown.
///
/// `local_peer` records whether the connection arrived over the Unix
/// socket or from a loopback TCP address; non-local peers may only issue
/// `shutdown` when the server was configured with `allow_remote_shutdown`.
fn handle_connection<R, W>(shared: Arc<Shared>, mut reader: R, writer: W, local_peer: bool)
where
    R: Read,
    W: Write + Send + 'static,
{
    let (reply, frames) = mpsc::channel::<Vec<u8>>();
    let writer_thread = thread::spawn(move || {
        let mut writer = writer;
        for frame in frames {
            if write_frame(&mut writer, &frame).is_err() {
                break;
            }
        }
    });

    let mut proto = ConnProto::new();
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        let sink = |codec| ReplySink::Channel { tx: reply.clone(), codec };
        match process_frame(&shared, &mut proto, &frame, local_peer, &sink) {
            FrameOutcome::Reply(payload) => {
                let _ = reply.send(payload);
            }
            FrameOutcome::Queued => {}
        }
    }

    drop(reply);
    let _ = writer_thread.join();
}

/// A `Read` wrapper that injects deterministic chaos into the
/// connection's byte stream: occasional ~1 ms stalls and 1-byte short
/// reads. `read_frame` reassembles via `read_exact`, so chopped reads
/// must still yield byte-identical frames — that is exactly the
/// robustness property the chaos layer exists to exercise.
struct ChaosReader<R> {
    inner: R,
    shared: Arc<Shared>,
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(chaos) = &self.shared.chaos {
            let (stall, chop) = chaos.read_fault();
            if stall {
                thread::sleep(Duration::from_millis(1));
            }
            if chop && buf.len() > 1 {
                return self.inner.read(&mut buf[..1]);
            }
        }
        self.inner.read(buf)
    }
}

/// Chaos accept gate: `true` means this freshly accepted connection
/// should be dropped on the floor (the client sees an immediate EOF and
/// owns the retry).
pub(crate) fn chaos_drops_accept(shared: &Shared) -> bool {
    shared.chaos.as_ref().is_some_and(ChaosState::drop_accept)
}

/// TCP acceptor: polls the non-blocking listener, spawning one detached
/// connection thread per accept, until the daemon stops.
fn tcp_acceptor(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.phase() == STOPPED {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                if chaos_drops_accept(&shared) {
                    drop(stream);
                    continue;
                }
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let local_peer = peer.ip().is_loopback();
                if let Ok(reader) = stream.try_clone() {
                    let shared = Arc::clone(&shared);
                    thread::spawn(move || {
                        let chaos_reader = ChaosReader { inner: reader, shared: Arc::clone(&shared) };
                        handle_connection(shared, chaos_reader, stream, local_peer)
                    });
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Boots the Unix-domain-socket acceptor (Unix only).
#[cfg(unix)]
fn unix_acceptor_thread(shared: Arc<Shared>, path: PathBuf) -> io::Result<JoinHandle<()>> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path)?;
    listener.set_nonblocking(true)?;
    Ok(thread::spawn(move || {
        loop {
            if shared.phase() == STOPPED {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if chaos_drops_accept(&shared) {
                        drop(stream);
                        continue;
                    }
                    let _ = stream.set_nonblocking(false);
                    shared.connections.fetch_add(1, Ordering::SeqCst);
                    if let Ok(reader) = stream.try_clone() {
                        let shared = Arc::clone(&shared);
                        // A Unix-socket peer is local by construction.
                        thread::spawn(move || {
                            let chaos_reader =
                                ChaosReader { inner: reader, shared: Arc::clone(&shared) };
                            handle_connection(shared, chaos_reader, stream, true)
                        });
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        }
        let _ = std::fs::remove_file(&path);
    }))
}

/// Non-Unix stub: a configured Unix socket is a start error.
#[cfg(not(unix))]
fn unix_acceptor_thread(_shared: Arc<Shared>, _path: PathBuf) -> io::Result<JoinHandle<()>> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "unix-domain sockets are not available on this platform",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, Endpoint};
    use crate::protocol::Request;

    fn boot(workers: usize, queue_capacity: usize) -> Server {
        Server::start(ServerConfig {
            workers,
            queue_capacity,
            ..ServerConfig::default()
        })
        .expect("server boots on a loopback port")
    }

    #[test]
    fn ping_stats_run_shutdown_round_trip() {
        let server = boot(2, 8);
        let endpoint = Endpoint::Tcp(server.addr().to_string());
        let mut client = Client::connect(&endpoint).expect("connect");
        client.ping().expect("ping");

        let response =
            client.run(vec![JobSpec::default()], None).expect("run");
        let Response::Results { results, .. } = response else {
            panic!("expected results, got {response:?}");
        };
        assert_eq!(results.len(), 1);
        assert!(results[0].get("ok").is_some(), "clean job must succeed: {results:?}");

        let metrics = client.stats().expect("stats");
        let completed = metrics
            .get("service")
            .and_then(|s| s.get("completed"))
            .and_then(obfuscade::json::Json::as_u64)
            .expect("service.completed");
        assert_eq!(completed, 1);

        let lifetime = client.shutdown().expect("shutdown");
        assert_eq!(lifetime, 1);
        server.join();
    }

    /// A `Write` that appends into a shared buffer — lets a test read
    /// back what `handle_connection`'s writer thread emitted.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn non_local_shutdown_is_refused_and_daemon_keeps_running() {
        let server = boot(1, 4);

        // Feed a shutdown frame through the connection loop as a
        // non-local peer (the acceptors classify loopback/Unix peers as
        // local, so the deny path needs driving directly).
        let mut input = Vec::new();
        write_frame(&mut input, &Request { id: 5, body: RequestBody::Shutdown }.encode())
            .expect("frame");
        let out = Arc::new(Mutex::new(Vec::new()));
        handle_connection(
            Arc::clone(&server.shared),
            io::Cursor::new(input),
            SharedBuf(Arc::clone(&out)),
            false,
        );

        let written = lock(&out).clone();
        let frame = read_frame(&mut io::Cursor::new(written))
            .expect("read")
            .expect("one response frame");
        let response = Response::decode(&frame).expect("decode");
        assert!(
            matches!(response, Response::Error { id: 5, error: ServiceError::Forbidden, .. }),
            "got {response:?}"
        );

        // The refusal must not have drained anything: a loopback client
        // still gets served and may still shut the daemon down.
        let endpoint = Endpoint::Tcp(server.addr().to_string());
        let mut client = Client::connect(&endpoint).expect("connect");
        client.ping().expect("daemon still answers");
        client.shutdown().expect("loopback shutdown is allowed");
        server.join();
    }

    #[test]
    fn panicking_workers_are_respawned_and_retries_still_get_correct_bytes() {
        use crate::client::{expected_results_wire, RetryingClient, RetryPolicy};

        // Panic roughly every other job; leave the transport untouched so
        // the test isolates the supervision path.
        let plan = ChaosPlan {
            seed: 11,
            accept_drop_one_in: 0,
            read_chop_one_in: 0,
            read_stall_one_in: 0,
            worker_panic_one_in: 2,
            spill_fail_one_in: 0,
        };
        let server = Server::start(ServerConfig {
            workers: 2,
            queue_capacity: 8,
            chaos: Some(plan),
            ..ServerConfig::default()
        })
        .expect("server boots on a loopback port");
        let endpoint = Endpoint::Tcp(server.addr().to_string());

        let jobs = vec![JobSpec::default()];
        let expected = expected_results_wire(&jobs).expect("reference run");
        let policy = RetryPolicy {
            attempts: 16,
            base_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(8),
            ..RetryPolicy::default()
        };
        let mut client = RetryingClient::new(&endpoint, policy);
        for _ in 0..8 {
            let response = client.run(&jobs, None).expect("retries outlast the chaos");
            let Response::Results { results, .. } = response else {
                panic!("expected results, got {response:?}");
            };
            assert_eq!(
                obfuscade::json::Json::Array(results).render(),
                expected,
                "a retried job must still return byte-identical results"
            );
        }
        assert!(client.retries() > 0, "a one-in-two panic rate must force retries");

        let mut plain = Client::connect(&endpoint).expect("connect");
        let metrics = plain.stats().expect("stats");
        let counter = |name: &str| {
            metrics
                .get("service")
                .and_then(|s| s.get(name))
                .and_then(obfuscade::json::Json::as_u64)
                .unwrap_or(0)
        };
        assert!(counter("worker_panics") > 0, "chaos must have killed at least one worker");
        assert_eq!(
            counter("worker_panics"),
            counter("respawns"),
            "every dead worker gets replaced"
        );

        plain.shutdown().expect("shutdown");
        server.join();
    }

    #[test]
    fn unknown_frames_get_typed_malformed_errors() {
        let server = boot(1, 4);
        let endpoint = Endpoint::Tcp(server.addr().to_string());
        let mut client = Client::connect(&endpoint).expect("connect");
        let response = client.raw_call(b"{\"id\":9,\"kind\":\"warp\"}").expect("reply");
        assert!(
            matches!(response, Response::Error { error: ServiceError::Malformed, .. }),
            "got {response:?}"
        );
        server.begin_shutdown();
        server.join();
    }
}
