//! The obfuscation daemon: acceptor threads feed per-connection reader
//! threads, which either answer control requests inline (`ping`,
//! `stats`, `shutdown`) or push job requests onto one bounded queue that
//! a fixed pool of worker threads drains. All connections share a single
//! process-wide [`StageCache`] (and, through it, the fea crate's solver
//! pool), so repeated requests for the same stage prefixes are served
//! from cache across clients.
//!
//! # Admission control and shutdown
//!
//! The queue is bounded: a `run`/`authenticate` arriving while it is full
//! is rejected immediately with a typed `overloaded` error — the client
//! owns the retry policy. Shutdown is drain-then-stop: after a
//! `shutdown` request (or [`Server::begin_shutdown`]) no new jobs are
//! admitted, every queued and in-flight job still completes and its
//! response is delivered, and only then do the listeners close and the
//! worker threads exit. The phase transition happens under the queue
//! lock, so no job can slip in between "stop admitting" and "queue is
//! empty".
//!
//! Wire `shutdown` carries no authentication, so it is honored only
//! from local peers (loopback TCP or the Unix socket) unless
//! [`ServerConfig::allow_remote_shutdown`] is set — otherwise a daemon
//! bound to a routable address would be one anonymous frame away from a
//! permanent stop. Non-local shutdown attempts get a typed `forbidden`
//! error and the daemon keeps running.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use am_par::Parallelism;
use obfuscade::metrics::{LatencyHistogram, MetricsSnapshot, ServiceStats};
use obfuscade::{run_pipeline_jobs_with, BatchJob, Deadline, PipelineError, StageCache};

use crate::protocol::{
    encode_outcome, read_frame, write_frame, JobSpec, Request, RequestBody, Response, ServiceError,
};

/// Lifecycle phase: accepting and executing.
const RUNNING: u8 = 0;
/// Draining: no new jobs admitted, queued/in-flight jobs still complete.
const DRAINING: u8 = 1;
/// Stopped: drain complete, listeners closing, workers exited.
const STOPPED: u8 = 2;

/// How long acceptors sleep between polls of their non-blocking
/// listeners (std has no accept-with-timeout).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Everything needed to boot a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP bind address; port 0 picks a free port (read it back with
    /// [`Server::addr`]).
    pub addr: String,
    /// Optional Unix-domain socket path to listen on as well
    /// (Unix only; `Some` on other platforms is a start error).
    pub unix_socket: Option<PathBuf>,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects with
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Thread budget *within* one batch request. Serial by default —
    /// concurrency comes from the worker pool fanning across requests,
    /// and the determinism contract makes the choice unobservable in
    /// responses.
    pub parallelism: Parallelism,
    /// Byte budget of the shared stage cache.
    pub cache_budget: usize,
    /// Honor wire `shutdown` from non-local peers. **Off by default**:
    /// `shutdown` carries no authentication, so on a non-loopback `addr`
    /// any anonymous client could otherwise stop the daemon permanently.
    /// Loopback TCP peers and Unix-socket peers may always shut down.
    pub allow_remote_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            unix_socket: None,
            workers: 2,
            queue_capacity: 64,
            parallelism: Parallelism::serial(),
            cache_budget: StageCache::DEFAULT_BUDGET,
            allow_remote_shutdown: false,
        }
    }
}

/// A job admitted to the queue, waiting for a worker.
struct QueuedJob {
    request_id: u64,
    work: Work,
    deadline: Deadline,
    reply: Sender<Vec<u8>>,
    enqueued: Instant,
}

/// The two queueable request kinds.
enum Work {
    Run(Vec<JobSpec>),
    Authenticate(JobSpec),
}

/// State shared by acceptors, connection readers and workers.
struct Shared {
    cache: StageCache,
    parallelism: Parallelism,
    workers: usize,
    queue_capacity: usize,
    allow_remote_shutdown: bool,
    queue: Mutex<VecDeque<QueuedJob>>,
    /// Signalled when a job is enqueued or the phase changes.
    queue_cv: Condvar,
    /// Signalled when a job finishes (drain waits on it).
    drained_cv: Condvar,
    in_flight: AtomicUsize,
    phase: AtomicU8,
    connections: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    latency: Mutex<LatencyHistogram>,
}

/// Locks a mutex, recovering the guard from a poisoned lock — the state
/// behind every mutex here (queue, histogram) stays consistent even if a
/// holder panicked mid-update.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn phase(&self) -> u8 {
        self.phase.load(Ordering::SeqCst)
    }

    /// One coherent metrics snapshot with the service section filled in.
    fn snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::gather(&self.cache);
        snapshot.service = Some(ServiceStats {
            workers: self.workers,
            queue_capacity: self.queue_capacity,
            queue_depth: lock(&self.queue).len(),
            connections: self.connections.load(Ordering::SeqCst),
            accepted: self.accepted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            rejected_overloaded: self.rejected.load(Ordering::SeqCst),
            expired_deadlines: self.expired.load(Ordering::SeqCst),
            latency: *lock(&self.latency),
        });
        snapshot
    }
}

/// A running daemon. Dropping the handle does **not** stop it; use a
/// wire `shutdown` request or [`Server::begin_shutdown`], then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listeners and spawns acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Bind/configuration failures, or a `unix_socket` path on a
    /// non-Unix platform.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            cache: StageCache::with_budget(config.cache_budget),
            parallelism: config.parallelism,
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            allow_remote_shutdown: config.allow_remote_shutdown,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            drained_cv: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            phase: AtomicU8::new(RUNNING),
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            latency: Mutex::new(LatencyHistogram::default()),
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(thread::spawn(move || tcp_acceptor(shared, listener)));
        }
        if let Some(path) = config.unix_socket.clone() {
            threads.push(unix_acceptor_thread(Arc::clone(&shared), path)?);
        }
        for _ in 0..shared.workers {
            let shared = Arc::clone(&shared);
            threads.push(thread::spawn(move || worker_loop(shared)));
        }
        Ok(Server { shared, addr, threads })
    }

    /// The bound TCP address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A metrics snapshot taken directly from the shared state (no wire
    /// round trip).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// Initiates and completes a graceful drain from within the process:
    /// blocks until every queued and in-flight job has finished, then
    /// marks the daemon stopped. Equivalent to a wire `shutdown`.
    pub fn begin_shutdown(&self) {
        drain(&self.shared);
    }

    /// Waits for every acceptor and worker thread to exit. Returns only
    /// after a shutdown (wire or [`Server::begin_shutdown`]) completed.
    pub fn join(self) {
        for handle in self.threads {
            let _ = handle.join();
        }
    }
}

/// Performs the drain-then-stop transition; returns lifetime completed
/// jobs. Idempotent — concurrent callers all block until the drain is
/// done.
fn drain(shared: &Shared) -> u64 {
    {
        // Under the queue lock so admission cannot race the transition.
        let _queue = lock(&shared.queue);
        let _ = shared.phase.compare_exchange(RUNNING, DRAINING, Ordering::SeqCst, Ordering::SeqCst);
    }
    shared.queue_cv.notify_all();
    let mut queue = lock(&shared.queue);
    while !(queue.is_empty() && shared.in_flight.load(Ordering::SeqCst) == 0) {
        let (guard, _timeout) = shared
            .drained_cv
            .wait_timeout(queue, Duration::from_millis(20))
            .unwrap_or_else(PoisonError::into_inner);
        queue = guard;
    }
    drop(queue);
    shared.phase.store(STOPPED, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    shared.completed.load(Ordering::SeqCst)
}

/// Worker: pop, execute, reply, account. Exits once the daemon is
/// draining and the queue is empty.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    // Claim in-flight status under the lock so the drain
                    // cannot observe "queue empty, nothing in flight"
                    // between the pop and the increment.
                    shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    break job;
                }
                if shared.phase() != RUNNING {
                    return;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let response = execute(&shared, job.request_id, job.work, job.deadline);
        // Account *before* replying: a client that sees its response and
        // immediately asks for stats must observe the completion.
        let waited_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
        lock(&shared.latency).record_ms(waited_ms);
        shared.completed.fetch_add(1, Ordering::SeqCst);
        let _ = job.reply.send(response.encode());
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.drained_cv.notify_all();
    }
}

/// Runs one queued request against the shared cache.
fn execute(shared: &Shared, id: u64, work: Work, deadline: Deadline) -> Response {
    match work {
        Work::Run(specs) => match run_specs(shared, &specs, deadline) {
            Ok(outcomes) => {
                Response::Results { id, results: outcomes.iter().map(encode_outcome).collect() }
            }
            Err(message) => Response::Error { id, error: ServiceError::Malformed, message },
        },
        Work::Authenticate(spec) => {
            match run_specs(shared, std::slice::from_ref(&spec), deadline) {
                Ok(outcomes) => match outcomes.into_iter().next() {
                    Some(Ok(output)) => {
                        // Absolute thresholds, same as the CLI `authenticate`
                        // command: a genuine FDM print of these demo parts
                        // measures ~0 on both axes.
                        let cold = output.scan.cold_joint_area;
                        let voids = output.scan.internal_void_volume;
                        let verdict = if cold > 10.0 || voids > 20.0 {
                            "counterfeit"
                        } else {
                            "genuine"
                        };
                        Response::Verdict {
                            id,
                            verdict: verdict.to_string(),
                            cold_joint_mm2: cold,
                            void_mm3: voids,
                        }
                    }
                    Some(Err(e)) => {
                        Response::Error { id, error: ServiceError::Job, message: e.to_string() }
                    }
                    None => Response::Error {
                        id,
                        error: ServiceError::Job,
                        message: "empty batch".to_string(),
                    },
                },
                Err(message) => Response::Error { id, error: ServiceError::Malformed, message },
            }
        }
    }
}

/// Materialises the specs and runs them through the shared batch engine.
#[allow(clippy::type_complexity)]
fn run_specs(
    shared: &Shared,
    specs: &[JobSpec],
    deadline: Deadline,
) -> Result<Vec<Result<obfuscade::PipelineOutput, PipelineError>>, String> {
    let mut parts = Vec::with_capacity(specs.len());
    let mut faults = Vec::with_capacity(specs.len());
    for spec in specs {
        parts.push(spec.build_part()?);
        faults.push(spec.fault_plan()?);
    }
    let jobs: Vec<BatchJob<'_>> = specs
        .iter()
        .zip(parts.iter())
        .zip(faults.iter())
        .map(|((spec, part), fault)| BatchJob { part, plan: spec.plan(), faults: fault.clone() })
        .collect();
    let outcomes = run_pipeline_jobs_with(&jobs, &shared.cache, shared.parallelism, deadline);
    if outcomes
        .iter()
        .any(|o| matches!(o, Err(PipelineError::DeadlineExceeded { .. })))
    {
        shared.expired.fetch_add(1, Ordering::SeqCst);
    }
    Ok(outcomes)
}

/// Serialises and enqueues a response on the connection's writer channel.
fn send(reply: &Sender<Vec<u8>>, response: &Response) {
    let _ = reply.send(response.encode());
}

/// Admission control for queueable requests. The phase check and the
/// capacity check both happen under the queue lock.
fn admit(shared: &Arc<Shared>, id: u64, work: Work, deadline_ms: Option<u64>, reply: &Sender<Vec<u8>>) {
    let deadline = deadline_ms
        .map(|ms| Deadline::within(Duration::from_millis(ms)))
        .unwrap_or_default();
    let mut queue = lock(&shared.queue);
    if shared.phase() != RUNNING {
        drop(queue);
        send(
            reply,
            &Response::Error {
                id,
                error: ServiceError::ShuttingDown,
                message: "the daemon is draining and admits no new jobs".to_string(),
            },
        );
        return;
    }
    if queue.len() >= shared.queue_capacity {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        drop(queue);
        send(
            reply,
            &Response::Error {
                id,
                error: ServiceError::Overloaded,
                message: format!("job queue is at capacity ({})", shared.queue_capacity),
            },
        );
        return;
    }
    queue.push_back(QueuedJob {
        request_id: id,
        work,
        deadline,
        reply: reply.clone(),
        enqueued: Instant::now(),
    });
    shared.accepted.fetch_add(1, Ordering::SeqCst);
    drop(queue);
    shared.queue_cv.notify_one();
}

/// Per-connection protocol loop: a writer thread serialises all frames
/// for the connection (workers reply through the same channel), the
/// calling thread reads and dispatches requests until EOF or shutdown.
///
/// `local_peer` records whether the connection arrived over the Unix
/// socket or from a loopback TCP address; non-local peers may only issue
/// `shutdown` when the server was configured with `allow_remote_shutdown`.
fn handle_connection<R, W>(shared: Arc<Shared>, mut reader: R, writer: W, local_peer: bool)
where
    R: Read,
    W: Write + Send + 'static,
{
    let (reply, frames) = mpsc::channel::<Vec<u8>>();
    let writer_thread = thread::spawn(move || {
        let mut writer = writer;
        for frame in frames {
            if write_frame(&mut writer, &frame).is_err() {
                break;
            }
        }
    });

    while let Ok(Some(frame)) = read_frame(&mut reader) {
        let request = match Request::decode(&frame) {
            Ok(request) => request,
            Err(message) => {
                send(
                    &reply,
                    &Response::Error { id: 0, error: ServiceError::Malformed, message },
                );
                continue;
            }
        };
        let id = request.id;
        match request.body {
            RequestBody::Ping => send(&reply, &Response::Pong { id }),
            RequestBody::Stats => {
                send(&reply, &Response::Stats { id, metrics: shared.snapshot().to_json() });
            }
            RequestBody::Shutdown => {
                if local_peer || shared.allow_remote_shutdown {
                    let completed = drain(&shared);
                    send(&reply, &Response::Bye { id, completed });
                } else {
                    send(
                        &reply,
                        &Response::Error {
                            id,
                            error: ServiceError::Forbidden,
                            message: "shutdown is only honored from loopback/Unix-socket \
                                      peers (start with allow_remote_shutdown to override)"
                                .to_string(),
                        },
                    );
                }
            }
            RequestBody::Run { jobs, deadline_ms } => {
                admit(&shared, id, Work::Run(jobs), deadline_ms, &reply);
            }
            RequestBody::Authenticate { job, deadline_ms } => {
                admit(&shared, id, Work::Authenticate(job), deadline_ms, &reply);
            }
        }
    }

    drop(reply);
    let _ = writer_thread.join();
}

/// TCP acceptor: polls the non-blocking listener, spawning one detached
/// connection thread per accept, until the daemon stops.
fn tcp_acceptor(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.phase() == STOPPED {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let local_peer = peer.ip().is_loopback();
                if let Ok(reader) = stream.try_clone() {
                    let shared = Arc::clone(&shared);
                    thread::spawn(move || handle_connection(shared, reader, stream, local_peer));
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Boots the Unix-domain-socket acceptor (Unix only).
#[cfg(unix)]
fn unix_acceptor_thread(shared: Arc<Shared>, path: PathBuf) -> io::Result<JoinHandle<()>> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path)?;
    listener.set_nonblocking(true)?;
    Ok(thread::spawn(move || {
        loop {
            if shared.phase() == STOPPED {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(false);
                    shared.connections.fetch_add(1, Ordering::SeqCst);
                    if let Ok(reader) = stream.try_clone() {
                        let shared = Arc::clone(&shared);
                        // A Unix-socket peer is local by construction.
                        thread::spawn(move || handle_connection(shared, reader, stream, true));
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        }
        let _ = std::fs::remove_file(&path);
    }))
}

/// Non-Unix stub: a configured Unix socket is a start error.
#[cfg(not(unix))]
fn unix_acceptor_thread(_shared: Arc<Shared>, _path: PathBuf) -> io::Result<JoinHandle<()>> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "unix-domain sockets are not available on this platform",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, Endpoint};

    fn boot(workers: usize, queue_capacity: usize) -> Server {
        Server::start(ServerConfig {
            workers,
            queue_capacity,
            ..ServerConfig::default()
        })
        .expect("server boots on a loopback port")
    }

    #[test]
    fn ping_stats_run_shutdown_round_trip() {
        let server = boot(2, 8);
        let endpoint = Endpoint::Tcp(server.addr().to_string());
        let mut client = Client::connect(&endpoint).expect("connect");
        client.ping().expect("ping");

        let response =
            client.run(vec![JobSpec::default()], None).expect("run");
        let Response::Results { results, .. } = response else {
            panic!("expected results, got {response:?}");
        };
        assert_eq!(results.len(), 1);
        assert!(results[0].get("ok").is_some(), "clean job must succeed: {results:?}");

        let metrics = client.stats().expect("stats");
        let completed = metrics
            .get("service")
            .and_then(|s| s.get("completed"))
            .and_then(obfuscade::json::Json::as_u64)
            .expect("service.completed");
        assert_eq!(completed, 1);

        let lifetime = client.shutdown().expect("shutdown");
        assert_eq!(lifetime, 1);
        server.join();
    }

    /// A `Write` that appends into a shared buffer — lets a test read
    /// back what `handle_connection`'s writer thread emitted.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn non_local_shutdown_is_refused_and_daemon_keeps_running() {
        let server = boot(1, 4);

        // Feed a shutdown frame through the connection loop as a
        // non-local peer (the acceptors classify loopback/Unix peers as
        // local, so the deny path needs driving directly).
        let mut input = Vec::new();
        write_frame(&mut input, &Request { id: 5, body: RequestBody::Shutdown }.encode())
            .expect("frame");
        let out = Arc::new(Mutex::new(Vec::new()));
        handle_connection(
            Arc::clone(&server.shared),
            io::Cursor::new(input),
            SharedBuf(Arc::clone(&out)),
            false,
        );

        let written = lock(&out).clone();
        let frame = read_frame(&mut io::Cursor::new(written))
            .expect("read")
            .expect("one response frame");
        let response = Response::decode(&frame).expect("decode");
        assert!(
            matches!(response, Response::Error { id: 5, error: ServiceError::Forbidden, .. }),
            "got {response:?}"
        );

        // The refusal must not have drained anything: a loopback client
        // still gets served and may still shut the daemon down.
        let endpoint = Endpoint::Tcp(server.addr().to_string());
        let mut client = Client::connect(&endpoint).expect("connect");
        client.ping().expect("daemon still answers");
        client.shutdown().expect("loopback shutdown is allowed");
        server.join();
    }

    #[test]
    fn unknown_frames_get_typed_malformed_errors() {
        let server = boot(1, 4);
        let endpoint = Endpoint::Tcp(server.addr().to_string());
        let mut client = Client::connect(&endpoint).expect("connect");
        let response = client.raw_call(b"{\"id\":9,\"kind\":\"warp\"}").expect("reply");
        assert!(
            matches!(response, Response::Error { error: ServiceError::Malformed, .. }),
            "got {response:?}"
        );
        server.begin_shutdown();
        server.join();
    }
}
