//! The wire protocol of the obfuscation service.
//!
//! Frames are a 4-byte big-endian length prefix followed by that many
//! bytes of UTF-8 JSON (compact, canonical — see
//! [`obfuscade::json::Json::render`]). Both directions use the same
//! framing; a frame above [`MAX_FRAME`] bytes is rejected before any
//! allocation. Every request carries a client-chosen `id` that the
//! matching response echoes, so a client can pipeline requests on one
//! connection.
//!
//! The payload encodings are pure functions of the decoded values: equal
//! results render to byte-identical frames, which is what lets the wire
//! equivalence suite compare a served batch against an in-process
//! [`obfuscade::run_pipeline_jobs`] call byte-for-byte.

use std::io::{self, Read, Write};

use am_cad::parts::{
    bracket, bracket_with_spline, intact_prism, prism_with_sphere, tensile_bar,
    tensile_bar_with_spline, BracketDims, PrismDims, TensileBarDims,
};
use am_cad::{BodyKind, MaterialRemoval, Part};
use am_mesh::Resolution;
use am_slicer::{Orientation, SlicerConfig};
use obfuscade::json::{parse_json, Json};
use obfuscade::{FaultPlan, FeaSolver, PipelineError, PipelineOutput, ProcessPlan};

/// Hard cap on a single frame payload (8 MiB): far above any real request
/// or response, low enough that a corrupt length prefix cannot trigger a
/// giant allocation.
pub const MAX_FRAME: usize = 8 << 20;

/// Writes one length-prefixed frame and flushes the stream.
///
/// # Errors
///
/// `InvalidInput` if the payload exceeds [`MAX_FRAME`]; otherwise any
/// underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME} byte cap", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames); an EOF in the middle of a frame is an error.
///
/// # Errors
///
/// `InvalidData` if the length prefix exceeds [`MAX_FRAME`]; otherwise
/// any underlying I/O error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut head = [0u8; 4];
    loop {
        match r.read(&mut head[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    r.read_exact(&mut head[1..])?;
    let len = u32::from_be_bytes(head) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len} byte frame (cap {MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One manufacturing job, fully described by value — the wire analogue of
/// a [`obfuscade::BatchJob`]. Every field has a default, so a request may
/// send only what it overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Demo part family: `bar`, `bracket` or `prism`.
    pub part: String,
    /// Build the intact (unprotected) variant instead of the obfuscated
    /// one.
    pub intact: bool,
    /// STL export resolution.
    pub resolution: Resolution,
    /// Build orientation.
    pub orientation: Orientation,
    /// Process-noise / specimen seed.
    pub seed: u64,
    /// Run the virtual tensile test.
    pub tensile: bool,
    /// Equilibrium solver for the tensile kernel.
    pub solver: FeaSolver,
    /// Optional coarse slicing override: sets `layer_height` and
    /// `road_width` to this value and `analysis_cell` to half of it. The
    /// default (0.7 mm) keeps service jobs cheap; send `null` for the
    /// slicer's native defaults.
    pub layer: Option<f64>,
    /// Fault-injection spec string ([`FaultPlan`] syntax; empty = clean).
    pub faults: String,
    /// Seed for the fault plan's stochastic faults.
    pub fault_seed: u64,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            part: "prism".to_string(),
            intact: false,
            resolution: Resolution::Coarse,
            orientation: Orientation::Xy,
            seed: 1,
            tensile: false,
            solver: FeaSolver::default(),
            layer: Some(0.7),
            faults: String::new(),
            fault_seed: 1,
        }
    }
}

fn resolution_name(r: Resolution) -> &'static str {
    match r {
        Resolution::Coarse => "coarse",
        Resolution::Fine => "fine",
        Resolution::Custom => "custom",
    }
}

fn orientation_name(o: Orientation) -> &'static str {
    match o {
        Orientation::Xy => "xy",
        Orientation::Xz => "xz",
    }
}

impl JobSpec {
    /// The spec as a JSON object (stable field order).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("part".into(), Json::str(self.part.clone())),
            ("intact".into(), Json::Bool(self.intact)),
            ("resolution".into(), Json::str(resolution_name(self.resolution))),
            ("orientation".into(), Json::str(orientation_name(self.orientation))),
            ("seed".into(), Json::u64(self.seed)),
            ("tensile".into(), Json::Bool(self.tensile)),
            ("solver".into(), Json::str(self.solver.name())),
            (
                "layer".into(),
                match self.layer {
                    Some(v) => Json::Number(v),
                    None => Json::Null,
                },
            ),
            ("faults".into(), Json::str(self.faults.clone())),
            ("fault_seed".into(), Json::u64(self.fault_seed)),
        ])
    }

    /// Decodes a spec from a JSON object; absent fields keep defaults.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let Json::Object(fields) = v else {
            return Err("job spec must be a JSON object".to_string());
        };
        let mut spec = JobSpec::default();
        for (name, value) in fields {
            match name.as_str() {
                "part" => {
                    spec.part =
                        value.as_str().ok_or("`part` must be a string")?.to_string();
                }
                "intact" => spec.intact = value.as_bool().ok_or("`intact` must be a bool")?,
                "resolution" => {
                    spec.resolution =
                        match value.as_str().ok_or("`resolution` must be a string")? {
                            "coarse" => Resolution::Coarse,
                            "fine" => Resolution::Fine,
                            "custom" => Resolution::Custom,
                            other => {
                                return Err(format!(
                                    "unknown resolution `{other}` (coarse|fine|custom)"
                                ))
                            }
                        };
                }
                "orientation" => {
                    spec.orientation =
                        match value.as_str().ok_or("`orientation` must be a string")? {
                            "xy" => Orientation::Xy,
                            "xz" => Orientation::Xz,
                            other => {
                                return Err(format!("unknown orientation `{other}` (xy|xz)"))
                            }
                        };
                }
                "seed" => spec.seed = value.as_u64().ok_or("`seed` must be an integer")?,
                "tensile" => spec.tensile = value.as_bool().ok_or("`tensile` must be a bool")?,
                "solver" => {
                    spec.solver = value.as_str().ok_or("`solver` must be a string")?.parse()?;
                }
                "layer" => {
                    spec.layer = match value {
                        Json::Null => None,
                        Json::Number(v) if v.is_finite() && *v > 0.0 => Some(*v),
                        _ => return Err("`layer` must be null or a positive number".to_string()),
                    };
                }
                "faults" => {
                    spec.faults =
                        value.as_str().ok_or("`faults` must be a string")?.to_string();
                }
                "fault_seed" => {
                    spec.fault_seed = value.as_u64().ok_or("`fault_seed` must be an integer")?;
                }
                other => return Err(format!("unknown job field `{other}`")),
            }
        }
        Ok(spec)
    }

    /// Builds the demo part the spec names.
    ///
    /// # Errors
    ///
    /// An unknown part family, or a CAD feature-history failure.
    pub fn build_part(&self) -> Result<Part, String> {
        match self.part.as_str() {
            "bar" => {
                let dims = TensileBarDims::default();
                if self.intact { tensile_bar(&dims) } else { tensile_bar_with_spline(&dims) }
            }
            "bracket" => {
                let dims = BracketDims::default();
                if self.intact { bracket(&dims) } else { bracket_with_spline(&dims) }
            }
            "prism" => {
                let dims = PrismDims::default();
                if self.intact {
                    Ok(intact_prism(&dims))
                } else {
                    prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
                }
            }
            other => return Err(format!("unknown part `{other}` (bar|bracket|prism)")),
        }
        .map_err(|e| e.to_string())
    }

    /// The process plan the spec describes. Thread budget is left serial —
    /// the batch engine parallelises across jobs, not within them.
    pub fn plan(&self) -> ProcessPlan {
        let mut plan = ProcessPlan::fdm(self.resolution, self.orientation)
            .with_seed(self.seed)
            .with_tensile(self.tensile)
            .with_fea_solver(self.solver);
        if let Some(layer) = self.layer {
            plan.slicer = SlicerConfig {
                layer_height: layer,
                road_width: layer,
                analysis_cell: layer / 2.0,
                ..SlicerConfig::default()
            };
        }
        plan
    }

    /// Parses the fault spec string into a seeded [`FaultPlan`].
    ///
    /// # Errors
    ///
    /// The first unrecognised fault token.
    pub fn fault_plan(&self) -> Result<FaultPlan, String> {
        self.faults
            .parse::<FaultPlan>()
            .map(|p| p.with_seed(self.fault_seed))
            .map_err(|e| e.to_string())
    }

    /// The mesh→slice stage-key prefix this job would warm — the routing
    /// key of the cache-affinity fleet. Pure: materialises the part and
    /// plans without executing any pipeline stage, then delegates to
    /// [`obfuscade::prefix_key_for_job`]. Two specs with equal prefix
    /// keys share their expensive mesh/slice/toolpath work, so a router
    /// that keeps them on one backend preserves the warm-cache hit rate.
    ///
    /// # Errors
    ///
    /// A malformed part name or fault spec, same as [`JobSpec::build_part`]
    /// / [`JobSpec::fault_plan`].
    pub fn prefix_key(&self) -> Result<obfuscade::StageKey, String> {
        let part = self.build_part()?;
        let faults = self.fault_plan()?;
        Ok(obfuscade::prefix_key_for_job(&part, &self.plan(), &faults))
    }
}

/// One side-channel detection job: a suspect manufacturing job plus the
/// capture setup the daemon should judge it under. The wire analogue of
/// `am_detect::detect_counterfeit`'s inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectSpec {
    /// The suspect job (its `faults` field is the counterfeit hypothesis;
    /// the golden master is the same job with an empty fault plan).
    pub job: JobSpec,
    /// Capture-quality preset: `lab`, `smartphone`, or `room`.
    pub quality: String,
    /// Relative amplitude of the defender's noise emitter over the
    /// acoustic capture (0 = jamming off).
    pub jam_amplitude: f64,
    /// Seed of every capture-noise draw the job makes.
    pub trace_seed: u64,
}

impl Default for DetectSpec {
    fn default() -> Self {
        DetectSpec {
            job: JobSpec::default(),
            quality: "smartphone".to_string(),
            jam_amplitude: 0.0,
            trace_seed: 1,
        }
    }
}

impl DetectSpec {
    /// The spec as a JSON object (stable field order).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("job".into(), self.job.to_json()),
            ("quality".into(), Json::str(self.quality.clone())),
            ("jam_amplitude".into(), Json::Number(self.jam_amplitude)),
            ("trace_seed".into(), Json::u64(self.trace_seed)),
        ])
    }

    /// Decodes a spec from a JSON object; absent fields keep defaults.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<DetectSpec, String> {
        let Json::Object(fields) = v else {
            return Err("detect spec must be a JSON object".to_string());
        };
        let mut spec = DetectSpec::default();
        for (name, value) in fields {
            match name.as_str() {
                "job" => spec.job = JobSpec::from_json(value)?,
                "quality" => {
                    spec.quality =
                        value.as_str().ok_or("`quality` must be a string")?.to_string();
                }
                "jam_amplitude" => {
                    spec.jam_amplitude = match value {
                        Json::Number(v) if v.is_finite() && *v >= 0.0 => *v,
                        _ => {
                            return Err(
                                "`jam_amplitude` must be a non-negative number".to_string()
                            )
                        }
                    };
                }
                "trace_seed" => {
                    spec.trace_seed =
                        value.as_u64().ok_or("`trace_seed` must be an integer")?;
                }
                other => return Err(format!("unknown detect field `{other}`")),
            }
        }
        Ok(spec)
    }
}

/// One stego-sanitization job: a manufacturing job whose planned tool
/// path is scanned and stripped. The wire analogue of
/// `am_detect::sanitize_toolpath`'s inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizeSpec {
    /// The job whose tool path is sanitized.
    pub job: JobSpec,
    /// Seed of a payload to embed before sanitizing (0 = none: scan and
    /// strip the clean tool path).
    pub payload_seed: u64,
    /// Width of the scanned/stripped channel (bits per coordinate,
    /// 1–8).
    pub payload_bits: u64,
}

impl Default for SanitizeSpec {
    fn default() -> Self {
        SanitizeSpec { job: JobSpec::default(), payload_seed: 0, payload_bits: 2 }
    }
}

impl SanitizeSpec {
    /// The spec as a JSON object (stable field order).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("job".into(), self.job.to_json()),
            ("payload_seed".into(), Json::u64(self.payload_seed)),
            ("payload_bits".into(), Json::u64(self.payload_bits)),
        ])
    }

    /// Decodes a spec from a JSON object; absent fields keep defaults.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<SanitizeSpec, String> {
        let Json::Object(fields) = v else {
            return Err("sanitize spec must be a JSON object".to_string());
        };
        let mut spec = SanitizeSpec::default();
        for (name, value) in fields {
            match name.as_str() {
                "job" => spec.job = JobSpec::from_json(value)?,
                "payload_seed" => {
                    spec.payload_seed =
                        value.as_u64().ok_or("`payload_seed` must be an integer")?;
                }
                "payload_bits" => {
                    spec.payload_bits = match value.as_u64() {
                        Some(bits) if (1..=8).contains(&bits) => bits,
                        _ => {
                            return Err(
                                "`payload_bits` must be an integer in 1..=8".to_string()
                            )
                        }
                    };
                }
                other => return Err(format!("unknown sanitize field `{other}`")),
            }
        }
        Ok(spec)
    }
}

/// A decoded request frame: client-chosen correlation id plus the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Correlation id, echoed verbatim in the response.
    pub id: u64,
    /// What the client wants done.
    pub body: RequestBody,
}

/// The request kinds the service understands.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// One [`obfuscade::metrics::MetricsSnapshot`]; answered inline.
    Stats,
    /// Graceful drain: finish queued and in-flight jobs, then stop
    /// accepting and close the listeners. Answered with `bye` once the
    /// drain completes.
    Shutdown,
    /// A batch of manufacturing jobs for the shared pipeline engine.
    Run {
        /// The jobs, in response order.
        jobs: Vec<JobSpec>,
        /// Optional budget (ms) for the whole batch, admission included.
        deadline_ms: Option<u64>,
    },
    /// Manufacture one part and authenticate it from its internal scan.
    Authenticate {
        /// The single job to judge.
        job: JobSpec,
        /// Optional budget (ms).
        deadline_ms: Option<u64>,
    },
    /// A batch of side-channel detection jobs.
    Detect {
        /// The detection jobs, in response order.
        jobs: Vec<DetectSpec>,
        /// Optional budget (ms) for the whole batch.
        deadline_ms: Option<u64>,
    },
    /// A batch of stego-sanitization jobs.
    Sanitize {
        /// The sanitization jobs, in response order.
        jobs: Vec<SanitizeSpec>,
        /// Optional budget (ms) for the whole batch.
        deadline_ms: Option<u64>,
    },
}

fn get_id(fields: &Json) -> Result<u64, String> {
    fields.get("id").and_then(Json::as_u64).ok_or_else(|| "missing integer `id`".to_string())
}

fn get_deadline(fields: &Json) -> Result<Option<u64>, String> {
    match fields.get("deadline_ms") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            v.as_u64().map(Some).ok_or_else(|| "`deadline_ms` must be an integer".to_string())
        }
    }
}

impl Request {
    /// The request as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("id".to_string(), Json::u64(self.id))];
        match &self.body {
            RequestBody::Ping => fields.push(("kind".into(), Json::str("ping"))),
            RequestBody::Stats => fields.push(("kind".into(), Json::str("stats"))),
            RequestBody::Shutdown => fields.push(("kind".into(), Json::str("shutdown"))),
            RequestBody::Run { jobs, deadline_ms } => {
                fields.push(("kind".into(), Json::str("run")));
                fields.push((
                    "jobs".into(),
                    Json::Array(jobs.iter().map(JobSpec::to_json).collect()),
                ));
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".into(), Json::u64(*ms)));
                }
            }
            RequestBody::Authenticate { job, deadline_ms } => {
                fields.push(("kind".into(), Json::str("authenticate")));
                fields.push(("job".into(), job.to_json()));
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".into(), Json::u64(*ms)));
                }
            }
            RequestBody::Detect { jobs, deadline_ms } => {
                fields.push(("kind".into(), Json::str("detect")));
                fields.push((
                    "jobs".into(),
                    Json::Array(jobs.iter().map(DetectSpec::to_json).collect()),
                ));
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".into(), Json::u64(*ms)));
                }
            }
            RequestBody::Sanitize { jobs, deadline_ms } => {
                fields.push(("kind".into(), Json::str("sanitize")));
                fields.push((
                    "jobs".into(),
                    Json::Array(jobs.iter().map(SanitizeSpec::to_json).collect()),
                ));
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".into(), Json::u64(*ms)));
                }
            }
        }
        Json::Object(fields)
    }

    /// Decodes a request from parsed JSON.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let id = get_id(v)?;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string `kind`".to_string())?;
        let body = match kind {
            "ping" => RequestBody::Ping,
            "stats" => RequestBody::Stats,
            "shutdown" => RequestBody::Shutdown,
            "run" => {
                let jobs = match v.get("jobs") {
                    Some(Json::Array(items)) => {
                        items.iter().map(JobSpec::from_json).collect::<Result<Vec<_>, _>>()?
                    }
                    Some(_) => return Err("`jobs` must be an array".to_string()),
                    None => vec![JobSpec::default()],
                };
                RequestBody::Run { jobs, deadline_ms: get_deadline(v)? }
            }
            "authenticate" => {
                let job = match v.get("job") {
                    Some(obj) => JobSpec::from_json(obj)?,
                    None => JobSpec::default(),
                };
                RequestBody::Authenticate { job, deadline_ms: get_deadline(v)? }
            }
            "detect" => {
                let jobs = match v.get("jobs") {
                    Some(Json::Array(items)) => {
                        items.iter().map(DetectSpec::from_json).collect::<Result<Vec<_>, _>>()?
                    }
                    Some(_) => return Err("`jobs` must be an array".to_string()),
                    None => vec![DetectSpec::default()],
                };
                RequestBody::Detect { jobs, deadline_ms: get_deadline(v)? }
            }
            "sanitize" => {
                let jobs = match v.get("jobs") {
                    Some(Json::Array(items)) => items
                        .iter()
                        .map(SanitizeSpec::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    Some(_) => return Err("`jobs` must be an array".to_string()),
                    None => vec![SanitizeSpec::default()],
                };
                RequestBody::Sanitize { jobs, deadline_ms: get_deadline(v)? }
            }
            other => return Err(format!("unknown request kind `{other}`")),
        };
        Ok(Request { id, body })
    }

    /// Renders the request to frame-payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        self.to_json().render().into_bytes()
    }

    /// Parses frame-payload bytes into a request.
    ///
    /// # Errors
    ///
    /// Invalid UTF-8, invalid JSON, or a malformed field.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        Request::from_json(&parse_json(text)?)
    }
}

/// Typed rejection classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded job queue was at capacity; retry later.
    Overloaded,
    /// The daemon is draining and admits no new jobs.
    ShuttingDown,
    /// The request could not be decoded or named unknown inputs.
    Malformed,
    /// The request is understood but this peer may not issue it —
    /// `shutdown` from a non-local connection without
    /// `allow_remote_shutdown`.
    Forbidden,
    /// The pipeline itself failed (or a deadline expired mid-request);
    /// the message carries the typed pipeline error's text.
    Job,
    /// The worker processing this job died (a panic); only this job is
    /// affected — the worker is respawned and the queue keeps draining.
    /// Submission is idempotent and content-addressed, so clients may
    /// safely retry.
    Internal,
    /// A codec negotiation the daemon cannot honor — binary magic sent
    /// to a JSON-only server, or an unsupported binary version. Always
    /// answered in JSON; the connection survives and stays JSON.
    BadCodec,
}

impl ServiceError {
    /// Stable lowercase wire name.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceError::Overloaded => "overloaded",
            ServiceError::ShuttingDown => "shutting_down",
            ServiceError::Malformed => "malformed",
            ServiceError::Forbidden => "forbidden",
            ServiceError::Job => "job",
            ServiceError::Internal => "internal",
            ServiceError::BadCodec => "bad_codec",
        }
    }

    /// Parses a wire name back to the class.
    ///
    /// # Errors
    ///
    /// The unknown name.
    pub fn from_name(name: &str) -> Result<ServiceError, String> {
        match name {
            "overloaded" => Ok(ServiceError::Overloaded),
            "shutting_down" => Ok(ServiceError::ShuttingDown),
            "malformed" => Ok(ServiceError::Malformed),
            "forbidden" => Ok(ServiceError::Forbidden),
            "job" => Ok(ServiceError::Job),
            "internal" => Ok(ServiceError::Internal),
            "bad_codec" => Ok(ServiceError::BadCodec),
            other => Err(format!("unknown error class `{other}`")),
        }
    }
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to `ping`.
    Pong {
        /// Echoed request id.
        id: u64,
    },
    /// Answer to `stats`: one serialized metrics snapshot.
    Stats {
        /// Echoed request id.
        id: u64,
        /// The snapshot object ([`obfuscade::metrics::MetricsSnapshot::to_json`]).
        metrics: Json,
    },
    /// Answer to `shutdown`, sent after the drain completes.
    Bye {
        /// Echoed request id.
        id: u64,
        /// Total job requests the daemon completed over its lifetime.
        completed: u64,
    },
    /// Answer to `run`: one encoded outcome per job, in request order.
    Results {
        /// Echoed request id.
        id: u64,
        /// Encoded outcomes ([`encode_outcome`]).
        results: Vec<Json>,
    },
    /// Answer to `authenticate`.
    Verdict {
        /// Echoed request id.
        id: u64,
        /// `genuine` or `counterfeit`.
        verdict: String,
        /// Measured cold-joint area (mm²).
        cold_joint_mm2: f64,
        /// Measured internal void volume (mm³).
        void_mm3: f64,
    },
    /// Answer to `detect`: one encoded outcome per detection job, in
    /// request order. Each entry is `{"ok": <DetectionReport JSON>}` or
    /// `{"err": {...}}` ([`encode_detect_outcome`]).
    Detections {
        /// Echoed request id.
        id: u64,
        /// Encoded detection outcomes.
        reports: Vec<Json>,
    },
    /// Answer to `sanitize`: one encoded outcome per job, in request
    /// order ([`encode_sanitize_outcome`]).
    Sanitized {
        /// Echoed request id.
        id: u64,
        /// Encoded sanitize outcomes.
        reports: Vec<Json>,
    },
    /// Typed failure.
    Error {
        /// Echoed request id (0 when the request id was unreadable).
        id: u64,
        /// Rejection class.
        error: ServiceError,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Pong { id }
            | Response::Stats { id, .. }
            | Response::Bye { id, .. }
            | Response::Results { id, .. }
            | Response::Verdict { id, .. }
            | Response::Detections { id, .. }
            | Response::Sanitized { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }

    /// The response as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("id".to_string(), Json::u64(self.id()))];
        match self {
            Response::Pong { .. } => fields.push(("kind".into(), Json::str("pong"))),
            Response::Stats { metrics, .. } => {
                fields.push(("kind".into(), Json::str("stats")));
                fields.push(("metrics".into(), metrics.clone()));
            }
            Response::Bye { completed, .. } => {
                fields.push(("kind".into(), Json::str("bye")));
                fields.push(("completed".into(), Json::u64(*completed)));
            }
            Response::Results { results, .. } => {
                fields.push(("kind".into(), Json::str("results")));
                fields.push(("results".into(), Json::Array(results.clone())));
            }
            Response::Verdict { verdict, cold_joint_mm2, void_mm3, .. } => {
                fields.push(("kind".into(), Json::str("verdict")));
                fields.push(("verdict".into(), Json::str(verdict.clone())));
                fields.push(("cold_joint_mm2".into(), Json::Number(*cold_joint_mm2)));
                fields.push(("void_mm3".into(), Json::Number(*void_mm3)));
            }
            Response::Detections { reports, .. } => {
                fields.push(("kind".into(), Json::str("detections")));
                fields.push(("reports".into(), Json::Array(reports.clone())));
            }
            Response::Sanitized { reports, .. } => {
                fields.push(("kind".into(), Json::str("sanitized")));
                fields.push(("reports".into(), Json::Array(reports.clone())));
            }
            Response::Error { error, message, .. } => {
                fields.push(("kind".into(), Json::str("error")));
                fields.push(("error".into(), Json::str(error.name())));
                fields.push(("message".into(), Json::str(message.clone())));
            }
        }
        Json::Object(fields)
    }

    /// Decodes a response from parsed JSON.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<Response, String> {
        let id = get_id(v)?;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string `kind`".to_string())?;
        match kind {
            "pong" => Ok(Response::Pong { id }),
            "stats" => {
                let metrics =
                    v.get("metrics").cloned().ok_or_else(|| "missing `metrics`".to_string())?;
                Ok(Response::Stats { id, metrics })
            }
            "bye" => {
                let completed = v
                    .get("completed")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "missing integer `completed`".to_string())?;
                Ok(Response::Bye { id, completed })
            }
            "results" => match v.get("results") {
                Some(Json::Array(items)) => Ok(Response::Results { id, results: items.clone() }),
                _ => Err("missing array `results`".to_string()),
            },
            "verdict" => {
                let verdict = v
                    .get("verdict")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "missing string `verdict`".to_string())?
                    .to_string();
                let cold = v
                    .get("cold_joint_mm2")
                    .and_then(Json::as_number)
                    .ok_or_else(|| "missing number `cold_joint_mm2`".to_string())?;
                let voids = v
                    .get("void_mm3")
                    .and_then(Json::as_number)
                    .ok_or_else(|| "missing number `void_mm3`".to_string())?;
                Ok(Response::Verdict { id, verdict, cold_joint_mm2: cold, void_mm3: voids })
            }
            "detections" => match v.get("reports") {
                Some(Json::Array(items)) => {
                    Ok(Response::Detections { id, reports: items.clone() })
                }
                _ => Err("missing array `reports`".to_string()),
            },
            "sanitized" => match v.get("reports") {
                Some(Json::Array(items)) => Ok(Response::Sanitized { id, reports: items.clone() }),
                _ => Err("missing array `reports`".to_string()),
            },
            "error" => {
                let class = v
                    .get("error")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "missing string `error`".to_string())?;
                let message = v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                Ok(Response::Error { id, error: ServiceError::from_name(class)?, message })
            }
            other => Err(format!("unknown response kind `{other}`")),
        }
    }

    /// Renders the response to frame-payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        self.to_json().render().into_bytes()
    }

    /// Parses frame-payload bytes into a response.
    ///
    /// # Errors
    ///
    /// Invalid UTF-8, invalid JSON, or a malformed field.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        Response::from_json(&parse_json(text)?)
    }
}

/// Encodes one pipeline outcome as JSON — the canonical result shape both
/// the daemon and the in-process reference use, so byte equality of the
/// encodings is exactly value equality of every field encoded.
pub fn encode_outcome(outcome: &Result<PipelineOutput, PipelineError>) -> Json {
    match outcome {
        Ok(o) => {
            let tensile = match &o.tensile {
                None => Json::Null,
                Some(t) => Json::Object(vec![
                    ("uts_mpa".into(), Json::Number(t.uts_mpa)),
                    ("young_gpa".into(), Json::Number(t.young_modulus_gpa)),
                    ("failure_strain".into(), Json::Number(t.failure_strain)),
                    ("toughness_kj_m3".into(), Json::Number(t.toughness_kj_m3)),
                    ("ruptured".into(), Json::Bool(t.ruptured)),
                ]),
            };
            Json::Object(vec![(
                "ok".into(),
                Json::Object(vec![
                    ("part".into(), Json::str(o.part_name.clone())),
                    ("triangles".into(), Json::u64(o.mesh_triangles as u64)),
                    ("stl_bytes".into(), Json::u64(o.stl_bytes)),
                    ("slice_layers".into(), Json::u64(o.slice_report.layers as u64)),
                    (
                        "discontinuous_layers".into(),
                        Json::u64(o.slice_report.discontinuous_layers as u64),
                    ),
                    ("model_mm".into(), Json::Number(o.toolpath.model_mm)),
                    ("support_mm".into(), Json::Number(o.toolpath.support_mm)),
                    ("time_s".into(), Json::Number(o.toolpath.time_s)),
                    ("weight_g".into(), Json::Number(o.printed.weight_g())),
                    ("void_mm3".into(), Json::Number(o.scan.internal_void_volume)),
                    ("cold_joint_mm2".into(), Json::Number(o.scan.cold_joint_area)),
                    (
                        "trapped_support".into(),
                        Json::u64(o.scan.internal_support_voxels as u64),
                    ),
                    ("joint_contact".into(), Json::Number(o.joint_contact)),
                    ("degraded".into(), Json::Bool(o.is_degraded())),
                    (
                        "diagnostics".into(),
                        Json::Array(
                            o.diagnostics.iter().map(|d| Json::str(d.to_string())).collect(),
                        ),
                    ),
                    ("tensile".into(), tensile),
                ]),
            )])
        }
        Err(e) => Json::Object(vec![(
            "err".into(),
            Json::Object(vec![
                ("stage".into(), Json::str(e.stage().name())),
                ("message".into(), Json::str(e.to_string())),
            ]),
        )]),
    }
}

/// Encodes one detection outcome as JSON — the same `{"ok": ...}` /
/// `{"err": {stage, message}}` envelope as [`encode_outcome`], wrapping
/// the report's canonical rendering, so byte equality of encodings is
/// value equality of reports.
pub fn encode_detect_outcome(
    outcome: &Result<obfuscade::DetectionReport, am_detect::DetectError>,
) -> Json {
    match outcome {
        Ok(report) => Json::Object(vec![("ok".into(), report.to_json())]),
        Err(e) => encode_detect_error(e),
    }
}

/// Encodes one sanitization outcome as JSON (see
/// [`encode_detect_outcome`]).
pub fn encode_sanitize_outcome(
    outcome: &Result<obfuscade::SanitizeReport, am_detect::DetectError>,
) -> Json {
    match outcome {
        Ok(report) => Json::Object(vec![("ok".into(), report.to_json())]),
        Err(e) => encode_detect_error(e),
    }
}

fn encode_detect_error(e: &am_detect::DetectError) -> Json {
    let stage = match e {
        am_detect::DetectError::Pipeline(p) => p.stage().name(),
        am_detect::DetectError::Config(_) => "detect",
    };
    Json::Object(vec![(
        "err".into(),
        Json::Object(vec![
            ("stage".into(), Json::str(stage)),
            ("message".into(), Json::str(e.to_string())),
        ]),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).expect("eof"), None);

        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut Vec::new(), &huge).is_err());
        // A corrupt length prefix is rejected before allocation.
        let mut bad = Cursor::new(0xffff_ffffu32.to_be_bytes().to_vec());
        assert!(read_frame(&mut bad).is_err());
        // EOF mid-frame is an error, not a clean close.
        let mut cut = Cursor::new(vec![0, 0, 0, 9, b'x']);
        assert!(read_frame(&mut cut).is_err());
    }

    #[test]
    fn requests_round_trip_through_the_wire_encoding() {
        let job = JobSpec {
            part: "bar".into(),
            tensile: true,
            faults: "void-stl".into(),
            layer: None,
            ..JobSpec::default()
        };
        for body in [
            RequestBody::Ping,
            RequestBody::Stats,
            RequestBody::Shutdown,
            RequestBody::Run { jobs: vec![job.clone(), JobSpec::default()], deadline_ms: Some(250) },
            RequestBody::Authenticate { job: job.clone(), deadline_ms: None },
            RequestBody::Detect {
                jobs: vec![
                    DetectSpec { job: job.clone(), quality: "room".into(), ..DetectSpec::default() },
                    DetectSpec::default(),
                ],
                deadline_ms: Some(900),
            },
            RequestBody::Sanitize {
                jobs: vec![SanitizeSpec { job, payload_seed: 99, payload_bits: 3 }],
                deadline_ms: None,
            },
        ] {
            let request = Request { id: 7, body };
            let decoded = Request::decode(&request.encode()).expect("decode");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_encoding() {
        for response in [
            Response::Pong { id: 1 },
            Response::Stats { id: 2, metrics: Json::Object(vec![("x".into(), Json::u64(3))]) },
            Response::Bye { id: 3, completed: 42 },
            Response::Results { id: 4, results: vec![Json::Null, Json::Bool(true)] },
            Response::Verdict {
                id: 5,
                verdict: "counterfeit".into(),
                cold_joint_mm2: 12.5,
                void_mm3: 0.25,
            },
            Response::Detections {
                id: 7,
                reports: vec![Json::Object(vec![("ok".into(), Json::Bool(true))])],
            },
            Response::Sanitized { id: 8, reports: vec![Json::Null] },
            Response::Error {
                id: 6,
                error: ServiceError::Overloaded,
                message: "queue full".into(),
            },
        ] {
            let decoded = Response::decode(&response.encode()).expect("decode");
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn job_spec_decoding_rejects_unknown_fields_and_values() {
        let spec = JobSpec::default();
        assert_eq!(JobSpec::from_json(&spec.to_json()).expect("round trip"), spec);
        let bad = parse_json(r#"{"part":"prism","warp":9}"#).expect("parse");
        assert!(JobSpec::from_json(&bad).expect_err("unknown field").contains("warp"));
        let bad = parse_json(r#"{"resolution":"ultra"}"#).expect("parse");
        assert!(JobSpec::from_json(&bad).expect_err("bad resolution").contains("ultra"));
        let bad = parse_json(r#"{"layer":-1}"#).expect("parse");
        assert!(JobSpec::from_json(&bad).is_err());
    }

    #[test]
    fn outcome_encoding_separates_ok_and_err() {
        let spec = JobSpec::default();
        let part = spec.build_part().expect("part");
        let output =
            obfuscade::run_pipeline(&part, &spec.plan()).expect("pipeline");
        let ok = encode_outcome(&Ok(output));
        assert!(ok.get("ok").and_then(|o| o.get("weight_g")).is_some());
        let err = encode_outcome(&Err(PipelineError::EmptyBuild { part: "ghost".into() }));
        let stage = err.get("err").and_then(|e| e.get("stage")).and_then(Json::as_str);
        assert!(stage.is_some(), "error encoding must carry a stage name");
    }
}
