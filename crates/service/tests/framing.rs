//! Adversarial framing: malformed and hostile byte streams must never
//! crash the daemon or wedge other connections. Covers zero-length
//! frames (typed `malformed`, connection survives), oversized length
//! prefixes (connection closed, daemon keeps serving), partial frames
//! interleaved across 100 concurrent sockets against the reactor, and
//! a binary-magic hello sent to a JSON-only server (typed `bad_codec`,
//! connection continues in JSON).

use am_service::{
    encode_hello, read_frame, write_frame, Client, Codec, ConnBackend, Endpoint, Request,
    RequestBody, Response, Server, ServerConfig, ServiceError, BINARY_VERSION, MAX_FRAME,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Both connection backends on Linux; the reactor is epoll-only so the
/// list degrades to the thread backend elsewhere.
#[cfg(target_os = "linux")]
const BACKENDS: &[ConnBackend] = &[ConnBackend::Threads, ConnBackend::Reactor];
#[cfg(not(target_os = "linux"))]
const BACKENDS: &[ConnBackend] = &[ConnBackend::Threads];

fn start(backend: ConnBackend, json_only: bool) -> Server {
    Server::start(ServerConfig {
        workers: 2,
        backend,
        json_only,
        ..ServerConfig::default()
    })
    .expect("server boots")
}

/// A raw TCP connection with a read timeout so a wedged daemon fails
/// the test instead of hanging it.
fn raw_connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

fn ping_frame(id: u64) -> Vec<u8> {
    let payload = Request {
        id,
        body: RequestBody::Ping,
    }
    .encode();
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Write a JSON ping on a raw stream and assert the pong echoes the id.
fn ping_on(stream: &mut TcpStream, id: u64, context: &str) {
    let payload = Request {
        id,
        body: RequestBody::Ping,
    }
    .encode();
    write_frame(stream, &payload).expect("write ping");
    let frame = read_frame(stream)
        .expect("read pong")
        .unwrap_or_else(|| panic!("{context}: connection closed instead of answering ping"));
    let response = Response::decode(&frame).expect("decode pong");
    assert!(
        matches!(response, Response::Pong { id: got } if got == id),
        "{context}: expected pong id {id}, got {response:?}"
    );
}

/// A zero-length frame is not a hello and not valid JSON: the daemon
/// must answer with a typed `malformed` error and keep the connection
/// usable, on both backends.
#[test]
fn zero_length_frame_gets_typed_malformed_and_connection_survives() {
    for &backend in BACKENDS {
        let server = start(backend, false);
        let mut stream = raw_connect(&server);

        write_frame(&mut stream, b"").expect("write empty frame");
        let frame = read_frame(&mut stream)
            .expect("read error reply")
            .expect("daemon closed the connection on an empty frame");
        let response = Response::decode(&frame).expect("decode error reply");
        let Response::Error { error, .. } = response else {
            panic!("{}: expected a typed error, got {response:?}", backend.name());
        };
        assert_eq!(
            error,
            ServiceError::Malformed,
            "{}: empty frame must map to `malformed`",
            backend.name()
        );

        // The same connection keeps working.
        ping_on(&mut stream, 71, backend.name());

        let endpoint = Endpoint::Tcp(server.addr().to_string());
        let mut client = Client::connect(&endpoint).expect("connect");
        client.shutdown().expect("shutdown");
        server.join();
    }
}

/// A length prefix beyond `MAX_FRAME` is a protocol violation: that
/// connection is closed without ever buffering the advertised bytes,
/// and the daemon keeps serving fresh connections.
#[test]
fn oversized_length_prefix_closes_connection_but_daemon_survives() {
    for &backend in BACKENDS {
        let server = start(backend, false);
        let mut stream = raw_connect(&server);

        let oversized = (MAX_FRAME as u32) + 1;
        stream
            .write_all(&oversized.to_be_bytes())
            .expect("write hostile prefix");
        // The daemon must hang up: read either errors (reset) or
        // returns a clean EOF — never a reply, never a stall.
        match read_frame(&mut stream) {
            Ok(None) | Err(_) => {}
            Ok(Some(frame)) => panic!(
                "{}: daemon answered an oversized prefix with {} bytes",
                backend.name(),
                frame.len()
            ),
        }

        // A fresh connection is served normally.
        let mut fresh = raw_connect(&server);
        ping_on(&mut fresh, 72, backend.name());

        let endpoint = Endpoint::Tcp(server.addr().to_string());
        let mut client = Client::connect(&endpoint).expect("connect");
        client.shutdown().expect("shutdown");
        server.join();
    }
}

/// 100 sockets each dribble one ping frame in single-digit-byte chunks,
/// interleaved round-robin, against the reactor: every partial frame
/// must be reassembled per-connection and every socket get exactly its
/// own pong back. (Reactor-only: this is precisely the state the
/// per-connection read buffers exist for.)
#[cfg(target_os = "linux")]
#[test]
fn interleaved_partial_frames_on_100_sockets_reassemble_per_connection() {
    const SOCKETS: u64 = 100;
    const CHUNK: usize = 5;

    let server = start(ConnBackend::Reactor, false);
    let mut streams: Vec<TcpStream> = (0..SOCKETS).map(|_| raw_connect(&server)).collect();
    let frames: Vec<Vec<u8>> = (0..SOCKETS).map(|i| ping_frame(1000 + i)).collect();

    // Round-robin: each pass sends the next CHUNK bytes of every
    // socket's frame, so at any instant ~100 partial frames are in
    // flight across distinct connections.
    let mut offset = 0;
    let longest = frames.iter().map(Vec::len).max().unwrap_or(0);
    while offset < longest {
        for (stream, frame) in streams.iter_mut().zip(&frames) {
            if offset < frame.len() {
                let end = (offset + CHUNK).min(frame.len());
                stream.write_all(&frame[offset..end]).expect("write chunk");
                stream.flush().expect("flush chunk");
            }
        }
        offset += CHUNK;
        std::thread::sleep(Duration::from_millis(1));
    }

    for (i, stream) in streams.iter_mut().enumerate() {
        let frame = read_frame(stream)
            .expect("read pong")
            .unwrap_or_else(|| panic!("socket {i}: connection closed before its pong"));
        let response = Response::decode(&frame).expect("decode pong");
        assert!(
            matches!(response, Response::Pong { id } if id == 1000 + i as u64),
            "socket {i}: got someone else's reply: {response:?}"
        );
    }

    let endpoint = Endpoint::Tcp(server.addr().to_string());
    let mut client = Client::connect(&endpoint).expect("connect");
    client.shutdown().expect("shutdown");
    server.join();
}

/// Binary magic against a `--json-only` daemon: the daemon answers with
/// a typed `bad_codec` error *in JSON*, the connection survives, and
/// subsequent JSON traffic on it works. The high-level client surfaces
/// the refusal as a connect error.
#[test]
fn binary_hello_to_json_only_server_gets_bad_codec_and_connection_survives() {
    for &backend in BACKENDS {
        let server = start(backend, true);
        let mut stream = raw_connect(&server);

        write_frame(&mut stream, &encode_hello(BINARY_VERSION)).expect("write hello");
        let frame = read_frame(&mut stream)
            .expect("read refusal")
            .expect("daemon closed the connection on a binary hello");
        let response = Response::decode(&frame).expect("refusal must be JSON");
        let Response::Error { error, .. } = response else {
            panic!("{}: expected a typed error, got {response:?}", backend.name());
        };
        assert_eq!(
            error,
            ServiceError::BadCodec,
            "{}: binary hello to a JSON-only daemon must map to `bad_codec`",
            backend.name()
        );

        // The connection stays open and stays JSON.
        ping_on(&mut stream, 73, backend.name());

        // The negotiating client reports the refusal as an error
        // instead of silently downgrading.
        let endpoint = Endpoint::Tcp(server.addr().to_string());
        let Err(err) = Client::connect_with_codec(&endpoint, None, Codec::Binary) else {
            panic!("negotiation against a JSON-only daemon must fail");
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");

        let mut client = Client::connect(&endpoint).expect("connect");
        client.shutdown().expect("shutdown");
        server.join();
    }
}
