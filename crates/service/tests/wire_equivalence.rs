//! The service's core contract: a batch served over the wire is
//! **byte-identical** to the same batch run in-process through
//! `obfuscade::run_pipeline_jobs` — for clean jobs, seeded
//! fault-injection jobs, and jobs whose fault plans make the pipeline
//! abort with a typed error — across server worker counts {1, 2, 4},
//! across connections sharing the daemon's stage cache, and (PR 8)
//! across the full {reactor, threads} × {binary, json} backend/codec
//! matrix: decoded results must render to the same canonical JSON no
//! matter which connection backend served them or which wire codec
//! carried them.

use am_service::{
    expected_detections_wire, expected_results_wire, expected_sanitize_wire, ChaosPlan, Client,
    Codec, ConnBackend, DetectSpec, Endpoint, JobSpec, Response, RetryPolicy, RetryingClient,
    SanitizeSpec, Server, ServerConfig,
};
use obfuscade::json::Json;
use proptest::prelude::*;

/// Fault specs spanning the catalog (mirrors the core determinism
/// suite). `firmware.feed=1.5` makes the firmware stage reject the part
/// program, so its jobs exercise the error-carrying wire path.
const FAULT_SPECS: &[&str] = &[
    "",
    "stl.degenerate=3",
    "toolpath.dup=0.5 toolpath.drop=0.2",
    "firmware.feed=1.5",
];

const WORKER_COUNTS: &[usize] = &[1, 2, 4];

/// The backend × codec matrix every equivalence case sweeps. The
/// reactor backend is Linux-only (epoll); elsewhere the matrix
/// degrades to the thread backend so the suite still runs.
#[cfg(target_os = "linux")]
const MATRIX: &[(ConnBackend, Codec)] = &[
    (ConnBackend::Threads, Codec::Json),
    (ConnBackend::Threads, Codec::Binary),
    (ConnBackend::Reactor, Codec::Json),
    (ConnBackend::Reactor, Codec::Binary),
];
#[cfg(not(target_os = "linux"))]
const MATRIX: &[(ConnBackend, Codec)] = &[
    (ConnBackend::Threads, Codec::Json),
    (ConnBackend::Threads, Codec::Binary),
];

/// A small mixed batch over one fault spec: both orientations × two
/// seeds, the odd jobs faulted — so the served batch carries both clean
/// and (possibly erroring) faulted outcomes and genuinely shares stage
/// prefixes.
fn mixed_batch(spec: &str, fault_seed: u64, seed: u64) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (i, orientation) in ["xy", "xz", "xy", "xz"].iter().enumerate() {
        let job = JobSpec {
            orientation: match *orientation {
                "xz" => am_slicer::Orientation::Xz,
                _ => am_slicer::Orientation::Xy,
            },
            seed: seed + (i as u64) / 2,
            faults: if i % 2 == 1 { spec.to_string() } else { String::new() },
            fault_seed,
            ..JobSpec::default()
        };
        jobs.push(job);
    }
    jobs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn served_batches_are_byte_identical_to_in_process_runs(
        spec_idx in 0..FAULT_SPECS.len(),
        fault_seed in 1..10_000u64,
        seed in 1..1_000u64,
        workers_idx in 0..WORKER_COUNTS.len(),
        matrix_idx in 0..MATRIX.len(),
    ) {
        let (backend, codec) = MATRIX[matrix_idx];
        let jobs = mixed_batch(FAULT_SPECS[spec_idx], fault_seed, seed);
        let expected = expected_results_wire(&jobs).expect("in-process reference run");

        let server = Server::start(ServerConfig {
            workers: WORKER_COUNTS[workers_idx],
            backend,
            ..ServerConfig::default()
        })
        .expect("server boots");
        let endpoint = Endpoint::Tcp(server.addr().to_string());

        // Two separate connections submit the same batch: both must get
        // the exact reference bytes, and the second ride the cache the
        // first warmed.
        for round in 0..2 {
            let mut client =
                Client::connect_with_codec(&endpoint, None, codec).expect("connect");
            let response = client.run(jobs.clone(), None).expect("run");
            let Response::Results { results, .. } = response else {
                panic!("round {round}: expected results, got {response:?}");
            };
            prop_assert_eq!(
                Json::Array(results).render(),
                expected.clone(),
                "served bytes diverged from the in-process run (round {}, workers {}, spec `{}`, backend {}, codec {})",
                round,
                WORKER_COUNTS[workers_idx],
                FAULT_SPECS[spec_idx],
                backend.name(),
                codec.name()
            );
        }

        let mut client = Client::connect(&endpoint).expect("connect");
        let metrics = client.stats().expect("stats");
        let hits = metrics
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_u64)
            .expect("cache.hits");
        prop_assert!(hits > 0, "identical batches across connections produced no cache hits");

        client.shutdown().expect("shutdown");
        server.join();
    }

    /// PR 10: detection and sanitization batches served through the
    /// daemon are byte-identical to the in-process `am-detect` reference
    /// run — across the same backend × codec matrix, including a faulted
    /// suspect, a jammed capture, and a blocked-upstream fault plan. The
    /// second round must ride the stage cache the first round warmed
    /// (detection reports cache exactly like pipeline stages).
    #[test]
    fn detect_and_sanitize_batches_are_byte_identical(
        fault_idx in 0..FAULT_SPECS.len(),
        trace_seed in 1..10_000u64,
        payload_seed in 1..10_000u64,
        matrix_idx in 0..MATRIX.len(),
    ) {
        let (backend, codec) = MATRIX[matrix_idx];
        let detect_jobs = vec![
            DetectSpec {
                job: JobSpec {
                    faults: FAULT_SPECS[fault_idx].to_string(),
                    ..JobSpec::default()
                },
                quality: "smartphone".into(),
                jam_amplitude: 0.0,
                trace_seed,
            },
            DetectSpec {
                job: JobSpec::default(),
                quality: "lab".into(),
                jam_amplitude: 1.5,
                trace_seed: trace_seed + 1,
            },
        ];
        let sanitize_jobs = vec![SanitizeSpec {
            job: JobSpec::default(),
            payload_seed,
            payload_bits: 4,
        }];
        let expected_detect =
            expected_detections_wire(&detect_jobs).expect("in-process detect reference");
        let expected_sanitize =
            expected_sanitize_wire(&sanitize_jobs).expect("in-process sanitize reference");

        let server = Server::start(ServerConfig {
            workers: 2,
            backend,
            ..ServerConfig::default()
        })
        .expect("server boots");
        let endpoint = Endpoint::Tcp(server.addr().to_string());

        for round in 0..2 {
            let mut client =
                Client::connect_with_codec(&endpoint, None, codec).expect("connect");
            let response = client.detect(detect_jobs.clone(), None).expect("detect");
            let Response::Detections { reports, .. } = response else {
                panic!("round {round}: expected detections, got {response:?}");
            };
            prop_assert_eq!(
                Json::Array(reports).render(),
                expected_detect.clone(),
                "served detection bytes diverged (round {}, backend {}, codec {})",
                round,
                backend.name(),
                codec.name()
            );
            let response = client.sanitize(sanitize_jobs.clone(), None).expect("sanitize");
            let Response::Sanitized { reports, .. } = response else {
                panic!("round {round}: expected sanitized, got {response:?}");
            };
            prop_assert_eq!(
                Json::Array(reports).render(),
                expected_sanitize.clone(),
                "served sanitize bytes diverged (round {}, backend {}, codec {})",
                round,
                backend.name(),
                codec.name()
            );
        }

        let mut client = Client::connect(&endpoint).expect("connect");
        let metrics = client.stats().expect("stats");
        let hits = metrics
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_u64)
            .expect("cache.hits");
        prop_assert!(hits > 0, "repeated detect/sanitize batches produced no cache hits");
        client.shutdown().expect("shutdown");
        server.join();
    }

    /// PR 6: the determinism contract must survive chaos. With seeded
    /// connection drops, short/stalled reads, and worker panics active,
    /// a retrying client's accepted-and-completed batches still come
    /// back byte-identical to the in-process run — across worker counts
    /// {1, 2, 4}. Transient failures are absorbed by reconnect + retry;
    /// they must never surface as different bytes.
    #[test]
    fn chaos_injected_batches_stay_byte_identical(
        chaos_seed in 1..10_000u64,
        fault_seed in 1..10_000u64,
        seed in 1..1_000u64,
        workers_idx in 0..WORKER_COUNTS.len(),
        matrix_idx in 0..MATRIX.len(),
    ) {
        let (backend, codec) = MATRIX[matrix_idx];
        let jobs = mixed_batch(FAULT_SPECS[1], fault_seed, seed);
        let expected = expected_results_wire(&jobs).expect("in-process reference run");

        let server = Server::start(ServerConfig {
            workers: WORKER_COUNTS[workers_idx],
            backend,
            chaos: Some(ChaosPlan {
                // Aggressive transport chaos plus worker panics; spill
                // faults are irrelevant here (no spill dir).
                accept_drop_one_in: 3,
                read_chop_one_in: 2,
                read_stall_one_in: 16,
                worker_panic_one_in: 5,
                ..ChaosPlan::from_seed(chaos_seed)
            }),
            ..ServerConfig::default()
        })
        .expect("server boots");
        let endpoint = Endpoint::Tcp(server.addr().to_string());

        let policy = RetryPolicy {
            attempts: 24,
            base_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(8),
            ..RetryPolicy::default()
        };
        for round in 0..2 {
            let mut client = RetryingClient::new_with_codec(&endpoint, policy, codec);
            let response = client.run(&jobs, None).expect("retries outlast the chaos");
            let Response::Results { results, .. } = response else {
                panic!("round {round}: expected results, got {response:?}");
            };
            prop_assert_eq!(
                Json::Array(results).render(),
                expected.clone(),
                "chaos broke the determinism contract (round {}, workers {}, chaos seed {}, backend {}, codec {})",
                round,
                WORKER_COUNTS[workers_idx],
                chaos_seed,
                backend.name(),
                codec.name()
            );
        }

        // Shutdown must come from a plain client (never retried), and
        // even reaching the daemon may take a few tries under accept
        // drops.
        for attempt in 0..16 {
            let Ok(mut client) = Client::connect(&endpoint) else {
                std::thread::sleep(std::time::Duration::from_millis(2));
                continue;
            };
            match client.shutdown() {
                Ok(_) => break,
                Err(err) => {
                    prop_assert!(attempt < 15, "shutdown never got through: {}", err);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
        }
        server.join();
    }
}
