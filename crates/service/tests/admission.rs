//! Admission control and lifecycle: bounded-queue overload rejection,
//! typed deadline timeouts that leave the shared cache unpoisoned, and
//! drain-then-stop graceful shutdown.

use std::net::TcpStream;
use std::time::Duration;

use am_service::{
    expected_results_wire, read_frame, write_frame, Client, Endpoint, JobSpec, Request,
    RequestBody, Response, Server, ServerConfig, ServiceError,
};
use obfuscade::json::Json;

/// A job expensive enough (virtual tensile test per seed) to keep the
/// single worker busy while the test races more requests at the queue.
fn slow_batch(len: u64) -> Vec<JobSpec> {
    (0..len).map(|i| JobSpec { tensile: true, seed: 100 + i, ..JobSpec::default() }).collect()
}

fn send(stream: &mut TcpStream, request: &Request) {
    write_frame(stream, &request.encode()).expect("send request");
}

fn receive(stream: &mut TcpStream) -> Response {
    let frame = read_frame(stream).expect("read frame").expect("connection open");
    Response::decode(&frame).expect("decode response")
}

#[test]
fn full_queue_rejects_with_typed_overloaded() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .expect("server boots");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");

    // Occupy the single worker…
    send(&mut stream, &Request { id: 1, body: RequestBody::Run { jobs: slow_batch(8), deadline_ms: None } });
    std::thread::sleep(Duration::from_millis(40));
    // …then fill the one queue slot and overflow it.
    for id in [2, 3] {
        send(
            &mut stream,
            &Request { id, body: RequestBody::Run { jobs: vec![JobSpec::default()], deadline_ms: None } },
        );
    }

    let mut results = 0u64;
    let mut overloaded = 0u64;
    for _ in 0..3 {
        match receive(&mut stream) {
            Response::Results { id, .. } => {
                assert!(id == 1 || id == 2, "only admitted requests may produce results");
                results += 1;
            }
            Response::Error { id, error: ServiceError::Overloaded, .. } => {
                assert_ne!(id, 1, "the first request had an empty queue and must be admitted");
                overloaded += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(overloaded >= 1, "overflowing a capacity-1 queue must reject");
    assert!(results >= 1, "admitted work must still complete");

    let mut client = Client::connect(&Endpoint::Tcp(server.addr().to_string())).expect("connect");
    let metrics = client.stats().expect("stats");
    let rejected = metrics
        .get("service")
        .and_then(|s| s.get("rejected_overloaded"))
        .and_then(Json::as_u64)
        .expect("service.rejected_overloaded");
    assert_eq!(rejected, overloaded, "stats must count every overload rejection");

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn expired_deadline_times_out_typed_and_does_not_poison_the_cache() {
    let server = Server::start(ServerConfig::default()).expect("server boots");
    let endpoint = Endpoint::Tcp(server.addr().to_string());
    let mut client = Client::connect(&endpoint).expect("connect");
    let job = JobSpec::default();

    // An already-expired budget: the batch engine must refuse to start
    // the first stage and return the typed deadline error per job.
    let response = client.run(vec![job.clone()], Some(0)).expect("run");
    let Response::Results { results, .. } = response else {
        panic!("expected per-job results, got {response:?}");
    };
    let err = results[0].get("err").expect("deadline job must carry an err object");
    assert_eq!(err.get("stage").and_then(Json::as_str), Some("cad"));
    let message = err.get("message").and_then(Json::as_str).unwrap_or_default();
    assert!(message.contains("deadline"), "message must name the deadline: {message}");

    // The same job, undeadlined, on the same daemon cache must now match
    // the in-process reference byte for byte — nothing partial from the
    // expired run may have entered the shared cache.
    let expected = expected_results_wire(std::slice::from_ref(&job)).expect("reference");
    let response = client.run(vec![job], None).expect("run");
    let Response::Results { results, .. } = response else {
        panic!("expected results, got {response:?}");
    };
    assert_eq!(Json::Array(results).render(), expected);

    let metrics = client.stats().expect("stats");
    let expired = metrics
        .get("service")
        .and_then(|s| s.get("expired_deadlines"))
        .and_then(Json::as_u64)
        .expect("service.expired_deadlines");
    assert!(expired >= 1, "the expired request must be counted");

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn graceful_shutdown_completes_in_flight_jobs_then_closes_the_listener() {
    let server = Server::start(ServerConfig { workers: 2, ..ServerConfig::default() })
        .expect("server boots");
    let addr = server.addr();

    // Connection A: submit real work and leave the response unread.
    let mut work_conn = TcpStream::connect(addr).expect("connect A");
    send(
        &mut work_conn,
        &Request { id: 11, body: RequestBody::Run { jobs: slow_batch(4), deadline_ms: None } },
    );
    std::thread::sleep(Duration::from_millis(40));

    // Connection B: ask for the drain. `bye` only comes back once every
    // queued and in-flight job has completed.
    let mut control = Client::connect(&Endpoint::Tcp(addr.to_string())).expect("connect B");
    let completed = control.shutdown().expect("shutdown");
    assert!(completed >= 1, "drain must have completed the in-flight batch, got {completed}");

    // A's response was produced, not dropped.
    match receive(&mut work_conn) {
        Response::Results { id, results } => {
            assert_eq!(id, 11);
            assert_eq!(results.len(), 4);
            assert!(results.iter().all(|r| r.get("ok").is_some()));
        }
        other => panic!("in-flight work must complete through a drain, got {other:?}"),
    }

    // Further admission attempts are refused while stopping…
    send(
        &mut work_conn,
        &Request { id: 12, body: RequestBody::Run { jobs: vec![JobSpec::default()], deadline_ms: None } },
    );
    match receive(&mut work_conn) {
        Response::Error { error, .. } => assert_eq!(error, ServiceError::ShuttingDown),
        other => panic!("post-drain admission must be refused, got {other:?}"),
    }

    // …and once the acceptors exit, the port no longer answers.
    server.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "the listener must be closed after a completed shutdown"
    );
}
