//! Content-addressed stage cache (PR 3).
//!
//! The paper's security argument is a *key-space sweep*: a counterfeiter
//! pays one print per [`crate::ProcessKey`], and our experiments replay
//! that sweep in software. Keys share long stage prefixes (same part +
//! resolution ⇒ identical mesh; same mesh + slicer settings ⇒ identical
//! slice stack), so re-running [`crate::run_pipeline`] per key recomputes
//! the same immutable artifacts over and over. This module provides the
//! incremental-evaluation substrate that stops paying for a prefix twice:
//!
//! * [`StageKey`] — a 128-bit canonical content hash over a stage's
//!   *complete* input set (part recipe, [`am_mesh::Resolution`],
//!   [`am_slicer::Orientation`], [`am_slicer::SlicerConfig`],
//!   [`am_printer::PrinterProfile`], seed, active [`crate::FaultPlan`],
//!   kernel mode), produced by [`StageHasher`] — a vendored two-lane
//!   FNV-1a/splitmix-style hasher, so the repo stays free of external
//!   dependencies.
//! * [`StageCache`] — a bounded, thread-safe, content-addressed map from
//!   `StageKey` to immutable stage artifacts behind `Arc`, with
//!   least-recently-used eviction by estimated byte cost and
//!   hit/miss/eviction counters ([`CacheStats`]).
//!
//! # Key derivation and the fault-poisoning rule
//!
//! Stage keys chain: each stage's key absorbs the previous stage's key
//! plus the new inputs that stage consumes. Injected faults *poison* the
//! chain at the stage where they strike: the fault entries (and the fault
//! seed, when the stage draws from it) are hashed into that stage's key,
//! so every downstream key inherits the poison and a faulted run can
//! never alias a clean one — while a `FaultPlan` whose faults all land
//! *downstream* of a stage leaves that stage's key (and its cache entry)
//! shareable with clean runs.
//!
//! # Determinism contract
//!
//! [`am_par::Parallelism`] is deliberately **excluded** from every key:
//! PR 2's contract makes every thread budget bit-identical, so a cached
//! artifact is exactly the artifact any budget would recompute. Canonical
//! encoding is field-by-field: floats hash their IEEE-754 bits
//! (`f64::to_bits`), enums hash an explicit discriminant byte, sequences
//! are length-prefixed, and every structured input (part recipe, slicer
//! config, printer profile) is absorbed by a visitor that writes each
//! field through the typed writers — no `Debug`/`Display` rendering of
//! foreign types is ever hashed, so a future formatting change cannot
//! silently alias distinct inputs (pinned by the
//! `key_schema_is_field_sensitive` test in `crate::pipeline`).
//! Pipeline *errors* are never cached; only successfully built artifacts
//! are, and a cached artifact is returned behind `Arc` without cloning
//! the payload. Within one batch, warm failures are still replayed rather
//! than recomputed via a per-batch side map (see [`crate::batch`]).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

use am_fea::TensileResult;

use crate::detect::{DetectionReport, SanitizeReport};
use crate::pipeline::{MeshArtifact, PrintArtifact, SliceArtifact, ToolpathArtifact};
use crate::spill::SpillStore;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const LANE_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Finalizer from the splitmix64 generator: a full-avalanche bijection,
/// so the weakly-mixed FNV lanes come out uniformly distributed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic, dependency-free content hasher producing 128-bit
/// [`StageKey`]s.
///
/// Two independent FNV-1a lanes (the second salted and rotated, so the
/// lanes never collapse into one) are finalized through splitmix64 with a
/// cross-mix. Every write is framed (strings are length-prefixed, scalars
/// are fixed-width little-endian), so field boundaries cannot alias.
#[derive(Debug, Clone)]
pub struct StageHasher {
    a: u64,
    b: u64,
    len: u64,
}

impl StageHasher {
    /// Starts a hash stream under a domain-separation tag (e.g.
    /// `"obfuscade/mesh/v1"`): equal payloads under different domains
    /// yield unrelated keys.
    pub fn new(domain: &str) -> Self {
        let mut h = StageHasher { a: FNV_OFFSET, b: FNV_OFFSET ^ LANE_SALT, len: 0 };
        h.write_str(domain);
        h
    }

    /// Absorbs raw bytes (unframed — prefer the typed writers).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME).rotate_left(29);
        }
        self.len = self.len.wrapping_add(bytes.len() as u64);
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a single byte (enum discriminants, flags).
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorbs an `f64` by IEEE-754 bit pattern — exact, no rounding: two
    /// floats hash equal iff they are the same value (`-0.0` ≠ `0.0`,
    /// each NaN payload distinct).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs another [`StageKey`] — how stage keys chain.
    pub fn write_key(&mut self, key: StageKey) {
        self.write_u64(key.0[0]);
        self.write_u64(key.0[1]);
    }

    /// Finalizes the stream into a [`StageKey`].
    pub fn finish(self) -> StageKey {
        let a = splitmix(self.a ^ self.len);
        let b = splitmix(self.b ^ a);
        StageKey([a, b])
    }
}

/// A 128-bit content address for one stage artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageKey([u64; 2]);

impl StageKey {
    /// The raw 128 bits as two words.
    pub fn to_words(self) -> [u64; 2] {
        self.0
    }

    /// Rebuilds a key from [`StageKey::to_words`] words — the inverse the
    /// persistent spill tier needs to re-index records after a restart.
    pub fn from_words(words: [u64; 2]) -> Self {
        StageKey(words)
    }
}

impl fmt::Display for StageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// The mesh→slice **prefix key** of one job: the [`StageKey`] under which
/// the pipeline caches the job's slice artifact, derived purely from the
/// job description — nothing is meshed or sliced to compute it.
///
/// Two jobs share this key exactly when they share the whole mesh→slice
/// chain (same part recipe, resolution, orientation, slicer config,
/// upstream faults, and deposition kernel mode), i.e. when running them on
/// the same [`StageCache`] lets the second reuse the first's warm mesh and
/// slice entries. That makes it the canonical *affinity* hash input for a
/// router tier: sending same-prefix jobs to the same backend daemon
/// preserves the shared-prefix warming of [`crate::run_pipeline_jobs`]
/// across a fleet. The `prefix_key_is_the_slice_stage_cache_key` pin test
/// in `crate::pipeline` proves this function returns byte-for-byte the key
/// the pipeline actually computes at the slice stage, so router hashing
/// can never drift from cache contents.
///
/// Note the key absorbs the process-global [`crate::kernel_mode`], exactly
/// as the slice stage itself does; router and daemons agree as long as
/// they run the same kernel mode (both default to
/// [`crate::KernelMode::SpanPlan`]).
pub fn prefix_key_for_job(
    part: &am_cad::Part,
    plan: &crate::ProcessPlan,
    faults: &crate::FaultPlan,
) -> StageKey {
    crate::pipeline::plan_keys(part, plan, faults).slice
}

/// One immutable stage artifact, shared by reference.
///
/// Crate-internal: callers interact with the cache through
/// [`crate::run_pipeline_cached`] and the batch engine, never with raw
/// artifacts.
#[derive(Clone)]
pub(crate) enum StageArtifact {
    Mesh(Arc<MeshArtifact>),
    Slice(Arc<SliceArtifact>),
    Toolpath(Arc<ToolpathArtifact>),
    Print(Arc<PrintArtifact>),
    Tensile(Arc<TensileResult>),
    Detection(Arc<DetectionReport>),
    Sanitize(Arc<SanitizeReport>),
}

impl StageArtifact {
    pub(crate) fn into_mesh(self) -> Option<Arc<MeshArtifact>> {
        match self {
            StageArtifact::Mesh(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn into_slice(self) -> Option<Arc<SliceArtifact>> {
        match self {
            StageArtifact::Slice(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn into_toolpath(self) -> Option<Arc<ToolpathArtifact>> {
        match self {
            StageArtifact::Toolpath(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn into_print(self) -> Option<Arc<PrintArtifact>> {
        match self {
            StageArtifact::Print(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn into_tensile(self) -> Option<Arc<TensileResult>> {
        match self {
            StageArtifact::Tensile(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn into_detection(self) -> Option<Arc<DetectionReport>> {
        match self {
            StageArtifact::Detection(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn into_sanitize(self) -> Option<Arc<SanitizeReport>> {
        match self {
            StageArtifact::Sanitize(v) => Some(v),
            _ => None,
        }
    }
}

/// Counter snapshot of a [`StageCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Entries inserted (including replacements).
    pub insertions: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Estimated bytes held right now. Counts **resident** entries only —
    /// spilled entries live on disk and do not consume the budget.
    pub bytes: usize,
    /// Byte budget (resident tier only).
    pub budget: usize,
    /// Entries currently indexed in the persistent spill tier (0 when no
    /// spill store is attached).
    pub spill_entries: usize,
    /// Record-body bytes currently indexed in the spill tier. Reported
    /// separately from `bytes` — disk bytes never count against the
    /// in-memory budget.
    pub spill_bytes: u64,
    /// Lookups served by rehydrating a spilled artifact (each also counts
    /// as a `hits` — the caller got a cache hit, just a slower one).
    pub spill_hits: u64,
    /// Evicted artifacts appended to the spill tier.
    pub spill_writes: u64,
    /// Spill records dropped for failing CRC or payload validation —
    /// recomputed, never served.
    pub spill_corrupt_dropped: u64,
    /// Spill appends that failed (I/O errors and injected chaos faults).
    pub spill_write_failures: u64,
}

impl CacheStats {
    /// Hits over lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 { 0.0 } else { self.hits as f64 / lookups as f64 }
    }
}

struct Entry {
    value: StageArtifact,
    cost: usize,
    /// Tick of the last touch; doubles as this entry's index in
    /// `Inner::recency`.
    last_used: u64,
}

struct Inner {
    map: HashMap<StageKey, Entry>,
    /// Recency index: `last_used` tick → key, one entry per live map
    /// entry. Ticks are unique (every `get`/`insert` takes a fresh one),
    /// so the first entry is always the least recently used and eviction
    /// is `O(log n)` instead of a full map scan.
    recency: BTreeMap<u64, StageKey>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

/// A bounded, thread-safe, content-addressed cache of immutable stage
/// artifacts.
///
/// Artifacts live behind `Arc`, so a hit is a pointer clone; eviction is
/// least-recently-used by estimated byte cost. The cache only ever
/// affects wall-clock time: a hit returns exactly what a recompute would
/// produce (see the module docs for the determinism contract).
pub struct StageCache {
    inner: Mutex<Inner>,
    budget: usize,
    /// Optional persistent tier: evictions spill here, resident misses
    /// rehydrate from here (see [`crate::SpillStore`]).
    spill: Option<SpillStore>,
}

impl StageCache {
    /// Default byte budget: 256 MiB — comfortably holds a full key-space
    /// sweep of the paper's parts while bounding worst-case growth.
    pub const DEFAULT_BUDGET: usize = 256 << 20;

    /// A cache bounded at `budget_bytes` of estimated artifact cost.
    pub fn with_budget(budget_bytes: usize) -> Self {
        StageCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                recency: BTreeMap::new(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                insertions: 0,
            }),
            budget: budget_bytes,
            spill: None,
        }
    }

    /// A cache bounded at `budget_bytes` with a persistent spill tier
    /// underneath: evicted artifacts are appended to `spill`, resident
    /// misses consult it before reporting a miss, and entries recovered
    /// from a previous process are rehydrated the same way. The byte
    /// budget still bounds only the resident tier.
    pub fn with_budget_and_spill(budget_bytes: usize, spill: SpillStore) -> Self {
        let mut cache = StageCache::with_budget(budget_bytes);
        cache.spill = Some(spill);
        cache
    }

    /// The attached spill store, when one was configured.
    pub fn spill(&self) -> Option<&SpillStore> {
        self.spill.as_ref()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means another thread panicked mid-insert;
        // the map itself is always structurally valid.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn get(&self, key: StageKey) -> Option<StageArtifact> {
        {
            let mut guard = self.lock();
            let inner = &mut *guard;
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                inner.recency.remove(&entry.last_used);
                inner.recency.insert(tick, key);
                entry.last_used = tick;
                let value = entry.value.clone();
                inner.hits += 1;
                return Some(value);
            }
        }
        // Resident miss: consult the spill tier outside the resident lock
        // (rehydration does disk I/O; other lookups must not stall on it).
        if let Some(spill) = &self.spill {
            if let Some((value, cost)) = spill.get(key) {
                // A rehydration is a hit — the caller gets exactly the
                // bytes a recompute would produce, just from disk. Promote
                // the entry back into the resident tier at its original
                // cost so the next lookup is fast again.
                self.lock().hits += 1;
                self.insert(key, value.clone(), cost);
                return Some(value);
            }
        }
        self.lock().misses += 1;
        None
    }

    pub(crate) fn insert(&self, key: StageKey, value: StageArtifact, cost: usize) {
        if cost > self.budget {
            // An artifact larger than the whole budget would evict
            // everything and then be evicted itself; don't admit it.
            return;
        }
        let mut evicted: Vec<(StageKey, Entry)> = Vec::new();
        {
            let mut guard = self.lock();
            let inner = &mut *guard;
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(old) = inner.map.insert(key, Entry { value, cost, last_used: tick }) {
                inner.bytes -= old.cost;
                inner.recency.remove(&old.last_used);
            }
            inner.recency.insert(tick, key);
            inner.bytes += cost;
            inner.insertions += 1;
            // LRU eviction by byte cost: pop least-recently-used entries
            // off the recency index until the budget holds — `O(log n)`
            // per eviction. The entry just inserted carries the newest
            // tick, so it is only evicted if it alone exceeds budget —
            // excluded above.
            while inner.bytes > self.budget {
                match inner.recency.pop_first() {
                    Some((_, k)) => {
                        if let Some(e) = inner.map.remove(&k) {
                            inner.bytes -= e.cost;
                            inner.evictions += 1;
                            if self.spill.is_some() {
                                evicted.push((k, e));
                            }
                        }
                    }
                    None => break,
                }
            }
        }
        // Spill evicted artifacts after releasing the resident lock —
        // serialization and the disk write must not block other lookups.
        // `SpillStore::put` is idempotent per key, so an entry that
        // ping-pongs between tiers is written once.
        if let Some(spill) = &self.spill {
            for (k, e) in evicted {
                spill.put(k, &e.value, e.cost);
            }
        }
    }

    /// Looks up a cached [`DetectionReport`].
    ///
    /// Public (unlike the raw `get`/`insert`) because the detection
    /// subsystem lives in the `am-detect` crate: its results are stage
    /// artifacts — cached, spilled, and rehydrated exactly like pipeline
    /// stages — but the code that computes them sits outside this crate.
    pub fn get_detection(&self, key: StageKey) -> Option<Arc<DetectionReport>> {
        self.get(key).and_then(StageArtifact::into_detection)
    }

    /// Caches a [`DetectionReport`] under its content-addressed key.
    pub fn insert_detection(&self, key: StageKey, report: Arc<DetectionReport>) {
        let cost = report.cost_bytes();
        self.insert(key, StageArtifact::Detection(report), cost);
    }

    /// Looks up a cached [`SanitizeReport`] (see [`StageCache::get_detection`]).
    pub fn get_sanitize(&self, key: StageKey) -> Option<Arc<SanitizeReport>> {
        self.get(key).and_then(StageArtifact::into_sanitize)
    }

    /// Caches a [`SanitizeReport`] under its content-addressed key.
    pub fn insert_sanitize(&self, key: StageKey, report: Arc<SanitizeReport>) {
        let cost = report.cost_bytes();
        self.insert(key, StageArtifact::Sanitize(report), cost);
    }

    /// Counter snapshot (the resident tier plus the spill tier, when one
    /// is attached).
    pub fn stats(&self) -> CacheStats {
        let resident = {
            let inner = self.lock();
            CacheStats {
                hits: inner.hits,
                misses: inner.misses,
                evictions: inner.evictions,
                insertions: inner.insertions,
                entries: inner.map.len(),
                bytes: inner.bytes,
                budget: self.budget,
                ..CacheStats::default()
            }
        };
        match &self.spill {
            None => resident,
            Some(spill) => {
                let s = spill.stats();
                CacheStats {
                    spill_entries: s.entries,
                    spill_bytes: s.bytes,
                    spill_hits: s.hits,
                    spill_writes: s.writes,
                    spill_corrupt_dropped: s.corrupt_dropped,
                    spill_write_failures: s.write_failures,
                    ..resident
                }
            }
        }
    }

    /// Drops every entry — resident and spilled — and resets the counters
    /// (the budget stays).
    pub fn clear(&self) {
        {
            let mut inner = self.lock();
            inner.map.clear();
            inner.recency.clear();
            inner.bytes = 0;
            inner.tick = 0;
            inner.hits = 0;
            inner.misses = 0;
            inner.evictions = 0;
            inner.insertions = 0;
        }
        if let Some(spill) = &self.spill {
            spill.clear();
        }
    }
}

impl Default for StageCache {
    fn default() -> Self {
        StageCache::with_budget(Self::DEFAULT_BUDGET)
    }
}

impl fmt::Debug for StageCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageCache").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(label: &str) -> StageKey {
        let mut h = StageHasher::new("test/v1");
        h.write_str(label);
        h.finish()
    }

    fn tensile_artifact(uts: f64) -> StageArtifact {
        StageArtifact::Tensile(Arc::new(TensileResult {
            curve: Vec::new(),
            young_modulus_gpa: 1.0,
            uts_mpa: uts,
            failure_strain: 0.0,
            toughness_kj_m3: 0.0,
            fracture_origin: None,
            fracture_path: Vec::new(),
            ruptured: false,
        }))
    }

    #[test]
    fn hasher_is_deterministic_and_injective_on_framing() {
        assert_eq!(key_of("a"), key_of("a"));
        assert_ne!(key_of("a"), key_of("b"));
        // Framing: ("ab", "c") must not alias ("a", "bc").
        let mut h1 = StageHasher::new("d");
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = StageHasher::new("d");
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
        // Domain separation.
        let mut h3 = StageHasher::new("other");
        h3.write_str("a");
        assert_ne!(key_of("a"), h3.finish());
        // Float bits: -0.0 and 0.0 are distinct inputs.
        let mut hp = StageHasher::new("f");
        hp.write_f64(0.0);
        let mut hn = StageHasher::new("f");
        hn.write_f64(-0.0);
        assert_ne!(hp.finish(), hn.finish());
    }

    #[test]
    fn cache_counts_hits_misses_and_serves_inserted_values() {
        let cache = StageCache::with_budget(1 << 20);
        let k = key_of("entry");
        assert!(cache.get(k).is_none());
        cache.insert(k, tensile_artifact(1.0), 100);
        let got = cache.get(k).and_then(StageArtifact::into_tensile).expect("hit");
        assert!((got.uts_mpa - 1.0).abs() < 1e-12);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.insertions, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_byte_budget_and_recency() {
        let cache = StageCache::with_budget(250);
        let (ka, kb, kc) = (key_of("a"), key_of("b"), key_of("c"));
        cache.insert(ka, tensile_artifact(1.0), 100);
        cache.insert(kb, tensile_artifact(2.0), 100);
        // Touch `a` so `b` becomes the least recently used.
        assert!(cache.get(ka).is_some());
        cache.insert(kc, tensile_artifact(3.0), 100);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= 250);
        assert!(cache.get(kb).is_none(), "LRU entry should have been evicted");
        assert!(cache.get(ka).is_some());
        assert!(cache.get(kc).is_some());
    }

    #[test]
    fn sustained_eviction_pressure_keeps_the_most_recent_entries() {
        let cache = StageCache::with_budget(300);
        for i in 0..100 {
            cache.insert(key_of(&format!("e{i}")), tensile_artifact(f64::from(i)), 100);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 97);
        assert!(stats.bytes <= 300);
        for i in 97..100 {
            assert!(
                cache.get(key_of(&format!("e{i}"))).is_some(),
                "entry e{i} should have survived"
            );
        }
    }

    #[test]
    fn oversized_artifacts_are_not_admitted() {
        let cache = StageCache::with_budget(100);
        cache.insert(key_of("big"), tensile_artifact(1.0), 1000);
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.get(key_of("big")).is_none());
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let cache = StageCache::default();
        cache.insert(key_of("x"), tensile_artifact(1.0), 10);
        let _ = cache.get(key_of("x"));
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats, CacheStats { budget: StageCache::DEFAULT_BUDGET, ..CacheStats::default() });
    }

    fn spill_scratch(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("obfuscade-cache-spill-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn uts_of(artifact: StageArtifact) -> f64 {
        artifact.into_tensile().expect("tensile artifact").uts_mpa
    }

    #[test]
    fn evictions_spill_to_disk_and_misses_rehydrate() {
        let dir = spill_scratch("rehydrate");
        let store = SpillStore::open(&dir).expect("open spill");
        let cache = StageCache::with_budget_and_spill(250, store);
        let (ka, kb, kc) = (key_of("a"), key_of("b"), key_of("c"));
        cache.insert(ka, tensile_artifact(1.0), 100);
        cache.insert(kb, tensile_artifact(2.0), 100);
        cache.insert(kc, tensile_artifact(3.0), 100); // evicts `a` → spill
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.spill_writes, 1);
        assert!(stats.bytes <= 250, "resident bytes alone respect the budget");

        // The evicted entry is a hit again — rehydrated, byte-identical.
        let got = cache.get(ka).expect("rehydrated from spill");
        assert!((uts_of(got) - 1.0).abs() < 1e-12);
        let stats = cache.stats();
        assert_eq!(stats.spill_hits, 1);
        assert_eq!(stats.misses, 0, "a spill hit is not a miss");
        assert!(stats.hits >= 1);
        // Rehydration promoted `a` back to resident, evicting another
        // entry — the budget still only counts resident bytes.
        assert!(stats.bytes <= 250);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_survives_a_cache_restart() {
        let dir = spill_scratch("restart");
        let key = key_of("persisted");
        {
            let store = SpillStore::open(&dir).expect("open spill");
            let cache = StageCache::with_budget_and_spill(150, store);
            cache.insert(key, tensile_artifact(7.0), 100);
            cache.insert(key_of("displacer"), tensile_artifact(8.0), 100);
            assert_eq!(cache.stats().spill_writes, 1);
        }
        // A brand-new cache over the same directory: the entry is found
        // without ever being inserted in this "process".
        let store = SpillStore::open(&dir).expect("reopen spill");
        let cache = StageCache::with_budget_and_spill(150, store);
        let got = cache.get(key).expect("warm start from spill");
        assert!((uts_of(got) - 7.0).abs() < 1e-12);
        let stats = cache.stats();
        assert_eq!((stats.spill_hits, stats.hits, stats.misses), (1, 1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_empties_the_spill_tier_too() {
        let dir = spill_scratch("clear");
        let store = SpillStore::open(&dir).expect("open spill");
        let cache = StageCache::with_budget_and_spill(150, store);
        let key = key_of("cleared");
        cache.insert(key, tensile_artifact(1.0), 100);
        cache.insert(key_of("pusher"), tensile_artifact(2.0), 100);
        cache.clear();
        assert!(cache.get(key).is_none());
        let stats = cache.stats();
        assert_eq!((stats.spill_entries, stats.spill_bytes), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
