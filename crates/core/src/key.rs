//! The ObfusCADe process key: the unique combination of processing settings
//! under which a protected model manufactures correctly.

use std::fmt;

use am_cad::{BodyKind, MaterialRemoval};
use am_mesh::Resolution;
use am_slicer::Orientation;

/// How embedded features must be handled during CAD processing — the
/// "certain conditions of processing the CAD files" part of the key
/// (§3.2 of the paper): re-embedding a **solid** body after **material
/// removal** is the only recipe that prints the feature as model material.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CadRecipe {
    /// Whether material removal is performed before re-embedding.
    pub removal: MaterialRemoval,
    /// The body kind re-embedded into the cavity.
    pub body: BodyKind,
}

impl CadRecipe {
    /// All four §3.2 recipes.
    pub const ALL: [CadRecipe; 4] = [
        CadRecipe { removal: MaterialRemoval::Without, body: BodyKind::Solid },
        CadRecipe { removal: MaterialRemoval::Without, body: BodyKind::Surface },
        CadRecipe { removal: MaterialRemoval::With, body: BodyKind::Solid },
        CadRecipe { removal: MaterialRemoval::With, body: BodyKind::Surface },
    ];
}

impl fmt::Display for CadRecipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} sphere {}", self.body, self.removal)
    }
}

/// The full process key: one point in the space of processing settings a
/// manufacturer must hit to obtain a high-quality part.
///
/// This is the AM analogue of a logic-locking key (the paper's comparison):
/// the design owner knows the single correct setting; a counterfeiter with
/// the stolen file must search the key space, paying one physical print per
/// trial.
///
/// # Examples
///
/// ```
/// use obfuscade::ProcessKey;
///
/// let keys = ProcessKey::key_space();
/// assert_eq!(keys.len(), 24); // 3 resolutions × 2 orientations × 4 recipes
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessKey {
    /// STL export resolution (Fig. 5).
    pub resolution: Resolution,
    /// Build orientation (Fig. 6).
    pub orientation: Orientation,
    /// Embedded-feature CAD recipe (§3.2).
    pub recipe: CadRecipe,
}

impl ProcessKey {
    /// Enumerates the full key space the paper's features span.
    pub fn key_space() -> Vec<ProcessKey> {
        let mut keys = Vec::new();
        for resolution in Resolution::ALL {
            for orientation in Orientation::ALL {
                for recipe in CadRecipe::ALL {
                    keys.push(ProcessKey { resolution, orientation, recipe });
                }
            }
        }
        keys
    }

    /// Number of key coordinates on which two keys differ (a Hamming-like
    /// distance over the three fields).
    pub fn distance(&self, other: &ProcessKey) -> u32 {
        u32::from(self.resolution != other.resolution)
            + u32::from(self.orientation != other.orientation)
            + u32::from(self.recipe != other.recipe)
    }
}

impl fmt::Display for ProcessKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} STL, {} orientation, {}]", self.resolution, self.orientation, self.recipe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_space_has_no_duplicates() {
        let keys = ProcessKey::key_space();
        let set: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn distance_is_metric_like() {
        let keys = ProcessKey::key_space();
        let a = keys[0];
        assert_eq!(a.distance(&a), 0);
        for b in &keys[1..] {
            assert!(a.distance(b) >= 1);
            assert_eq!(a.distance(b), b.distance(&a));
            assert!(a.distance(b) <= 3);
        }
    }

    #[test]
    fn display_is_informative() {
        let k = ProcessKey::key_space()[0];
        let s = k.to_string();
        assert!(s.contains("STL"));
        assert!(s.contains("orientation"));
    }
}
