//! **ObfusCADe** — obfuscating additive-manufacturing CAD models against
//! counterfeiting.
//!
//! A from-scratch reproduction of *"ObfusCADe: Obfuscating Additive
//! Manufacturing CAD Models Against Counterfeiting"* (Gupta, Chen,
//! Tsoutsos, Maniatakos — DAC 2017). ObfusCADe protects 3-D design IP by
//! planting **sabotage features** in the CAD model: the part manufactures
//! correctly only under a unique combination of processing settings (the
//! [`ProcessKey`] — STL resolution, build orientation, CAD recipe); under
//! every other combination the printed artifact carries defects that
//! degrade its quality and service life, and whose presence doubles as a
//! counterfeit detector.
//!
//! # The two protection schemes of the paper
//!
//! * [`SplineSplitScheme`] (§3.1): a massless spline split across a tensile
//!   bar. Stolen STLs always carry the cold-joint seam — visible in x-z
//!   prints at any resolution, surface-disrupting in Coarse x-y prints, and
//!   halving failure strain and toughness everywhere (Table 2, Fig. 9).
//! * [`EmbeddedSphereScheme`] (§3.2): a sphere embedded in a solid prism.
//!   Only the keyed CAD recipe (material removal + solid re-embed) prints
//!   solid; every other recipe hides a support-filled void (Table 3).
//!
//! # The process chain
//!
//! [`run_pipeline`] drives the paper's full Fig. 1 chain over the substrate
//! crates: `am-cad` (feature-based CAD) → `am-mesh` (tessellation/STL) →
//! `am-slicer` (slicing, tool paths, G-code) → `am-printer` (FDM/PolyJet
//! deposition) → `am-fea` (virtual tensile testing), returning every
//! intermediate observable the paper reports.
//!
//! # Examples
//!
//! ```no_run
//! use am_mesh::Resolution;
//! use am_slicer::Orientation;
//! use obfuscade::{
//!     assess_quality, run_pipeline, ProcessPlan, QualityThresholds, SplineSplitScheme,
//! };
//!
//! let scheme = SplineSplitScheme::default();
//!
//! // A counterfeiter prints the stolen file standing on edge…
//! let stolen = scheme.protected_part()?;
//! let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xz).with_tensile(true);
//! let counterfeit = run_pipeline(&stolen, &plan)?;
//!
//! // …while the owner manufactures the true design.
//! let genuine = run_pipeline(&scheme.genuine_part()?, &plan)?;
//!
//! let report = assess_quality(&counterfeit, &genuine, &QualityThresholds::default());
//! println!("counterfeit verdict: {}", report.verdict);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod batch;
mod cache;
pub mod detect;
mod fault;
pub mod json;
mod key;
pub mod metrics;
mod multikey;
mod perf;
mod pipeline;
mod quality;
pub mod risk;
mod scheme;
mod spill;

pub use adversary::{
    genuine_production, repair_attack, search_sphere_scheme, search_spline_scheme, Attempt,
    RepairOutcome, SearchOutcome,
};
pub use batch::{
    run_pipeline_batch, run_pipeline_batch_with, run_pipeline_jobs, run_pipeline_jobs_with,
    sweep_key_space, BatchJob,
};
pub use cache::{prefix_key_for_job, CacheStats, StageCache, StageHasher, StageKey};
pub use detect::{DetectionReport, SanitizeReport};
pub use fault::{
    FaultParseError, FaultPlan, FirmwareFault, SlicerFault, StlFault, ToolpathFault,
};
pub use key::{CadRecipe, ProcessKey};
pub use perf::{kernel_mode, set_kernel_mode, KernelMode};
pub use multikey::MultiSphereScheme;
pub use am_fea::{solver_counters, FeaSolver, SolverCounters, SolverPoolStats};
pub use pipeline::{
    fea_solver_pool_stats, plan_toolpath, print_toolpath, run_pipeline, run_pipeline_cached,
    run_pipeline_cached_deadline, run_pipeline_with_faults, Deadline, Diagnostic, PipelineError,
    PipelineOutput, ProcessPlan, Stage, StageOutcome, StageStatus, ToolPathStats, ToolpathPlan,
};
pub use quality::{assess_quality, QualityReport, QualityThresholds, Verdict};
pub use scheme::{Authenticity, EmbeddedSphereScheme, SplineSplitScheme};
pub use spill::{SpillStats, SpillStore};
