//! Shared-prefix batch evaluation of pipeline runs.
//!
//! The paper's experiments are *sweeps*: the same part (or small part
//! family) pushed through many [`ProcessPlan`]s that differ only in their
//! tail — orientation, seed, slicer settings. Run independently, every
//! plan repays the full CAD→STL→slice→print chain even though long stage
//! prefixes are identical. The batch engine instead:
//!
//! 1. derives every plan's chained stage keys up front (pure hashing —
//!    no stage executes);
//! 2. *warms* each unique prefix exactly once, phase by phase (all unique
//!    mesh keys, then all unique slice keys, then all unique tool-path
//!    keys), fanning the representatives out on the `am-par` pool — within
//!    a phase the representatives are key-disjoint, so no work duplicates;
//! 3. runs every plan through [`run_pipeline_cached`], where the shared
//!    prefix is now a cache hit and only the divergent suffix computes.
//!
//! Results are **bit-identical** to independent [`run_pipeline`] calls
//! (pinned by `tests/batch_determinism.rs`): the cache stores exactly what
//! each stage computes, and the determinism contract (DESIGN.md §8) makes
//! the thread budget unobservable in the output.
//!
//! Tensile replicates additionally share the process-wide FEA solver pool
//! (DESIGN.md §10): each replicate checks out a pooled
//! [`SolverScratch`](am_fea::SolverScratch) — CSR incidence, packed bond
//! parameters, Newton–PCG work vectors — instead of reallocating it, so a
//! sweep's per-replicate setup cost amortises across the batch. Pooling is
//! allocation reuse only; every buffer is rebuilt or overwritten per run,
//! so it is unobservable in the results.
//!
//! [`run_pipeline`]: crate::run_pipeline

use std::collections::{HashMap, HashSet};

use am_cad::{CadError, Part};
use am_par::{Parallelism, Pool};
use am_printer::PrintError;

use crate::cache::{StageCache, StageKey};
use crate::fault::FaultPlan;
use crate::key::ProcessKey;
use crate::pipeline::{
    plan_keys, run_pipeline_cached_deadline, warm_prefix, Deadline, PipelineError, PipelineOutput,
    PlanKeys, PrefixDepth, ProcessPlan, Stage,
};

/// One unit of batch work: a part, the full process plan to run it under,
/// and the faults to inject.
#[derive(Debug, Clone)]
pub struct BatchJob<'a> {
    /// The part to manufacture.
    pub part: &'a Part,
    /// The complete process plan.
    pub plan: ProcessPlan,
    /// Faults to inject ([`FaultPlan::none`] for a clean run).
    pub faults: FaultPlan,
}

/// Runs a batch of jobs against a shared [`StageCache`], evaluating each
/// unique stage prefix exactly once.
///
/// Results come back in input order, one per job, each exactly what the
/// corresponding independent [`run_pipeline_with_faults`] call returns.
/// Inside the batch every plan's own thread budget is overridden to
/// serial — parallelism comes from fanning *across* jobs instead, and the
/// determinism contract makes the switch unobservable in the output.
///
/// Errors never enter the [`StageCache`] (it outlives the batch and a
/// cached error could mask a later code change), but they are not
/// recomputed either: a prefix that fails during warming — possibly
/// *after* substantial work, e.g. a tessellation allocation cap — records
/// its [`PipelineError`] in a per-batch side map keyed by the failed
/// prefix's stage key, and every job sharing that prefix replays the
/// recorded error instead of re-deriving it. Determinism makes the replay
/// exact: the clone renders identically to what an independent run would
/// produce.
///
/// [`run_pipeline_with_faults`]: crate::run_pipeline_with_faults
pub fn run_pipeline_jobs(
    jobs: &[BatchJob<'_>],
    cache: &StageCache,
    parallelism: Parallelism,
) -> Vec<Result<PipelineOutput, PipelineError>> {
    run_pipeline_jobs_with(jobs, cache, parallelism, Deadline::none())
}

/// [`run_pipeline_jobs`] under a cooperative [`Deadline`] shared by the
/// whole batch — the service daemon's per-request cancellation hook.
///
/// The deadline is budget-checked between stages, during warming and
/// during the final pass alike. Jobs the deadline catches return
/// [`PipelineError::DeadlineExceeded`]; jobs whose stages all started in
/// time complete normally. A deadline that never expires makes this
/// byte-identical to [`run_pipeline_jobs`].
///
/// Deadline errors are wall-clock accidents, not functions of a stage
/// key, so they are **never** recorded in the per-batch failure map and
/// never poison the shared cache: re-running the same jobs with a fresh
/// deadline recomputes (or cache-hits) them cleanly.
pub fn run_pipeline_jobs_with(
    jobs: &[BatchJob<'_>],
    cache: &StageCache,
    parallelism: Parallelism,
    deadline: Deadline,
) -> Vec<Result<PipelineOutput, PipelineError>> {
    let jobs: Vec<BatchJob<'_>> = jobs
        .iter()
        .map(|job| BatchJob {
            part: job.part,
            plan: job.plan.clone().with_parallelism(Parallelism::serial()),
            faults: job.faults.clone(),
        })
        .collect();
    let keys: Vec<PlanKeys> = jobs
        .iter()
        .map(|job| plan_keys(job.part, &job.plan, &job.faults))
        .collect();

    let pool = Pool::new(parallelism);
    type KeySelector = fn(&PlanKeys) -> StageKey;
    let phases: [(PrefixDepth, KeySelector); 3] = [
        (PrefixDepth::Mesh, |k| k.mesh),
        (PrefixDepth::Slice, |k| k.slice),
        (PrefixDepth::Toolpath, |k| k.toolpath),
    ];
    // Deterministic warm failures, keyed by the stage key of the prefix
    // that produced them. Populated between phases (never concurrently),
    // read by the final pass.
    let mut failed: HashMap<StageKey, PipelineError> = HashMap::new();
    for (depth, select) in phases {
        // A representative whose shallower prefix already failed would
        // only replay that same failure — skip it.
        let reps: Vec<usize> = prefix_representatives(&keys, select)
            .into_iter()
            .filter(|&i| !shallower_prefix_failed(&failed, &keys[i], depth))
            .collect();
        let outcomes = pool.par_map(&reps, |&i| {
            let job = &jobs[i];
            warm_prefix(job.part, &job.plan, &job.faults, cache, depth, deadline).err()
        });
        for (&i, err) in reps.iter().zip(outcomes) {
            if let Some(e) = err {
                // Deadline expiry is a property of the wall clock, not of
                // the stage key — recording it would replay a spurious
                // timeout to later batches' jobs sharing the prefix.
                if matches!(e, PipelineError::DeadlineExceeded { .. }) {
                    continue;
                }
                // Record the error only if the stage it names is a pure
                // function of this phase's key. Plan-validation errors
                // (bad slicer config during mesh warming, bad printer
                // profile during mesh/slice warming) are NOT: two plans
                // can share a mesh key while only one carries the invalid
                // config, so attributing the error to the shared key
                // would poison valid jobs. Those fall through and are
                // re-derived by the final pass's own validation, which is
                // cheap.
                if stage_determined_by(depth, e.stage()) {
                    failed.insert(select(&keys[i]), e);
                }
            }
        }
    }

    let indexed: Vec<usize> = (0..jobs.len()).collect();
    pool.par_map(&indexed, |&i| {
        let job = &jobs[i];
        let k = &keys[i];
        // Mirror `run_pipeline_inner`'s error ordering exactly: plan
        // validation precedes every stage, so it must also precede the
        // recorded-failure replay.
        job.plan.slicer.validate().map_err(PipelineError::InvalidConfig)?;
        job.plan
            .printer
            .validate()
            .map_err(|e| PipelineError::Print(PrintError::Profile(e)))?;
        for key in [k.mesh, k.slice, k.toolpath] {
            if let Some(e) = failed.get(&key) {
                return Err(e.clone());
            }
        }
        run_pipeline_cached_deadline(job.part, &job.plan, &job.faults, cache, deadline)
    })
}

/// Whether an error at `stage`, observed while warming to `depth`, is a
/// pure function of that phase's stage key (and may therefore be recorded
/// against it and replayed to every job sharing the key).
///
/// The mesh key pins the part recipe, resolution and STL/repair faults —
/// it determines CAD, STL and repair failures, but says nothing about the
/// slicer config. The slice key adds orientation, the full slicer config
/// and slicer faults, so it additionally determines slice failures
/// (including post-fault config re-validation). The tool-path key hashes
/// the entire remaining input set — every stage a warm can fail in is a
/// function of it.
fn stage_determined_by(depth: PrefixDepth, stage: Stage) -> bool {
    match depth {
        PrefixDepth::Mesh => matches!(stage, Stage::Cad | Stage::Stl | Stage::Repair),
        PrefixDepth::Slice => {
            matches!(stage, Stage::Cad | Stage::Stl | Stage::Repair | Stage::Slice)
        }
        PrefixDepth::Toolpath => true,
    }
}

/// Whether one of this plan's prefixes shallower than `depth` already has
/// a recorded failure (in which case warming to `depth` is pointless —
/// it would stop at the same failure).
fn shallower_prefix_failed(
    failed: &HashMap<StageKey, PipelineError>,
    keys: &PlanKeys,
    depth: PrefixDepth,
) -> bool {
    match depth {
        PrefixDepth::Mesh => false,
        PrefixDepth::Slice => failed.contains_key(&keys.mesh),
        PrefixDepth::Toolpath => {
            failed.contains_key(&keys.mesh) || failed.contains_key(&keys.slice)
        }
    }
}

/// First job index per unique stage key — the set of jobs that must run a
/// warming pass for this phase. Within a phase the representatives carry
/// pairwise-distinct keys, so parallel warming never duplicates a stage.
fn prefix_representatives(keys: &[PlanKeys], select: fn(&PlanKeys) -> StageKey) -> Vec<usize> {
    let mut seen: HashSet<StageKey> = HashSet::with_capacity(keys.len());
    let mut reps = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        if seen.insert(select(k)) {
            reps.push(i);
        }
    }
    reps
}

/// Runs one part through many plans, sharing every common stage prefix.
///
/// Convenience front end over [`run_pipeline_jobs`]: fresh default-budget
/// cache, no faults, [`Parallelism::auto`]. Results are in plan order and
/// bit-identical to independent [`run_pipeline`] calls.
///
/// [`run_pipeline`]: crate::run_pipeline
///
/// # Examples
///
/// ```no_run
/// use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
/// use am_mesh::Resolution;
/// use am_slicer::Orientation;
/// use obfuscade::{run_pipeline_batch, ProcessPlan};
///
/// let part = tensile_bar_with_spline(&TensileBarDims::default())?;
/// let plans: Vec<ProcessPlan> = [Orientation::Xy, Orientation::Xz]
///     .into_iter()
///     .map(|o| ProcessPlan::fdm(Resolution::Fine, o))
///     .collect();
/// // Both orientations share the Fine mesh: it tessellates once.
/// for result in run_pipeline_batch(&part, &plans) {
///     let output = result?;
///     println!("{}: {} layers", output.part_name, output.slice_report.layers);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_pipeline_batch(
    part: &Part,
    plans: &[ProcessPlan],
) -> Vec<Result<PipelineOutput, PipelineError>> {
    let cache = StageCache::default();
    run_pipeline_batch_with(part, plans, &FaultPlan::none(), &cache, Parallelism::auto())
}

/// [`run_pipeline_batch`] with explicit faults, cache and thread budget.
///
/// The caller-supplied cache persists across calls, so successive batches
/// (or an experiment suite) keep sharing prefixes; read
/// [`StageCache::stats`] to see the traffic.
pub fn run_pipeline_batch_with(
    part: &Part,
    plans: &[ProcessPlan],
    faults: &FaultPlan,
    cache: &StageCache,
    parallelism: Parallelism,
) -> Vec<Result<PipelineOutput, PipelineError>> {
    let jobs: Vec<BatchJob<'_>> = plans
        .iter()
        .map(|plan| BatchJob { part, plan: plan.clone(), faults: faults.clone() })
        .collect();
    run_pipeline_jobs(&jobs, cache, parallelism)
}

/// Sweeps a set of [`ProcessKey`]s — the counterfeiter's search, evaluated
/// in bulk.
///
/// `part_for_recipe` builds the part for each key's CAD recipe (keys whose
/// part fails to build report [`PipelineError::Cad`] in their slot);
/// `base` supplies everything the key does not pin (slicer, printer, seed,
/// tensile flag). Keys sharing a recipe and resolution share their mesh,
/// keys sharing an orientation on top share slices and tool paths — each
/// unique prefix computes once against `cache`.
///
/// Results are in key order and bit-identical to running each key through
/// [`run_pipeline`] independently (pinned by `tests/batch_determinism.rs`).
///
/// [`run_pipeline`]: crate::run_pipeline
pub fn sweep_key_space<F>(
    mut part_for_recipe: F,
    base: &ProcessPlan,
    keys: &[ProcessKey],
    cache: &StageCache,
    parallelism: Parallelism,
) -> Vec<(ProcessKey, Result<PipelineOutput, PipelineError>)>
where
    F: FnMut(crate::key::CadRecipe) -> Result<Part, CadError>,
{
    // Build each key's part once per *distinct recipe*, reusing the built
    // part across the resolutions/orientations that share it (identical
    // parts then share mesh keys naturally).
    let mut built: Vec<(crate::key::CadRecipe, Result<Part, CadError>)> = Vec::new();
    for key in keys {
        if !built.iter().any(|(recipe, _)| *recipe == key.recipe) {
            built.push((key.recipe, part_for_recipe(key.recipe)));
        }
    }

    let mut jobs: Vec<BatchJob<'_>> = Vec::new();
    for key in keys {
        if let Some((_, Ok(part))) = built.iter().find(|(recipe, _)| *recipe == key.recipe) {
            jobs.push(BatchJob {
                part,
                plan: ProcessPlan {
                    resolution: key.resolution,
                    orientation: key.orientation,
                    ..base.clone()
                },
                faults: FaultPlan::none(),
            });
        }
    }
    let mut results = run_pipeline_jobs(&jobs, cache, parallelism).into_iter();
    drop(jobs);

    let mut out: Vec<(ProcessKey, Result<PipelineOutput, PipelineError>)> =
        Vec::with_capacity(keys.len());
    for key in keys {
        let slot = match built.iter().position(|(recipe, _)| *recipe == key.recipe) {
            Some(i) => i,
            None => continue, // unreachable: every recipe was built above
        };
        match &built[slot].1 {
            Ok(_) => {
                if let Some(result) = results.next() {
                    out.push((*key, result));
                }
            }
            Err(e) => out.push((*key, Err(PipelineError::Cad(e.clone())))),
        }
    }
    out
}
