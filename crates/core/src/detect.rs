//! Typed results of the defensive workload suite (`am-detect`).
//!
//! The detection subsystem lives in the `am-detect` crate (it needs the
//! side-channel simulator, which this crate must not depend on), but its
//! *results* are first-class stage artifacts: they are cached under
//! content-addressed [`crate::StageKey`]s, spill to disk through the same
//! CRC-checked codec as pipeline stages, and travel the service wire.
//! The report types therefore live here, next to the cache and the spill
//! codec that store them.
//!
//! Both reports are plain data with a canonical JSON rendering (stable
//! field order — the service and CLI render responses from it, and the
//! byte-identity checks in the wire suites compare those renderings) and
//! a closed-world parser that rejects unknown fields, like every other
//! wire-facing type in the workspace.

use crate::json::Json;

/// What one side-channel detection job concluded.
///
/// Produced by `am_detect::detect_counterfeit`: the suspect job's planned
/// tool path is synthesized into acoustic and power traces and compared
/// against the golden master (the same job with an empty fault plan).
/// Scores are normalized distances; a score above its calibrated
/// threshold flags the job on that channel.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReport {
    /// The suspect job's fault spec (empty = the null hypothesis).
    pub fault_spec: String,
    /// Capture-quality preset the traces were recorded at
    /// (`lab` / `smartphone` / `room`).
    pub quality: String,
    /// Relative amplitude of the defender's noise emitter applied to the
    /// *acoustic* capture (0 = jamming off).
    pub jam_amplitude: f64,
    /// Seed of the trace-synthesis noise draw.
    pub trace_seed: u64,
    /// When the suspect job could not even reach tool-path planning (the
    /// pipeline's typed process guards rejected it), the stage that
    /// stopped it. Such jobs are trivially caught: every detector flags
    /// them with a saturated score.
    pub blocked_by: Option<String>,
    /// Audio-signature distance from the golden master trace.
    pub audio_score: f64,
    /// Power-envelope distance from the golden master trace.
    pub power_score: f64,
    /// Fused score (max of the per-channel scores, each normalized by
    /// its own null calibration).
    pub fused_score: f64,
    /// Calibrated audio decision threshold (null-distribution quantile).
    pub audio_threshold: f64,
    /// Calibrated power decision threshold.
    pub power_threshold: f64,
    /// Calibrated fused decision threshold.
    pub fused_threshold: f64,
    /// Did the audio detector flag the job?
    pub audio_flagged: bool,
    /// Did the power detector flag the job?
    pub power_flagged: bool,
    /// Did the fused detector flag the job?
    pub fused_flagged: bool,
    /// Frames in the suspect's captured trace (0 when blocked upstream).
    pub suspect_frames: u64,
    /// Frames in the golden master trace.
    pub golden_frames: u64,
}

impl DetectionReport {
    /// Approximate heap cost for cache accounting.
    pub fn cost_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.fault_spec.len()
            + self.quality.len()
            + self.blocked_by.as_ref().map_or(0, String::len)
    }

    /// Canonical JSON rendering (stable field order).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("fault_spec".into(), Json::String(self.fault_spec.clone())),
            ("quality".into(), Json::String(self.quality.clone())),
            ("jam_amplitude".into(), Json::Number(self.jam_amplitude)),
            ("trace_seed".into(), Json::u64(self.trace_seed)),
            (
                "blocked_by".into(),
                match &self.blocked_by {
                    Some(stage) => Json::String(stage.clone()),
                    None => Json::Null,
                },
            ),
            ("audio_score".into(), Json::Number(self.audio_score)),
            ("power_score".into(), Json::Number(self.power_score)),
            ("fused_score".into(), Json::Number(self.fused_score)),
            ("audio_threshold".into(), Json::Number(self.audio_threshold)),
            ("power_threshold".into(), Json::Number(self.power_threshold)),
            ("fused_threshold".into(), Json::Number(self.fused_threshold)),
            ("audio_flagged".into(), Json::Bool(self.audio_flagged)),
            ("power_flagged".into(), Json::Bool(self.power_flagged)),
            ("fused_flagged".into(), Json::Bool(self.fused_flagged)),
            ("suspect_frames".into(), Json::u64(self.suspect_frames)),
            ("golden_frames".into(), Json::u64(self.golden_frames)),
        ])
    }

    /// Parses the canonical JSON form. Closed world: unknown fields are
    /// an error, as are missing ones.
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn from_json(json: &Json) -> Result<DetectionReport, String> {
        let fields = match json {
            Json::Object(fields) => fields,
            _ => return Err("a detection report must be a JSON object".to_string()),
        };
        let mut report = DetectionReport::placeholder();
        let mut seen = 0u32;
        for (name, value) in fields {
            let bit = match name.as_str() {
                "fault_spec" => {
                    report.fault_spec = parse_string(value, "fault_spec")?;
                    1 << 0
                }
                "quality" => {
                    report.quality = parse_string(value, "quality")?;
                    1 << 1
                }
                "jam_amplitude" => {
                    report.jam_amplitude = parse_number(value, "jam_amplitude")?;
                    1 << 2
                }
                "trace_seed" => {
                    report.trace_seed = parse_u64(value, "trace_seed")?;
                    1 << 3
                }
                "blocked_by" => {
                    report.blocked_by = match value {
                        Json::Null => None,
                        other => Some(parse_string(other, "blocked_by")?),
                    };
                    1 << 4
                }
                "audio_score" => {
                    report.audio_score = parse_number(value, "audio_score")?;
                    1 << 5
                }
                "power_score" => {
                    report.power_score = parse_number(value, "power_score")?;
                    1 << 6
                }
                "fused_score" => {
                    report.fused_score = parse_number(value, "fused_score")?;
                    1 << 7
                }
                "audio_threshold" => {
                    report.audio_threshold = parse_number(value, "audio_threshold")?;
                    1 << 8
                }
                "power_threshold" => {
                    report.power_threshold = parse_number(value, "power_threshold")?;
                    1 << 9
                }
                "fused_threshold" => {
                    report.fused_threshold = parse_number(value, "fused_threshold")?;
                    1 << 10
                }
                "audio_flagged" => {
                    report.audio_flagged = parse_bool(value, "audio_flagged")?;
                    1 << 11
                }
                "power_flagged" => {
                    report.power_flagged = parse_bool(value, "power_flagged")?;
                    1 << 12
                }
                "fused_flagged" => {
                    report.fused_flagged = parse_bool(value, "fused_flagged")?;
                    1 << 13
                }
                "suspect_frames" => {
                    report.suspect_frames = parse_u64(value, "suspect_frames")?;
                    1 << 14
                }
                "golden_frames" => {
                    report.golden_frames = parse_u64(value, "golden_frames")?;
                    1 << 15
                }
                other => return Err(format!("unknown detection-report field `{other}`")),
            };
            if seen & bit != 0 {
                return Err(format!("duplicate detection-report field `{name}`"));
            }
            seen |= bit;
        }
        if seen != (1 << 16) - 1 {
            return Err("incomplete detection report".to_string());
        }
        Ok(report)
    }

    fn placeholder() -> DetectionReport {
        DetectionReport {
            fault_spec: String::new(),
            quality: String::new(),
            jam_amplitude: 0.0,
            trace_seed: 0,
            blocked_by: None,
            audio_score: 0.0,
            power_score: 0.0,
            fused_score: 0.0,
            audio_threshold: 0.0,
            power_threshold: 0.0,
            fused_threshold: 0.0,
            audio_flagged: false,
            power_flagged: false,
            fused_flagged: false,
            suspect_frames: 0,
            golden_frames: 0,
        }
    }
}

/// What one stego-channel scan/sanitize job concluded.
///
/// Produced by `am_detect::sanitize_toolpath`: the job's planned tool
/// path is scanned for low-order coordinate payload channels, the
/// channel is stripped by snapping coordinates to a quantization grid,
/// and the *printed* artifact of the sanitized path is proven identical
/// to the original by stage-key identity over the voxel-grid digest.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizeReport {
    /// Seed of the payload embedded before sanitization (0 = none: the
    /// job scanned its own clean tool path).
    pub payload_seed: u64,
    /// Width of the scanned/stripped low-order channel, in bits per
    /// coordinate.
    pub payload_bits: u64,
    /// Roads in the tool path.
    pub roads: u64,
    /// Fraction of coordinates carrying sub-quantum energy before
    /// sanitization (the scanner's detection statistic).
    pub suspicious_before: f64,
    /// The same fraction after sanitization (0 for a clean strip).
    pub suspicious_after: f64,
    /// The quantization grid the sanitizer settled on (mm).
    pub quantum_mm: f64,
    /// Worst coordinate displacement the strip introduced (mm).
    pub residual_mm: f64,
    /// Did the sanitized path print to the byte-identical voxel grid?
    /// (Stage-key identity over [`am_printer::PrintedPart::grid_digest`].)
    pub fingerprint_preserved: bool,
    /// Print fingerprint stage key of the original path (hex).
    pub original_fingerprint: String,
    /// Print fingerprint stage key of the sanitized path (hex).
    pub sanitized_fingerprint: String,
}

impl SanitizeReport {
    /// Approximate heap cost for cache accounting.
    pub fn cost_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.original_fingerprint.len()
            + self.sanitized_fingerprint.len()
    }

    /// Canonical JSON rendering (stable field order).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("payload_seed".into(), Json::u64(self.payload_seed)),
            ("payload_bits".into(), Json::u64(self.payload_bits)),
            ("roads".into(), Json::u64(self.roads)),
            ("suspicious_before".into(), Json::Number(self.suspicious_before)),
            ("suspicious_after".into(), Json::Number(self.suspicious_after)),
            ("quantum_mm".into(), Json::Number(self.quantum_mm)),
            ("residual_mm".into(), Json::Number(self.residual_mm)),
            ("fingerprint_preserved".into(), Json::Bool(self.fingerprint_preserved)),
            ("original_fingerprint".into(), Json::String(self.original_fingerprint.clone())),
            ("sanitized_fingerprint".into(), Json::String(self.sanitized_fingerprint.clone())),
        ])
    }

    /// Parses the canonical JSON form (closed world).
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn from_json(json: &Json) -> Result<SanitizeReport, String> {
        let fields = match json {
            Json::Object(fields) => fields,
            _ => return Err("a sanitize report must be a JSON object".to_string()),
        };
        let mut report = SanitizeReport {
            payload_seed: 0,
            payload_bits: 0,
            roads: 0,
            suspicious_before: 0.0,
            suspicious_after: 0.0,
            quantum_mm: 0.0,
            residual_mm: 0.0,
            fingerprint_preserved: false,
            original_fingerprint: String::new(),
            sanitized_fingerprint: String::new(),
        };
        let mut seen = 0u32;
        for (name, value) in fields {
            let bit = match name.as_str() {
                "payload_seed" => {
                    report.payload_seed = parse_u64(value, "payload_seed")?;
                    1 << 0
                }
                "payload_bits" => {
                    report.payload_bits = parse_u64(value, "payload_bits")?;
                    1 << 1
                }
                "roads" => {
                    report.roads = parse_u64(value, "roads")?;
                    1 << 2
                }
                "suspicious_before" => {
                    report.suspicious_before = parse_number(value, "suspicious_before")?;
                    1 << 3
                }
                "suspicious_after" => {
                    report.suspicious_after = parse_number(value, "suspicious_after")?;
                    1 << 4
                }
                "quantum_mm" => {
                    report.quantum_mm = parse_number(value, "quantum_mm")?;
                    1 << 5
                }
                "residual_mm" => {
                    report.residual_mm = parse_number(value, "residual_mm")?;
                    1 << 6
                }
                "fingerprint_preserved" => {
                    report.fingerprint_preserved = parse_bool(value, "fingerprint_preserved")?;
                    1 << 7
                }
                "original_fingerprint" => {
                    report.original_fingerprint = parse_string(value, "original_fingerprint")?;
                    1 << 8
                }
                "sanitized_fingerprint" => {
                    report.sanitized_fingerprint =
                        parse_string(value, "sanitized_fingerprint")?;
                    1 << 9
                }
                other => return Err(format!("unknown sanitize-report field `{other}`")),
            };
            if seen & bit != 0 {
                return Err(format!("duplicate sanitize-report field `{name}`"));
            }
            seen |= bit;
        }
        if seen != (1 << 10) - 1 {
            return Err("incomplete sanitize report".to_string());
        }
        Ok(report)
    }
}

fn parse_string(value: &Json, field: &str) -> Result<String, String> {
    match value {
        Json::String(s) => Ok(s.clone()),
        _ => Err(format!("`{field}` must be a string")),
    }
}

fn parse_number(value: &Json, field: &str) -> Result<f64, String> {
    match value {
        Json::Number(n) => Ok(*n),
        _ => Err(format!("`{field}` must be a number")),
    }
}

fn parse_bool(value: &Json, field: &str) -> Result<bool, String> {
    match value {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("`{field}` must be a boolean")),
    }
}

fn parse_u64(value: &Json, field: &str) -> Result<u64, String> {
    match value {
        Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
            Ok(*n as u64)
        }
        _ => Err(format!("`{field}` must be a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_detection() -> DetectionReport {
        DetectionReport {
            fault_spec: "toolpath.drop=0.2".to_string(),
            quality: "smartphone".to_string(),
            jam_amplitude: 0.0,
            trace_seed: 7,
            blocked_by: None,
            audio_score: 3.5,
            power_score: 1.25,
            fused_score: 2.75,
            audio_threshold: 1.0,
            power_threshold: 1.0,
            fused_threshold: 1.0,
            audio_flagged: true,
            power_flagged: true,
            fused_flagged: true,
            suspect_frames: 812,
            golden_frames: 1024,
        }
    }

    pub(crate) fn sample_sanitize() -> SanitizeReport {
        SanitizeReport {
            payload_seed: 3,
            payload_bits: 2,
            roads: 512,
            suspicious_before: 0.97,
            suspicious_after: 0.0,
            quantum_mm: 1.0 / 1024.0,
            residual_mm: 0.0005,
            fingerprint_preserved: true,
            original_fingerprint: "0123456789abcdef0123456789abcdef".to_string(),
            sanitized_fingerprint: "0123456789abcdef0123456789abcdef".to_string(),
        }
    }

    #[test]
    fn detection_report_round_trips_through_json() {
        for report in [
            sample_detection(),
            DetectionReport {
                blocked_by: Some("slice".to_string()),
                suspect_frames: 0,
                ..sample_detection()
            },
        ] {
            let json = report.to_json();
            let back = DetectionReport::from_json(&json).expect("round trip");
            assert_eq!(back, report);
            // The rendering is canonical: render → parse → render is a
            // fixed point.
            let rendered = json.render();
            let reparsed = crate::json::parse_json(&rendered).expect("self-rendered JSON");
            assert_eq!(reparsed.render(), rendered);
        }
    }

    #[test]
    fn sanitize_report_round_trips_through_json() {
        let report = sample_sanitize();
        let back = SanitizeReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(back, report);
    }

    #[test]
    fn parsers_are_closed_world() {
        let mut with_extra = match sample_detection().to_json() {
            Json::Object(fields) => fields,
            _ => unreachable!(),
        };
        with_extra.push(("surprise".into(), Json::Null));
        let err = DetectionReport::from_json(&Json::Object(with_extra)).unwrap_err();
        assert!(err.contains("unknown"), "{err}");

        let mut missing = match sample_sanitize().to_json() {
            Json::Object(fields) => fields,
            _ => unreachable!(),
        };
        missing.pop();
        let err = SanitizeReport::from_json(&Json::Object(missing)).unwrap_err();
        assert!(err.contains("incomplete"), "{err}");

        let mut duplicated = match sample_sanitize().to_json() {
            Json::Object(fields) => fields,
            _ => unreachable!(),
        };
        duplicated.push(("roads".into(), Json::u64(1)));
        let err = SanitizeReport::from_json(&Json::Object(duplicated)).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }
}
