//! The AM cybersecurity risk taxonomy (Fig. 2) and the per-stage risk /
//! mitigation catalogue (Table 1 of the paper), as queryable data.

use std::fmt;

/// A stage of the additive-manufacturing supply chain (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmStage {
    /// CAD modeling and finite-element optimization.
    CadModelAndFea,
    /// The exported STL file.
    StlFile,
    /// Slicing and G-code generation.
    SlicingAndGcode,
    /// The 3D printer and its firmware.
    Printer,
    /// Post-print testing and inspection.
    Testing,
}

impl AmStage {
    /// All stages in process order.
    pub const ALL: [AmStage; 5] = [
        AmStage::CadModelAndFea,
        AmStage::StlFile,
        AmStage::SlicingAndGcode,
        AmStage::Printer,
        AmStage::Testing,
    ];
}

impl fmt::Display for AmStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmStage::CadModelAndFea => write!(f, "CAD model & FEA"),
            AmStage::StlFile => write!(f, "STL file"),
            AmStage::SlicingAndGcode => write!(f, "Slicing & G-code"),
            AmStage::Printer => write!(f, "3D Printer"),
            AmStage::Testing => write!(f, "Testing"),
        }
    }
}

/// System abstraction level an attack operates on (Fig. 2's first axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackLevel {
    /// Material composition and physical artifacts.
    Physical,
    /// Actuators, motors, sensors.
    Electromechanical,
    /// Firmware, files, software, cloud services.
    Logical,
}

impl fmt::Display for AttackLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackLevel::Physical => write!(f, "physical"),
            AttackLevel::Electromechanical => write!(f, "electromechanical"),
            AttackLevel::Logical => write!(f, "logical"),
        }
    }
}

/// Attacker objective (Fig. 2's second axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackGoal {
    /// Stealing designs, counterfeiting, overproduction.
    IpTheft,
    /// Quality degradation, defects, premature failure.
    Sabotage,
    /// Leaking design data through side channels.
    InformationLeakage,
    /// Damaging the machine itself.
    EquipmentDamage,
}

impl fmt::Display for AttackGoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackGoal::IpTheft => write!(f, "IP theft / counterfeiting"),
            AttackGoal::Sabotage => write!(f, "sabotage"),
            AttackGoal::InformationLeakage => write!(f, "information leakage"),
            AttackGoal::EquipmentDamage => write!(f, "equipment damage"),
        }
    }
}

/// One attack class in the Fig. 2 taxonomy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttackClass {
    /// Short name.
    pub name: &'static str,
    /// Abstraction level.
    pub level: AttackLevel,
    /// Primary goal.
    pub goal: AttackGoal,
    /// Supply-chain stage it targets.
    pub stage: AmStage,
}

/// One risk entry of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Risk {
    /// Supply-chain stage.
    pub stage: AmStage,
    /// Description of the risk.
    pub description: &'static str,
    /// Applicable mitigation strategies.
    pub mitigations: &'static [&'static str],
    /// `true` if ObfusCADe itself addresses this risk.
    pub addressed_by_obfuscade: bool,
}

/// The full Table 1: cybersecurity risks during different stages of the AM
/// supply chain, with mitigation strategies.
///
/// # Examples
///
/// ```
/// use obfuscade::risk::{risk_table, AmStage};
///
/// let table = risk_table();
/// assert!(table.iter().any(|r| r.addressed_by_obfuscade));
/// let cad_risks: Vec<_> = table.iter().filter(|r| r.stage == AmStage::CadModelAndFea).collect();
/// assert!(!cad_risks.is_empty());
/// ```
pub fn risk_table() -> Vec<Risk> {
    vec![
        Risk {
            stage: AmStage::CadModelAndFea,
            description: "IP theft, ransomware, software Trojans, malware",
            mitigations: &[
                "data-loss-prevention software, code reviews, periodic backups",
                "CAD-level design obfuscation for IP protection (ObfusCADe)",
            ],
            addressed_by_obfuscade: true,
        },
        Risk {
            stage: AmStage::CadModelAndFea,
            description: "CAD libraries & FEA databases corruption/modification",
            mitigations: &["IP file access/integrity controls, entitlement reviews"],
            addressed_by_obfuscade: false,
        },
        Risk {
            stage: AmStage::CadModelAndFea,
            description: "malicious insider corrupts CAD model, adds vulnerabilities",
            mitigations: &["code reviews, entitlement reviews, periodic backups"],
            addressed_by_obfuscade: false,
        },
        Risk {
            stage: AmStage::StlFile,
            description: "removal/addition of tetrahedrons (voids/protrusions)",
            mitigations: &["review 3D rendering, file contents, manifold geometry errors"],
            addressed_by_obfuscade: false,
        },
        Risk {
            stage: AmStage::StlFile,
            description: "dimension & ratio scaling, shape changes, end point changes",
            mitigations: &["verification of digital signatures, file sizes and hashes"],
            addressed_by_obfuscade: false,
        },
        Risk {
            stage: AmStage::StlFile,
            description: "file theft/loss/corruption, ransomware",
            mitigations: &[
                "strict access control to files, regular backups",
                "stolen files print defectively without the process key (ObfusCADe)",
            ],
            addressed_by_obfuscade: true,
        },
        Risk {
            stage: AmStage::SlicingAndGcode,
            description: "orientation changes, addition of porosity/contaminants",
            mitigations: &["simulation of generated G-code, code review"],
            addressed_by_obfuscade: false,
        },
        Risk {
            stage: AmStage::SlicingAndGcode,
            description: "damage to printer actuators using malicious coordinates",
            mitigations: &["actuator limit switch preventing physical damage"],
            addressed_by_obfuscade: false,
        },
        Risk {
            stage: AmStage::SlicingAndGcode,
            description: "IP theft/reverse-engineering, reconstruction of CAD model",
            mitigations: &[
                "periodic review of printer parameters, strict access controls",
                "reconstructed models inherit the planted defects (ObfusCADe)",
            ],
            addressed_by_obfuscade: true,
        },
        Risk {
            stage: AmStage::Printer,
            description: "malicious firmware updates, unauthorized remote access",
            mitigations: &["strict access control, network firewalls, secure updates"],
            addressed_by_obfuscade: false,
        },
        Risk {
            stage: AmStage::Printer,
            description: "activation of firmware Trojans, malicious operator",
            mitigations: &["inspection of printed object, measurement of weight/density"],
            addressed_by_obfuscade: false,
        },
        Risk {
            stage: AmStage::Printer,
            description: "acoustic/thermal side channels, IP theft, information leakage",
            mitigations: &[
                "side-channel shielding, noise emission, physical access controls",
                "tensile strength test, X-ray/ultrasound/CT scan reconstruction",
            ],
            addressed_by_obfuscade: true,
        },
        Risk {
            stage: AmStage::Printer,
            description: "file parser/firmware zero-day, corrupted calibration files",
            mitigations: &["secure updates, inspection of printed object"],
            addressed_by_obfuscade: false,
        },
        Risk {
            stage: AmStage::Testing,
            description: "detection granularity versus test time trade-off",
            mitigations: &["high-resolution CT/ultrasonic tests on random samples"],
            addressed_by_obfuscade: false,
        },
        Risk {
            stage: AmStage::Testing,
            description: "low CT/ultrasonic equipment resolution",
            mitigations: &["use higher resolution equipment, test over different angles"],
            addressed_by_obfuscade: false,
        },
    ]
}

/// The Fig. 2 attack taxonomy as a flat class list.
pub fn attack_taxonomy() -> Vec<AttackClass> {
    vec![
        AttackClass {
            name: "design file exfiltration",
            level: AttackLevel::Logical,
            goal: AttackGoal::IpTheft,
            stage: AmStage::CadModelAndFea,
        },
        AttackClass {
            name: "counterfeiting from stolen STL",
            level: AttackLevel::Logical,
            goal: AttackGoal::IpTheft,
            stage: AmStage::StlFile,
        },
        AttackClass {
            name: "void/protrusion injection",
            level: AttackLevel::Logical,
            goal: AttackGoal::Sabotage,
            stage: AmStage::StlFile,
        },
        AttackClass {
            name: "tool-path tampering",
            level: AttackLevel::Logical,
            goal: AttackGoal::Sabotage,
            stage: AmStage::SlicingAndGcode,
        },
        AttackClass {
            name: "malicious actuator coordinates",
            level: AttackLevel::Electromechanical,
            goal: AttackGoal::EquipmentDamage,
            stage: AmStage::SlicingAndGcode,
        },
        AttackClass {
            name: "firmware Trojan",
            level: AttackLevel::Logical,
            goal: AttackGoal::Sabotage,
            stage: AmStage::Printer,
        },
        AttackClass {
            name: "acoustic side-channel reconstruction",
            level: AttackLevel::Physical,
            goal: AttackGoal::InformationLeakage,
            stage: AmStage::Printer,
        },
        AttackClass {
            name: "magnetic side-channel reconstruction",
            level: AttackLevel::Physical,
            goal: AttackGoal::InformationLeakage,
            stage: AmStage::Printer,
        },
        AttackClass {
            name: "feedstock contamination",
            level: AttackLevel::Physical,
            goal: AttackGoal::Sabotage,
            stage: AmStage::Printer,
        },
        AttackClass {
            name: "inspection evasion via sub-resolution defects",
            level: AttackLevel::Physical,
            goal: AttackGoal::Sabotage,
            stage: AmStage::Testing,
        },
    ]
}

/// Renders Table 1 as aligned plain text (one row per risk).
pub fn render_risk_table() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<18} | {:<62} | mitigation\n", "AM stage", "risk"));
    out.push_str(&format!("{:-<18}-+-{:-<62}-+-{:-<50}\n", "", "", ""));
    for risk in risk_table() {
        let mut first = true;
        for m in risk.mitigations {
            let stage = if first { risk.stage.to_string() } else { String::new() };
            let desc = if first { risk.description } else { "" };
            out.push_str(&format!("{stage:<18} | {desc:<62} | {m}\n"));
            first = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stage_has_risks() {
        let table = risk_table();
        for stage in AmStage::ALL {
            assert!(
                table.iter().any(|r| r.stage == stage),
                "no risks recorded for stage {stage}"
            );
        }
    }

    #[test]
    fn every_risk_has_mitigations() {
        for risk in risk_table() {
            assert!(!risk.mitigations.is_empty(), "{}", risk.description);
        }
    }

    #[test]
    fn obfuscade_addresses_ip_theft_rows() {
        let table = risk_table();
        let addressed: Vec<_> = table.iter().filter(|r| r.addressed_by_obfuscade).collect();
        assert!(addressed.len() >= 3);
        // The headline row: CAD-level obfuscation at the design stage.
        assert!(addressed.iter().any(|r| r.stage == AmStage::CadModelAndFea));
    }

    #[test]
    fn taxonomy_covers_all_levels_and_goals() {
        let taxonomy = attack_taxonomy();
        for level in [AttackLevel::Physical, AttackLevel::Electromechanical, AttackLevel::Logical] {
            assert!(taxonomy.iter().any(|a| a.level == level), "{level}");
        }
        for goal in [
            AttackGoal::IpTheft,
            AttackGoal::Sabotage,
            AttackGoal::InformationLeakage,
            AttackGoal::EquipmentDamage,
        ] {
            assert!(taxonomy.iter().any(|a| a.goal == goal), "{goal}");
        }
    }

    #[test]
    fn rendered_table_mentions_obfuscade() {
        let text = render_risk_table();
        assert!(text.contains("ObfusCADe"));
        assert!(text.contains("CAD model & FEA"));
        assert!(text.lines().count() > 15);
    }
}
