//! Quality assessment of manufactured parts.

use std::fmt;

use crate::PipelineOutput;

/// Verdict on a manufactured part's quality relative to a reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Meets visual and mechanical expectations.
    Good,
    /// Visually acceptable but mechanically compromised (premature-failure
    /// risk — the ObfusCADe design goal for counterfeits).
    Degraded,
    /// Visibly defective (discontinuities, voids, wrong structure).
    Defective,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Good => write!(f, "good"),
            Verdict::Degraded => write!(f, "degraded"),
            Verdict::Defective => write!(f, "defective"),
        }
    }
}

/// Thresholds for the quality verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityThresholds {
    /// Minimum toughness relative to the reference part.
    pub min_toughness_ratio: f64,
    /// Minimum failure strain relative to the reference part.
    pub min_strain_ratio: f64,
    /// Maximum internal void volume (mm³) tolerated before the part is
    /// visibly/structurally defective.
    pub max_internal_void_mm3: f64,
    /// Maximum seam surface visibility (mm of tessellation mismatch) before
    /// the surface counts as disrupted (Fig. 8 observable).
    pub max_surface_mismatch_mm: f64,
    /// Minimum part weight relative to the reference (the Table 1
    /// "measurement of weight/density" check — catches sparse-infill
    /// corner-cutting and large hidden voids alike).
    pub min_weight_ratio: f64,
}

impl Default for QualityThresholds {
    fn default() -> Self {
        QualityThresholds {
            min_toughness_ratio: 0.7,
            min_strain_ratio: 0.7,
            max_internal_void_mm3: 5.0,
            max_surface_mismatch_mm: 0.05,
            min_weight_ratio: 0.92,
        }
    }
}

/// A quality report: the verdict plus the reasons behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Overall verdict.
    pub verdict: Verdict,
    /// Human-readable findings that led to the verdict.
    pub findings: Vec<String>,
    /// Toughness ratio vs. the reference (if both were tensile-tested).
    pub toughness_ratio: Option<f64>,
    /// Failure-strain ratio vs. the reference.
    pub strain_ratio: Option<f64>,
}

/// Assesses a manufactured part against a reference run (typically the
/// intact design manufactured under the same plan).
///
/// Visible defects (slicing discontinuity, internal voids, surface seam
/// disruption) make the part [`Verdict::Defective`]; hidden mechanical
/// degradation (toughness/strain below the thresholds) makes it
/// [`Verdict::Degraded`]; otherwise it is [`Verdict::Good`].
///
/// # Examples
///
/// ```no_run
/// use obfuscade::{assess_quality, QualityThresholds, PipelineOutput};
/// # fn f(counterfeit: &PipelineOutput, reference: &PipelineOutput) {
/// let report = assess_quality(counterfeit, reference, &QualityThresholds::default());
/// println!("{}: {:?}", report.verdict, report.findings);
/// # }
/// ```
pub fn assess_quality(
    output: &PipelineOutput,
    reference: &PipelineOutput,
    thresholds: &QualityThresholds,
) -> QualityReport {
    let mut findings = Vec::new();
    let mut verdict = Verdict::Good;

    // Visible structure defects.
    if output.slice_report.has_discontinuity() {
        findings.push("sliced model shows a discontinuity around a planted feature".to_string());
        verdict = Verdict::Defective;
    }
    let excess_void = output.scan.internal_void_volume
        - reference.scan.internal_void_volume.max(0.0);
    if excess_void > thresholds.max_internal_void_mm3 {
        findings.push(format!(
            "internal voids exceed reference by {excess_void:.1} mm³ (CT-detectable)"
        ));
        verdict = Verdict::Defective;
    }
    let ref_weight = reference.printed.weight_g();
    if ref_weight > 0.0 {
        let ratio = output.printed.weight_g() / ref_weight;
        if ratio < thresholds.min_weight_ratio {
            findings.push(format!(
                "part weighs {:.0}% of the reference (density check)",
                ratio * 100.0
            ));
            verdict = Verdict::Defective;
        }
    }
    if let Some(seam) = &output.seam {
        if seam.chain_mismatch > thresholds.max_surface_mismatch_mm {
            findings.push(format!(
                "surface seam disruption: {:.3} mm tessellation mismatch",
                seam.chain_mismatch
            ));
            if verdict == Verdict::Good {
                verdict = Verdict::Defective;
            }
        }
    }

    // Hidden mechanical degradation.
    let (mut toughness_ratio, mut strain_ratio) = (None, None);
    if let (Some(t), Some(r)) = (&output.tensile, &reference.tensile) {
        if r.toughness_kj_m3 > 0.0 {
            let ratio = t.toughness_kj_m3 / r.toughness_kj_m3;
            toughness_ratio = Some(ratio);
            if ratio < thresholds.min_toughness_ratio {
                findings.push(format!(
                    "toughness is {:.0}% of the reference part",
                    ratio * 100.0
                ));
                if verdict == Verdict::Good {
                    verdict = Verdict::Degraded;
                }
            }
        }
        if r.failure_strain > 0.0 {
            let ratio = t.failure_strain / r.failure_strain;
            strain_ratio = Some(ratio);
            if ratio < thresholds.min_strain_ratio {
                findings.push(format!(
                    "failure strain is {:.0}% of the reference part",
                    ratio * 100.0
                ));
                if verdict == Verdict::Good {
                    verdict = Verdict::Degraded;
                }
            }
        }
    }

    if findings.is_empty() {
        findings.push("no defects found".to_string());
    }
    QualityReport { verdict, findings, toughness_ratio, strain_ratio }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_are_sane() {
        let t = QualityThresholds::default();
        assert!(t.min_toughness_ratio > 0.0 && t.min_toughness_ratio < 1.0);
        assert!(t.max_internal_void_mm3 > 0.0);
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Good.to_string(), "good");
        assert_eq!(Verdict::Degraded.to_string(), "degraded");
        assert_eq!(Verdict::Defective.to_string(), "defective");
    }
}
