//! Process-wide kernel selection for benchmarking.
//!
//! The slicer, printer, and FEA crates each keep their original
//! implementation alongside the optimized kernel introduced with the
//! parallel execution engine. The benchmark harness needs to drive the
//! *whole pipeline* — not isolated kernels — under both implementations to
//! measure honest end-to-end speedups, so the selection lives in a process
//! global rather than threading a flag through every experiment signature.
//!
//! Production code never touches this: the default is [`KernelMode::Optimized`]
//! and only `obfuscade-cli bench` flips it.
//!
//! The tensile *solver* (Newton–PCG vs. damped relaxation) is deliberately
//! **not** part of this global: it changes results to within solver
//! tolerance, so it rides on [`ProcessPlan::with_fea_solver`](crate::ProcessPlan::with_fea_solver) and is hashed
//! into the tensile stage key instead (see `pipeline::tensile_key`). Only
//! the bit-identical reference/optimized implementation split lives here.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation family the pipeline's hot stages use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// The original kernels: per-layer full-mesh slicing scan, road-at-a-time
    /// deposition, AoS scatter-accumulated relaxation. Benchmark baseline.
    Reference,
    /// The interval-sweep slicer, layer-partitioned stamping, and SoA
    /// gather-based FEA kernel (optionally parallel via
    /// [`ProcessPlan::parallelism`](crate::ProcessPlan)).
    Optimized,
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(1);

/// Selects the pipeline's kernel implementation process-wide.
pub fn set_kernel_mode(mode: KernelMode) {
    let v = match mode {
        KernelMode::Reference => 0,
        KernelMode::Optimized => 1,
    };
    KERNEL_MODE.store(v, Ordering::Relaxed);
}

/// The currently selected kernel implementation.
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        0 => KernelMode::Reference,
        _ => KernelMode::Optimized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_optimized_and_round_trips() {
        assert_eq!(kernel_mode(), KernelMode::Optimized);
        set_kernel_mode(KernelMode::Reference);
        assert_eq!(kernel_mode(), KernelMode::Reference);
        set_kernel_mode(KernelMode::Optimized);
        assert_eq!(kernel_mode(), KernelMode::Optimized);
    }
}
