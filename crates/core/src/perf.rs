//! Process-wide kernel selection for benchmarking.
//!
//! The slicer, printer, and FEA crates each keep their original
//! implementation alongside the optimized kernel introduced with the
//! parallel execution engine. The benchmark harness needs to drive the
//! *whole pipeline* — not isolated kernels — under both implementations to
//! measure honest end-to-end speedups, so the selection lives in a process
//! global rather than threading a flag through every experiment signature.
//!
//! Production code never touches this: the default is [`KernelMode::SpanPlan`]
//! and only `obfuscade-cli bench` flips it.
//!
//! The tensile *solver* (Newton–PCG vs. damped relaxation) is deliberately
//! **not** part of this global: it changes results to within solver
//! tolerance, so it rides on [`ProcessPlan::with_fea_solver`](crate::ProcessPlan::with_fea_solver) and is hashed
//! into the tensile stage key instead (see `pipeline::tensile_key`). Only
//! the bit-identical reference/optimized implementation split lives here.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation family the pipeline's hot stages use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// The original kernels: per-layer full-mesh slicing scan, road-at-a-time
    /// deposition, AoS scatter-accumulated relaxation. Benchmark baseline.
    Reference,
    /// The interval-sweep slicer, layer-partitioned stamping, and SoA
    /// gather-based FEA kernel (optionally parallel via
    /// [`ProcessPlan::parallelism`](crate::ProcessPlan)).
    Optimized,
    /// [`Optimized`](KernelMode::Optimized) everywhere except deposition,
    /// which runs the two-phase scanline span-plan stamper (DESIGN.md §13):
    /// plan per-row `[x_start, x_end)` spans, then execute them as whole
    /// slice fills. Bit-identical to the other two modes; the default.
    SpanPlan,
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(2);

/// Selects the pipeline's kernel implementation process-wide.
pub fn set_kernel_mode(mode: KernelMode) {
    let v = match mode {
        KernelMode::Reference => 0,
        KernelMode::Optimized => 1,
        KernelMode::SpanPlan => 2,
    };
    KERNEL_MODE.store(v, Ordering::Relaxed);
}

/// The currently selected kernel implementation.
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        0 => KernelMode::Reference,
        1 => KernelMode::Optimized,
        _ => KernelMode::SpanPlan,
    }
}

/// Serializes tests that flip the process-global mode — without it, two
/// `#[test]`s mutating [`KERNEL_MODE`] in the same binary could interleave.
#[cfg(test)]
pub(crate) static KERNEL_MODE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_span_plan_and_round_trips() {
        let _guard = KERNEL_MODE_TEST_LOCK.lock().unwrap();
        assert_eq!(kernel_mode(), KernelMode::SpanPlan);
        for mode in [KernelMode::Reference, KernelMode::Optimized, KernelMode::SpanPlan] {
            set_kernel_mode(mode);
            assert_eq!(kernel_mode(), mode);
        }
        set_kernel_mode(KernelMode::SpanPlan);
    }
}
