//! Protection schemes: how ObfusCADe plants features in a design and how
//! genuine parts are told from counterfeits afterwards.

use am_cad::parts::{
    intact_prism, prism_with_sphere, tensile_bar, tensile_bar_with_spline, PrismDims,
    TensileBarDims,
};
use am_cad::{BodyKind, CadError, MaterialRemoval, Part};
use am_printer::ScanReport;

use crate::{CadRecipe, ProcessKey};

/// The keyed recipe shared by the sphere-based schemes: material removal
/// followed by re-embedding a solid body.
pub(crate) const GENUINE_RECIPE: CadRecipe =
    CadRecipe { removal: MaterialRemoval::With, body: BodyKind::Solid };

/// Authentication outcome for a physically inspected part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Authenticity {
    /// The part carries the expected signature of the licensed process.
    Genuine,
    /// The part carries the planted defect signature — it was manufactured
    /// from the protected file without the key.
    Counterfeit,
    /// The scan was inconclusive.
    Inconclusive,
}

/// The §3.1 protection scheme: a spline split planted in a tensile-bar
/// class part.
///
/// The *owner* holds the original CAD and suppresses the feature (or meets
/// the exact process conditions) when manufacturing; anyone printing the
/// stolen STL gets a part with a cold-joint seam that halves its service
/// life — and whose presence authenticates the part as counterfeit.
///
/// # Examples
///
/// ```
/// use obfuscade::SplineSplitScheme;
///
/// let scheme = SplineSplitScheme::default();
/// let protected = scheme.protected_part()?;
/// let genuine = scheme.genuine_part()?;
/// assert_eq!(protected.security_feature_count(), 1);
/// assert_eq!(genuine.security_feature_count(), 0);
/// # Ok::<(), am_cad::CadError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SplineSplitScheme {
    dims: TensileBarDims,
}

impl SplineSplitScheme {
    /// A scheme over a custom bar geometry.
    pub fn new(dims: TensileBarDims) -> Self {
        SplineSplitScheme { dims }
    }

    /// The bar geometry.
    pub fn dims(&self) -> &TensileBarDims {
        &self.dims
    }

    /// The protected (distributed) model: spline split embedded.
    ///
    /// # Errors
    ///
    /// Propagates CAD construction errors.
    pub fn protected_part(&self) -> Result<Part, CadError> {
        tensile_bar_with_spline(&self.dims)
    }

    /// The genuine manufacturing model: the owner suppresses the split.
    ///
    /// # Errors
    ///
    /// Propagates CAD construction errors.
    pub fn genuine_part(&self) -> Result<Part, CadError> {
        tensile_bar(&self.dims)
    }

    /// Classifies a scanned part: a genuine print has no cold joints; a
    /// print from the protected file carries a seam of roughly the split
    /// surface's area.
    pub fn authenticate(&self, scan: &ScanReport) -> Authenticity {
        // Expected seam area ≈ spline arc length × thickness.
        let expected = 21.0 * self.dims.thickness;
        if scan.cold_joint_area > expected * 0.2 {
            Authenticity::Counterfeit
        } else if scan.cold_joint_area < expected * 0.05 {
            Authenticity::Genuine
        } else {
            Authenticity::Inconclusive
        }
    }
}

/// The §3.2 protection scheme: a sphere embedded in a solid, whose print
/// outcome depends on the CAD processing recipe.
///
/// The distributed model reads identically in the CAD viewport and in STL
/// file size for every recipe, but only the keyed recipe — material removal
/// followed by re-embedding a **solid** body — prints the region as model
/// material. Every other recipe leaves a support-filled (and after
/// dissolution, hollow) core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EmbeddedSphereScheme {
    dims: PrismDims,
}

impl EmbeddedSphereScheme {
    /// A scheme over a custom prism geometry.
    pub fn new(dims: PrismDims) -> Self {
        EmbeddedSphereScheme { dims }
    }

    /// The prism geometry.
    pub fn dims(&self) -> &PrismDims {
        &self.dims
    }

    /// The part as manufactured under a given CAD recipe.
    ///
    /// # Errors
    ///
    /// Propagates CAD construction errors.
    pub fn part_for_recipe(&self, recipe: CadRecipe) -> Result<Part, CadError> {
        prism_with_sphere(&self.dims, recipe.body, recipe.removal)
    }

    /// The unprotected reference part.
    pub fn reference_part(&self) -> Part {
        intact_prism(&self.dims)
    }

    /// The keyed recipe that manufactures correctly.
    pub fn genuine_recipe(&self) -> CadRecipe {
        GENUINE_RECIPE
    }

    /// The full process key for a correct print (resolution and orientation
    /// are free for this scheme; the recipe is the secret).
    pub fn genuine_keys(&self) -> Vec<ProcessKey> {
        ProcessKey::key_space()
            .into_iter()
            .filter(|k| k.recipe == self.genuine_recipe())
            .collect()
    }

    /// Classifies a scanned part: a hidden void (or trapped support) of the
    /// sphere's volume marks a part printed without the key.
    pub fn authenticate(&self, scan: &ScanReport) -> Authenticity {
        let sphere = 4.0 / 3.0 * std::f64::consts::PI * self.dims.sphere_radius.powi(3);
        // Undissolved support trapped inside reads as hollow too.
        if scan.internal_support_voxels > 0 {
            return Authenticity::Counterfeit;
        }
        if scan.internal_void_volume > sphere * 0.4 {
            Authenticity::Counterfeit
        } else if scan.internal_void_volume < sphere * 0.1 {
            Authenticity::Genuine
        } else {
            Authenticity::Inconclusive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spline_scheme_parts_differ_only_by_feature() {
        let scheme = SplineSplitScheme::default();
        let p = scheme.protected_part().unwrap();
        let g = scheme.genuine_part().unwrap();
        assert_eq!(p.security_feature_count(), 1);
        assert_eq!(g.security_feature_count(), 0);
    }

    #[test]
    fn sphere_scheme_genuine_recipe_is_removal_plus_solid() {
        let scheme = EmbeddedSphereScheme::default();
        let r = scheme.genuine_recipe();
        assert_eq!(r.removal, MaterialRemoval::With);
        assert_eq!(r.body, BodyKind::Solid);
        // A quarter of the recipe space, times all resolutions/orientations.
        assert_eq!(scheme.genuine_keys().len(), 6);
    }

    #[test]
    fn sphere_authentication_thresholds() {
        let scheme = EmbeddedSphereScheme::default();
        let sphere_vol = 4.0 / 3.0 * std::f64::consts::PI * 3.175f64.powi(3);
        let hollow = ScanReport {
            internal_void_voxels: 100,
            internal_void_volume: sphere_vol * 0.9,
            ..Default::default()
        };
        assert_eq!(scheme.authenticate(&hollow), Authenticity::Counterfeit);
        let solid = ScanReport::default();
        assert_eq!(scheme.authenticate(&solid), Authenticity::Genuine);
        let ambiguous = ScanReport {
            internal_void_volume: sphere_vol * 0.2,
            ..Default::default()
        };
        assert_eq!(scheme.authenticate(&ambiguous), Authenticity::Inconclusive);
    }

    #[test]
    fn spline_authentication_thresholds() {
        let scheme = SplineSplitScheme::default();
        let seamed = ScanReport { cold_joint_area: 60.0, ..Default::default() };
        assert_eq!(scheme.authenticate(&seamed), Authenticity::Counterfeit);
        let clean = ScanReport::default();
        assert_eq!(scheme.authenticate(&clean), Authenticity::Genuine);
    }
}
