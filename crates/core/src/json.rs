//! A minimal JSON value model, parser and emitter — shared by the bench
//! report (`obfuscade-bench/*` documents) and the service wire protocol.
//!
//! This began life inside `crates/bench/src/perf.rs` as "just enough JSON
//! to validate the bench schema without a dependency"; the service daemon
//! (DESIGN.md §11) needs the same grammar on the wire, so the
//! implementation lives here once instead of twice. It is deliberately
//! small: no serde, no streaming, objects as ordered `(key, value)` pairs
//! (field order is part of the bench schema's stability contract and of
//! the wire protocol's byte-identity contract).
//!
//! Two number formatters coexist on purpose:
//!
//! * [`json_number`] — fixed 3-decimal formatting for human-diffable bench
//!   documents (timings in milliseconds do not need more);
//! * [`Json::render`] — Rust's shortest round-trip `f64` formatting, used
//!   by the wire protocol, where responses must be **byte-identical** for
//!   bit-identical inputs and therefore must not round.

use std::fmt::Write as _;

/// A parsed JSON value — the full value grammar, minus number forms that
/// do not fit an `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as an `f64`. Integers survive exactly up to 2^53;
    /// the wire protocol documents that bound for its counters and ids.
    Number(f64),
    /// A string (escapes already resolved).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as ordered key/value pairs. Duplicate keys are kept as
    /// parsed; [`Json::get`] returns the first match.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks a key up in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number value as a non-negative integer, if this is a number
    /// with an exact integral value in `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_number()?;
        if v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
            Some(v as u64)
        } else {
            None
        }
    }

    /// Builds a string value (convenience over `Json::String(x.into())`).
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Builds a number value from an unsigned counter. Values above 2^53
    /// lose precision — the wire protocol's documented integer bound.
    pub fn u64(v: u64) -> Json {
        Json::Number(v as f64)
    }

    /// Compact canonical serialization: no whitespace, object fields in
    /// stored order, strings escaped exactly as [`json_string`], numbers in
    /// Rust's shortest round-trip `f64` form (so re-parsing reproduces the
    /// same bits, and bit-identical values render byte-identically).
    /// Non-finite numbers render as `null` — JSON has no spelling for them.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => out.push_str(&json_string(s)),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(key));
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes and quotes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a number with fixed 3-decimal precision (`null` for non-finite
/// values) — the bench documents' human-diffable form. Lossy by design;
/// the wire protocol uses [`Json::render`] instead.
pub fn json_number(v: f64) -> String {
    if v.is_finite() { format!("{v:.3}") } else { "null".to_string() }
}

/// Maximum container nesting the parser accepts. The parser recurses per
/// nesting level and consumes untrusted wire frames up to `MAX_FRAME`
/// (8 MiB) — without a bound, a frame of a few hundred thousand `[`s
/// would overflow the connection thread's stack and abort the daemon.
/// 128 is far beyond any document this codebase produces.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0, depth: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.nested(Parser::object),
            b'[' => self.nested(Parser::array),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    /// Runs a container parse one nesting level down, refusing past
    /// [`MAX_DEPTH`] so untrusted input cannot recurse the stack away.
    fn nested(
        &mut self,
        parse: fn(&mut Parser<'a>) -> Result<Json, String>,
    ) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Copy the maximal run of unescaped bytes as one UTF-8 slice.
            // The input is a `&str` and the run delimiters (`"`, `\`) are
            // ASCII, so the run lands on char boundaries — pushing bytes
            // one at a time as `char`s would mangle multi-byte characters
            // into Latin-1 mojibake.
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| !matches!(b, b'"' | b'\\')) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?;
                out.push_str(run);
            }
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => unreachable!("run loop stops only at '\"' or '\\\\'"),
            }
        }
    }

    /// Decodes the four hex digits after a `\u`, combining a UTF-16
    /// surrogate pair (`😀`) into its supplementary code point —
    /// standard JSON encoders escape non-BMP characters exactly that way.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let unit = self.hex4()?;
        let code = match unit {
            0xd800..=0xdbff => {
                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                    return Err(format!("unpaired surrogate at byte {}", self.pos));
                }
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xdc00..=0xdfff).contains(&low) {
                    return Err(format!("unpaired surrogate at byte {}", self.pos));
                }
                0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
            }
            _ => unit,
        };
        // Still refuses lone low surrogates (not reachable via a pair).
        char::from_u32(code).ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))
    }

    /// Reads four hex digits as a UTF-16 code unit.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self.bytes.get(self.pos..self.pos + 4).ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        let unit = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Number).map_err(|_| format!("bad number '{text}'"))
    }

    fn finish(mut self, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(value)
        } else {
            Err(format!("trailing garbage at byte {}", self.pos))
        }
    }
}

/// Parses a complete JSON document (trailing garbage is an error).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.finish(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse_json("{\"a\": [1, -2.5e1, \"x\\n\\\"y\\u0041\"], \"b\": null}")
            .expect("parse");
        let arr = match doc.get("a") {
            Some(Json::Array(items)) => items.clone(),
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0], Json::Number(1.0));
        assert_eq!(arr[1], Json::Number(-25.0));
        assert_eq!(arr[2], Json::String("x\n\"yA".to_string()));
        assert_eq!(doc.get("b"), Some(&Json::Null));
    }

    #[test]
    fn render_round_trips_exact_floats() {
        // The wire contract: render → parse reproduces the same bits, and
        // distinct bits render distinctly (shortest round-trip formatting).
        for v in [0.0, 3.0, 0.1, 1.0 / 3.0, 6.02214076e23, -1.5e-12, f64::MAX] {
            let rendered = Json::Number(v).render();
            let back = parse_json(&rendered).expect("parse").as_number().expect("number");
            assert_eq!(v.to_bits(), back.to_bits(), "{v} mangled through render: {rendered}");
        }
        assert_eq!(Json::Number(f64::NAN).render(), "null");
    }

    #[test]
    fn render_is_compact_and_ordered() {
        let doc = Json::Object(vec![
            ("b".to_string(), Json::Array(vec![Json::Null, Json::Bool(true)])),
            ("a".to_string(), Json::str("x\"y")),
        ]);
        assert_eq!(doc.render(), "{\"b\":[null,true],\"a\":\"x\\\"y\"}");
        let back = parse_json(&doc.render()).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn parser_refuses_pathological_nesting_without_crashing() {
        // MAX_FRAME-scale nesting must be a parse error, not a stack
        // overflow that aborts the daemon process.
        let deep = "[".repeat(300_000);
        assert!(parse_json(&deep).expect_err("deep array").contains("nesting"));
        let deep = "{\"k\":".repeat(300_000);
        assert!(parse_json(&deep).expect_err("deep object").contains("nesting"));
        // A document at a sane depth still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn strings_preserve_multibyte_utf8() {
        let doc = parse_json("{\"name\": \"piéce-Ω-部品\"}").expect("parse");
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("piéce-Ω-部品"));
        // And the render → parse round trip keeps the bytes intact.
        let back = parse_json(&Json::str("piéce-Ω-部品").render()).expect("parse");
        assert_eq!(back.as_str(), Some("piéce-Ω-部品"));
    }

    #[test]
    fn unicode_escapes_combine_surrogate_pairs() {
        let doc = parse_json("\"\\ud83d\\ude00\"").expect("surrogate pair");
        assert_eq!(doc.as_str(), Some("😀"));
        // Lone surrogates (either half) stay errors.
        assert!(parse_json("\"\\ud83d\"").is_err());
        assert!(parse_json("\"\\ud83dx\"").is_err());
        assert!(parse_json("\"\\ud83d\\u0041\"").is_err());
        assert!(parse_json("\"\\ude00\"").is_err());
        // BMP escapes are unaffected.
        assert_eq!(parse_json("\"\\u00e9\"").expect("bmp").as_str(), Some("é"));
    }

    #[test]
    fn integer_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::Number(42.0).as_u64(), Some(42));
        assert_eq!(Json::Number(4.2).as_u64(), None);
        assert_eq!(Json::Number(-1.0).as_u64(), None);
        assert_eq!(Json::Null.as_u64(), None);
    }
}
