//! Counterfeiter models: adversaries manufacturing from stolen files.
//!
//! This module quantifies the paper's logic-locking analogy: the protected
//! model prints correctly only under the owner's process key, so a
//! counterfeiter must search the key space — paying one physical print (and
//! one destructive test, if they want certainty) per candidate.

use am_cad::Part;
use am_mesh::weld_vertices;
use am_mesh::Resolution;
use am_par::Parallelism;
use am_slicer::Orientation;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{
    assess_quality, run_pipeline, run_pipeline_jobs, BatchJob, CadRecipe, EmbeddedSphereScheme,
    FaultPlan, PipelineError, PipelineOutput, ProcessKey, ProcessPlan, QualityThresholds,
    SplineSplitScheme, StageCache, Verdict,
};

/// One counterfeiting attempt: the key tried and the quality obtained.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// The process key the adversary tried.
    pub key: ProcessKey,
    /// The quality verdict of the resulting part.
    pub verdict: Verdict,
}

/// Result of a key-space search by a counterfeiter.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Every attempt made, in order.
    pub attempts: Vec<Attempt>,
    /// Number of prints before the first [`Verdict::Good`] part (`None` if
    /// the search never succeeded).
    pub prints_to_success: Option<usize>,
}

impl SearchOutcome {
    /// Fraction of attempts that passed quality control.
    pub fn success_rate(&self) -> f64 {
        if self.attempts.is_empty() {
            return 0.0;
        }
        let good = self.attempts.iter().filter(|a| a.verdict == Verdict::Good).count();
        good as f64 / self.attempts.len() as f64
    }
}

/// A counterfeiter working from the stolen **CAD** file of an
/// [`EmbeddedSphereScheme`] part: they can re-run any CAD recipe but do not
/// know which one the owner intends.
///
/// Exhaustively tries every key (in seeded random order, as a rational
/// adversary without priors would).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn search_sphere_scheme(
    scheme: &EmbeddedSphereScheme,
    thresholds: &QualityThresholds,
    seed: u64,
) -> Result<SearchOutcome, PipelineError> {
    let mut keys = ProcessKey::key_space();
    // The sphere scheme's observable is recipe-driven; resolution barely
    // matters, so search over recipes × orientations at one resolution to
    // keep each trial a distinct *print*.
    keys.retain(|k| k.resolution == Resolution::Fine);
    let mut rng = StdRng::seed_from_u64(seed);
    keys.shuffle(&mut rng);

    let reference = run_pipeline(
        &scheme.reference_part(),
        &ProcessPlan::fdm(Resolution::Fine, Orientation::Xy).with_seed(seed),
    )?;

    // The attempts share long stage prefixes (two orientations per recipe
    // reuse one mesh; the seed only reaches the print stage), so the whole
    // search runs as one batch against a local stage cache.
    let mut parts: Vec<Part> = Vec::with_capacity(keys.len());
    for key in &keys {
        parts.push(scheme.part_for_recipe(key.recipe)?);
    }
    let jobs: Vec<BatchJob<'_>> = keys
        .iter()
        .zip(&parts)
        .enumerate()
        .map(|(i, (key, part))| BatchJob {
            part,
            plan: ProcessPlan::fdm(key.resolution, key.orientation).with_seed(seed + i as u64),
            faults: FaultPlan::none(),
        })
        .collect();
    let cache = StageCache::default();
    let outputs = run_pipeline_jobs(&jobs, &cache, Parallelism::auto());

    let mut attempts = Vec::new();
    let mut prints_to_success = None;
    for (i, (key, output)) in keys.iter().zip(outputs).enumerate() {
        let verdict = assess_quality(&output?, &reference, thresholds).verdict;
        attempts.push(Attempt { key: *key, verdict });
        if verdict == Verdict::Good && prints_to_success.is_none() {
            prints_to_success = Some(i + 1);
        }
    }
    Ok(SearchOutcome { attempts, prints_to_success })
}

/// A counterfeiter working from the stolen **STL** of a
/// [`SplineSplitScheme`] part: the split is baked into the mesh, so only
/// resolution and orientation can vary (re-export at another resolution
/// requires the CAD file they do not have — resolution is fixed by the
/// stolen file; we still let them try all orientations and report per-file
/// results for each stolen resolution).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn search_spline_scheme(
    scheme: &SplineSplitScheme,
    thresholds: &QualityThresholds,
    with_tensile: bool,
    seed: u64,
) -> Result<SearchOutcome, PipelineError> {
    let reference_plan =
        ProcessPlan::fdm(Resolution::Fine, Orientation::Xy).with_seed(seed).with_tensile(with_tensile);
    let reference = run_pipeline(&scheme.genuine_part()?, &reference_plan)?;
    let protected = scheme.protected_part()?;

    // One stolen mesh per resolution, two orientations each: a batch over
    // a shared cache tessellates each resolution once.
    let mut trial_keys: Vec<ProcessKey> = Vec::new();
    for resolution in Resolution::ALL {
        for orientation in Orientation::ALL {
            trial_keys.push(ProcessKey { resolution, orientation, recipe: CadRecipe::ALL[0] });
        }
    }
    let jobs: Vec<BatchJob<'_>> = trial_keys
        .iter()
        .enumerate()
        .map(|(i, key)| BatchJob {
            part: &protected,
            plan: ProcessPlan::fdm(key.resolution, key.orientation)
                .with_seed(seed + i as u64)
                .with_tensile(with_tensile),
            faults: FaultPlan::none(),
        })
        .collect();
    let cache = StageCache::default();
    let outputs = run_pipeline_jobs(&jobs, &cache, Parallelism::auto());

    let mut attempts = Vec::new();
    let mut prints_to_success = None;
    for (i, (key, output)) in trial_keys.iter().zip(outputs).enumerate() {
        let verdict = assess_quality(&output?, &reference, thresholds).verdict;
        attempts.push(Attempt { key: *key, verdict });
        if verdict == Verdict::Good && prints_to_success.is_none() {
            prints_to_success = Some(i + 1);
        }
    }
    Ok(SearchOutcome { attempts, prints_to_success })
}

/// The mesh-repair attack: the adversary suspects a planted split and welds
/// the stolen STL's vertices at `weld_tol` before printing, hoping to fuse
/// the bodies back into one solid.
///
/// Returns the pipeline output of the repaired print — the ablation
/// experiments compare its seam/quality metrics against the unrepaired one.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn repair_attack(
    scheme: &SplineSplitScheme,
    resolution: Resolution,
    weld_tol: f64,
) -> Result<RepairOutcome, PipelineError> {
    use am_mesh::{analyze_topology, tessellate_part};

    let protected = scheme.protected_part()?.resolve()?;
    let mesh = tessellate_part(&protected, &resolution.params());
    let before = analyze_topology(&mesh);
    let (welded, report) = weld_vertices(&mesh, am_geom::Tolerance::new(weld_tol));
    let after = analyze_topology(&welded);

    Ok(RepairOutcome {
        vertices_merged: report.vertices_before - report.vertices_after,
        triangles_dropped: report.triangles_dropped,
        watertight_before: before.is_watertight(),
        watertight_after: after.is_watertight(),
        non_manifold_after: after.non_manifold_edges,
    })
}

/// Outcome of a mesh-repair attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Vertices the weld merged.
    pub vertices_merged: usize,
    /// Triangles the weld collapsed.
    pub triangles_dropped: usize,
    /// Whether the stolen mesh was watertight before (it is: two disjoint
    /// closed bodies).
    pub watertight_before: bool,
    /// Whether the welded mesh is still watertight.
    pub watertight_after: bool,
    /// Non-manifold edges the weld introduced (topological scars).
    pub non_manifold_after: usize,
}

impl RepairOutcome {
    /// `true` if the repair left the mesh broken (non-manifold) — the
    /// usual outcome: welding fuses vertices but cannot remove the interior
    /// separation wall.
    pub fn repair_backfired(&self) -> bool {
        !self.watertight_after || self.non_manifold_after > 0
    }
}

/// Convenience: the output a licensed manufacturer gets (genuine part,
/// keyed plan).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn genuine_production(
    scheme: &SplineSplitScheme,
    seed: u64,
    with_tensile: bool,
) -> Result<PipelineOutput, PipelineError> {
    let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy)
        .with_seed(seed)
        .with_tensile(with_tensile);
    let part: Part = scheme.genuine_part()?;
    run_pipeline(&part, &plan)
}
