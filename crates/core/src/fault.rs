//! Deterministic fault injection for the AM process chain.
//!
//! Table 1 of the paper catalogs the attacks available at each stage of the
//! additive-manufacturing tool chain — STL corruption, slicer
//! misconfiguration, tool-path tampering and firmware glitches — together
//! with the defender's mitigations. This module turns that catalog into a
//! reproducible test harness: a [`FaultPlan`] names a set of faults plus a
//! seed, composes with a [`crate::ProcessPlan`], and
//! [`crate::run_pipeline_with_faults`] injects each fault at its stage
//! boundary. Same plan + same seed ⇒ bit-identical outcome, which is what
//! makes the 1000-case robustness suite meaningful.
//!
//! Every fault is **either** recoverable — the pipeline repairs or tolerates
//! it and records a [`crate::Diagnostic`] — **or** unrecoverable, surfacing
//! as a typed [`crate::PipelineError`] naming the failing
//! [`crate::Stage`]. Panics are a bug.
//!
//! # Examples
//!
//! ```
//! use obfuscade::FaultPlan;
//!
//! let plan: FaultPlan = "seed=7 stl.degenerate=3 firmware.feed=50".parse()?;
//! assert_eq!(plan.seed, 7);
//! assert_eq!(plan.to_string().parse::<FaultPlan>()?, plan);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::str::FromStr;

use am_mesh::{
    degenerate_attack, endpoint_attack, flip_attack, read_stl, truncation_attack, void_attack,
    write_binary_stl, StlError, TriMesh,
};
use am_slicer::{parse_gcode, to_gcode, GcodeError, SlicerConfig, ToolPath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An STL-stage fault (Table 1, "STL file" row): corruption of the exported
/// geometry, in transit or at rest.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum StlFault {
    /// Keep only the leading fraction of facets (file truncation).
    Truncate {
        /// Fraction of facets kept, clamped to `[0, 1]`.
        keep_fraction: f64,
    },
    /// Collapse random facets into zero-area slivers.
    Degenerate {
        /// Number of facets to damage.
        count: usize,
    },
    /// Reverse the winding of random facets (normal flips).
    FlipFacets {
        /// Number of facets to flip.
        count: usize,
    },
    /// Hide an inverted box shell inside the model (void insertion).
    VoidInsert {
        /// Void half-extent as a fraction of the smallest model extent,
        /// clamped to `(0, 0.45]`.
        relative_size: f64,
    },
    /// Nudge random vertices (the paper's "end point changes").
    EndpointDrift {
        /// Displacement magnitude (mm).
        magnitude_mm: f64,
        /// Number of vertices to move.
        count: usize,
    },
    /// Overwrite one vertex coordinate with NaN in the binary payload.
    NanVertex,
    /// Truncate the binary STL byte stream itself, leaving the header's
    /// facet count pointing past the end of file.
    ByteTruncate {
        /// Fraction of payload bytes kept, clamped to `[0, 1]` (`1` keeps
        /// the stream intact).
        keep_fraction: f64,
    },
}

/// A slicer-stage fault (Table 1, "slicing" row): a misconfigured or
/// maliciously altered slicing profile.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SlicerFault {
    /// Zero out the layer height (classic divide-by-zero bait).
    ZeroLayerHeight,
    /// Poison the layer height with NaN.
    NanLayerHeight,
    /// Replace the road width with an absurd value (mm).
    AbsurdRoadWidth {
        /// The commanded road width (mm).
        width_mm: f64,
    },
}

/// A tool-path-stage fault (Table 1, "tool path" row): tampering with the
/// part program between the slicer and the machine.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ToolpathFault {
    /// Delete a random fraction of deposition roads.
    DropRoads {
        /// Fraction of roads dropped, clamped to `[0, 1]`.
        fraction: f64,
    },
    /// Duplicate a random fraction of roads (double extrusion).
    DuplicateRoads {
        /// Fraction of roads duplicated, clamped to `[0, 1]`.
        fraction: f64,
    },
    /// Round-trip the program through G-code, keeping only the leading
    /// fraction of lines (interrupted transfer).
    GcodeTruncate {
        /// Fraction of G-code lines kept, clamped to `[0, 1]`.
        keep_fraction: f64,
    },
}

/// A firmware-stage fault (Table 1, "firmware" row): glitched or malicious
/// machine commands the limit switch must catch.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FirmwareFault {
    /// Shift every commanded coordinate in +x, driving the head toward or
    /// past the gantry.
    EnvelopeEscape {
        /// Shift distance (mm).
        offset_mm: f64,
    },
    /// Multiply the commanded feed rate (actuator over-drive).
    FeedSpike {
        /// Feed multiplier.
        factor: f64,
    },
}

/// A deterministic, serializable set of faults to inject into one pipeline
/// run. Compose with a [`crate::ProcessPlan`] via
/// [`crate::run_pipeline_with_faults`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every randomized fault (facet choice, road choice, …).
    pub seed: u64,
    /// STL-stage faults, applied in order to every exported shell.
    pub stl: Vec<StlFault>,
    /// Slicer-stage faults, applied in order to the effective config.
    pub slicer: Vec<SlicerFault>,
    /// Tool-path-stage faults, applied in order to the part program.
    pub toolpath: Vec<ToolpathFault>,
    /// Firmware-stage faults, applied before the limit-switch check.
    pub firmware: Vec<FirmwareFault>,
}

impl FaultPlan {
    /// The empty plan: [`crate::run_pipeline_with_faults`] with this plan is
    /// bit-identical to [`crate::run_pipeline`].
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.stl.is_empty()
            && self.slicer.is_empty()
            && self.toolpath.is_empty()
            && self.firmware.is_empty()
    }

    /// Total number of faults across all stages.
    pub fn fault_count(&self) -> usize {
        self.stl.len() + self.slicer.len() + self.toolpath.len() + self.firmware.len()
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The documented single-fault catalog: one `(name, plan)` entry per
    /// fault class of Table 1, with representative parameters. This is the
    /// ground truth the robustness suite and the CLI `faults` command
    /// enumerate.
    pub fn catalog() -> Vec<(&'static str, FaultPlan)> {
        let one = |plan: FaultPlan| plan;
        vec![
            (
                "stl-truncate",
                one(FaultPlan { stl: vec![StlFault::Truncate { keep_fraction: 0.6 }], ..Default::default() }),
            ),
            (
                "stl-degenerate",
                one(FaultPlan { stl: vec![StlFault::Degenerate { count: 4 }], ..Default::default() }),
            ),
            (
                "stl-flip",
                one(FaultPlan { stl: vec![StlFault::FlipFacets { count: 4 }], ..Default::default() }),
            ),
            (
                "stl-void",
                one(FaultPlan { stl: vec![StlFault::VoidInsert { relative_size: 0.2 }], ..Default::default() }),
            ),
            (
                "stl-drift",
                one(FaultPlan {
                    stl: vec![StlFault::EndpointDrift { magnitude_mm: 0.4, count: 3 }],
                    ..Default::default()
                }),
            ),
            (
                "stl-nan",
                one(FaultPlan { stl: vec![StlFault::NanVertex], ..Default::default() }),
            ),
            (
                "stl-bytes",
                one(FaultPlan { stl: vec![StlFault::ByteTruncate { keep_fraction: 0.5 }], ..Default::default() }),
            ),
            (
                "slicer-zero-layer",
                one(FaultPlan { slicer: vec![SlicerFault::ZeroLayerHeight], ..Default::default() }),
            ),
            (
                "slicer-nan-layer",
                one(FaultPlan { slicer: vec![SlicerFault::NanLayerHeight], ..Default::default() }),
            ),
            (
                "slicer-road-width",
                one(FaultPlan {
                    slicer: vec![SlicerFault::AbsurdRoadWidth { width_mm: 5000.0 }],
                    ..Default::default()
                }),
            ),
            (
                "toolpath-drop",
                one(FaultPlan {
                    toolpath: vec![ToolpathFault::DropRoads { fraction: 0.1 }],
                    ..Default::default()
                }),
            ),
            (
                "toolpath-dup",
                one(FaultPlan {
                    toolpath: vec![ToolpathFault::DuplicateRoads { fraction: 0.1 }],
                    ..Default::default()
                }),
            ),
            (
                "toolpath-gcode",
                one(FaultPlan {
                    toolpath: vec![ToolpathFault::GcodeTruncate { keep_fraction: 0.7 }],
                    ..Default::default()
                }),
            ),
            (
                "firmware-escape",
                one(FaultPlan {
                    firmware: vec![FirmwareFault::EnvelopeEscape { offset_mm: 500.0 }],
                    ..Default::default()
                }),
            ),
            (
                "firmware-feed",
                one(FaultPlan {
                    firmware: vec![FirmwareFault::FeedSpike { factor: 50.0 }],
                    ..Default::default()
                }),
            ),
        ]
    }
}

impl StlFault {
    /// Applies the fault to one exported shell. Byte-level faults
    /// ([`StlFault::NanVertex`], [`StlFault::ByteTruncate`]) round-trip the
    /// shell through its binary STL serialization; a corrupted stream that
    /// no longer parses surfaces as the [`StlError`] the downstream reader
    /// reports.
    pub fn apply(&self, mesh: &TriMesh, seed: u64) -> Result<TriMesh, StlError> {
        match *self {
            StlFault::Truncate { keep_fraction } => Ok(truncation_attack(mesh, keep_fraction)),
            StlFault::Degenerate { count } => Ok(degenerate_attack(mesh, count, seed)),
            StlFault::FlipFacets { count } => Ok(flip_attack(mesh, count, seed)),
            StlFault::VoidInsert { relative_size } => {
                let Some(aabb) = mesh.aabb() else { return Ok(mesh.clone()) };
                let size = aabb.size();
                let extent = size.x.min(size.y).min(size.z);
                let rel = if relative_size.is_finite() { relative_size.clamp(0.01, 0.45) } else { 0.2 };
                Ok(void_attack(mesh, aabb.center(), extent * rel / 2.0))
            }
            StlFault::EndpointDrift { magnitude_mm, count } => {
                let mag = if magnitude_mm.is_finite() { magnitude_mm.abs() } else { 0.1 };
                Ok(endpoint_attack(mesh, mag, count, seed))
            }
            StlFault::NanVertex => {
                let mut bytes = serialize(mesh)?;
                // First facet's first vertex x-coordinate: header (80) +
                // count (4) + normal (12).
                if bytes.len() >= 84 + 50 {
                    bytes[96..100].copy_from_slice(&f32::NAN.to_le_bytes());
                }
                read_stl(&bytes[..])
            }
            StlFault::ByteTruncate { keep_fraction } => {
                let bytes = serialize(mesh)?;
                let frac = if keep_fraction.is_finite() { keep_fraction.clamp(0.0, 1.0) } else { 0.5 };
                let keep = ((bytes.len() as f64) * frac) as usize;
                read_stl(&bytes[..keep.min(bytes.len())])
            }
        }
    }
}

fn serialize(mesh: &TriMesh) -> Result<Vec<u8>, StlError> {
    let mut bytes = Vec::new();
    write_binary_stl(mesh, &mut bytes)?;
    Ok(bytes)
}

impl SlicerFault {
    /// Applies the fault to the effective slicer configuration. The
    /// pipeline re-validates the configuration afterwards, so every fault
    /// in this enum surfaces as a typed config error.
    pub fn apply(&self, config: &mut SlicerConfig) {
        match *self {
            SlicerFault::ZeroLayerHeight => config.layer_height = 0.0,
            SlicerFault::NanLayerHeight => config.layer_height = f64::NAN,
            SlicerFault::AbsurdRoadWidth { width_mm } => config.road_width = width_mm,
        }
    }
}

impl ToolpathFault {
    /// Applies the fault to the part program in place, returning a
    /// human-readable note of the damage done. A G-code stream that no
    /// longer parses surfaces as the [`GcodeError`] the machine-side
    /// parser reports.
    pub fn apply(&self, toolpath: &mut ToolPath, seed: u64) -> Result<String, GcodeError> {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            ToolpathFault::DropRoads { fraction } => {
                let f = if fraction.is_finite() { fraction.clamp(0.0, 1.0) } else { 0.0 };
                let before = toolpath.roads.len();
                toolpath.roads.retain(|_| !rng.gen_bool(f));
                Ok(format!("dropped {} of {before} roads", before - toolpath.roads.len()))
            }
            ToolpathFault::DuplicateRoads { fraction } => {
                let f = if fraction.is_finite() { fraction.clamp(0.0, 1.0) } else { 0.0 };
                let mut out = Vec::with_capacity(toolpath.roads.len());
                let mut dups = 0usize;
                for road in &toolpath.roads {
                    out.push(*road);
                    if rng.gen_bool(f) {
                        out.push(*road);
                        dups += 1;
                    }
                }
                toolpath.roads = out;
                Ok(format!("duplicated {dups} roads"))
            }
            ToolpathFault::GcodeTruncate { keep_fraction } => {
                let f = if keep_fraction.is_finite() { keep_fraction.clamp(0.0, 1.0) } else { 0.5 };
                let text = to_gcode(toolpath);
                let lines: Vec<&str> = text.lines().collect();
                let keep = ((lines.len() as f64) * f) as usize;
                let truncated = lines[..keep.min(lines.len())].join("\n");
                let before = toolpath.roads.len();
                *toolpath = parse_gcode(&truncated)?;
                Ok(format!(
                    "g-code truncated to {keep} of {} lines ({} of {before} roads survive)",
                    lines.len(),
                    toolpath.roads.len(),
                ))
            }
        }
    }
}

impl FirmwareFault {
    /// Applies the fault to the commanded part program / feed rate. The
    /// pipeline's limit-switch check runs afterwards, so every fault in
    /// this enum surfaces as a firmware rejection.
    pub fn apply(&self, toolpath: &mut ToolPath, feed_mm_per_s: &mut f64) {
        match *self {
            FirmwareFault::EnvelopeEscape { offset_mm } => {
                for road in &mut toolpath.roads {
                    road.from.x += offset_mm;
                    road.to.x += offset_mm;
                }
            }
            FirmwareFault::FeedSpike { factor } => *feed_mm_per_s *= factor,
        }
    }
}

// --- Serialization -------------------------------------------------------
//
// A fault plan renders as whitespace-separated tokens:
//
//     seed=42 stl.truncate=0.6 slicer.zero_layer firmware.feed=50
//
// Multi-parameter faults join their parameters with ':'. The grammar is
// deliberately tiny — plans travel on the CLI and in test names, not in
// config files.

impl fmt::Display for StlFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StlFault::Truncate { keep_fraction } => write!(f, "stl.truncate={keep_fraction}"),
            StlFault::Degenerate { count } => write!(f, "stl.degenerate={count}"),
            StlFault::FlipFacets { count } => write!(f, "stl.flip={count}"),
            StlFault::VoidInsert { relative_size } => write!(f, "stl.void={relative_size}"),
            StlFault::EndpointDrift { magnitude_mm, count } => {
                write!(f, "stl.drift={magnitude_mm}:{count}")
            }
            StlFault::NanVertex => write!(f, "stl.nan"),
            StlFault::ByteTruncate { keep_fraction } => write!(f, "stl.bytes={keep_fraction}"),
        }
    }
}

impl fmt::Display for SlicerFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SlicerFault::ZeroLayerHeight => write!(f, "slicer.zero_layer"),
            SlicerFault::NanLayerHeight => write!(f, "slicer.nan_layer"),
            SlicerFault::AbsurdRoadWidth { width_mm } => write!(f, "slicer.road_width={width_mm}"),
        }
    }
}

impl fmt::Display for ToolpathFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ToolpathFault::DropRoads { fraction } => write!(f, "toolpath.drop={fraction}"),
            ToolpathFault::DuplicateRoads { fraction } => write!(f, "toolpath.dup={fraction}"),
            ToolpathFault::GcodeTruncate { keep_fraction } => {
                write!(f, "toolpath.gcode={keep_fraction}")
            }
        }
    }
}

impl fmt::Display for FirmwareFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FirmwareFault::EnvelopeEscape { offset_mm } => write!(f, "firmware.escape={offset_mm}"),
            FirmwareFault::FeedSpike { factor } => write!(f, "firmware.feed={factor}"),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for x in &self.stl {
            write!(f, " {x}")?;
        }
        for x in &self.slicer {
            write!(f, " {x}")?;
        }
        for x in &self.toolpath {
            write!(f, " {x}")?;
        }
        for x in &self.firmware {
            write!(f, " {x}")?;
        }
        Ok(())
    }
}

/// A fault-plan token that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The offending token.
    pub token: String,
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized fault token: {:?}", self.token)
    }
}

impl std::error::Error for FaultParseError {}

impl FromStr for FaultPlan {
    type Err = FaultParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::default();
        for token in s.split_whitespace() {
            let bad = || FaultParseError { token: token.to_string() };
            let (name, value) = match token.split_once('=') {
                Some((n, v)) => (n, Some(v)),
                None => (token, None),
            };
            let f64_arg = || -> Result<f64, FaultParseError> {
                value.ok_or_else(bad)?.parse().map_err(|_| bad())
            };
            let usize_arg = || -> Result<usize, FaultParseError> {
                value.ok_or_else(bad)?.parse().map_err(|_| bad())
            };
            match name {
                "seed" => plan.seed = value.ok_or_else(bad)?.parse().map_err(|_| bad())?,
                "stl.truncate" => {
                    plan.stl.push(StlFault::Truncate { keep_fraction: f64_arg()? });
                }
                "stl.degenerate" => plan.stl.push(StlFault::Degenerate { count: usize_arg()? }),
                "stl.flip" => plan.stl.push(StlFault::FlipFacets { count: usize_arg()? }),
                "stl.void" => plan.stl.push(StlFault::VoidInsert { relative_size: f64_arg()? }),
                "stl.drift" => {
                    let v = value.ok_or_else(bad)?;
                    let (mag, count) = v.split_once(':').ok_or_else(bad)?;
                    plan.stl.push(StlFault::EndpointDrift {
                        magnitude_mm: mag.parse().map_err(|_| bad())?,
                        count: count.parse().map_err(|_| bad())?,
                    });
                }
                "stl.nan" => plan.stl.push(StlFault::NanVertex),
                "stl.bytes" => plan.stl.push(StlFault::ByteTruncate { keep_fraction: f64_arg()? }),
                "slicer.zero_layer" => plan.slicer.push(SlicerFault::ZeroLayerHeight),
                "slicer.nan_layer" => plan.slicer.push(SlicerFault::NanLayerHeight),
                "slicer.road_width" => {
                    plan.slicer.push(SlicerFault::AbsurdRoadWidth { width_mm: f64_arg()? });
                }
                "toolpath.drop" => plan.toolpath.push(ToolpathFault::DropRoads { fraction: f64_arg()? }),
                "toolpath.dup" => {
                    plan.toolpath.push(ToolpathFault::DuplicateRoads { fraction: f64_arg()? });
                }
                "toolpath.gcode" => {
                    plan.toolpath.push(ToolpathFault::GcodeTruncate { keep_fraction: f64_arg()? });
                }
                "firmware.escape" => {
                    plan.firmware.push(FirmwareFault::EnvelopeEscape { offset_mm: f64_arg()? });
                }
                "firmware.feed" => plan.firmware.push(FirmwareFault::FeedSpike { factor: f64_arg()? }),
                _ => return Err(bad()),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_display() {
        let mut plan = FaultPlan::none().with_seed(42);
        plan.stl.push(StlFault::Truncate { keep_fraction: 0.6 });
        plan.stl.push(StlFault::EndpointDrift { magnitude_mm: 0.4, count: 3 });
        plan.stl.push(StlFault::NanVertex);
        plan.slicer.push(SlicerFault::ZeroLayerHeight);
        plan.toolpath.push(ToolpathFault::GcodeTruncate { keep_fraction: 0.7 });
        plan.firmware.push(FirmwareFault::FeedSpike { factor: 50.0 });
        let rendered = plan.to_string();
        assert_eq!(rendered.parse::<FaultPlan>().unwrap(), plan);
    }

    #[test]
    fn catalog_entries_round_trip_and_are_single_fault() {
        for (name, plan) in FaultPlan::catalog() {
            assert_eq!(plan.fault_count(), 1, "{name}");
            assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan, "{name}");
        }
    }

    #[test]
    fn bad_tokens_are_rejected() {
        assert!("stl.explode=1".parse::<FaultPlan>().is_err());
        assert!("stl.truncate".parse::<FaultPlan>().is_err());
        assert!("stl.drift=0.4".parse::<FaultPlan>().is_err());
        assert!("seed=abc".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!("seed=9".parse::<FaultPlan>().unwrap().is_empty());
        assert!(!FaultPlan::catalog()[0].1.is_empty());
    }
}
