//! The end-to-end AM process chain (Fig. 1/3 of the paper): CAD → STL →
//! slice → tool path → print → post-process → inspect → test.
//!
//! The chain runs as an explicit sequence of [`Stage`]s. Every stage either
//! completes (possibly *degraded*, with the damage recorded as
//! [`Diagnostic`]s in the output) or aborts with a typed [`PipelineError`]
//! naming the stage — library code never panics on bad input. The staged
//! structure is what lets [`run_pipeline_with_faults`] inject the Table 1
//! attack catalog at the exact boundary where each attack lives.

use std::error::Error;
use std::fmt;

use am_cad::{CadError, Part};
use am_fea::{
    run_tensile_test_reference, run_tensile_test_with, Lattice, TensileConfig, TensileResult,
};
use am_geom::Tolerance;
use am_par::Parallelism;
use am_mesh::{
    binary_stl_size, fingerprint, seam_report, tessellate_shells, verify_fingerprint,
    weld_vertices, Resolution, SeamReport, StlError, TriMesh,
};
use am_printer::{
    check_limits_at_feed, scan, BuildEnvelope, PrintError, PrintedPart, PrinterProfile, Process,
    ScanReport,
};
use am_slicer::{
    build_transform, diagnose_slices, orient_shells, slice_shells_scan, try_generate_toolpath,
    try_slice_shells_with, ConfigError, GcodeError, Orientation, SliceError, SliceReport,
    SlicerConfig, ToolMaterial, ToolpathError,
};

use crate::fault::FaultPlan;
use crate::perf::{kernel_mode, KernelMode};

/// A complete manufacturing plan: every processing choice from STL export
/// to the machine. Together with the CAD recipe (applied at part
/// construction) this realizes one [`crate::ProcessKey`].
#[derive(Debug, Clone)]
pub struct ProcessPlan {
    /// STL export resolution.
    pub resolution: Resolution,
    /// Build orientation.
    pub orientation: Orientation,
    /// Slicer settings.
    pub slicer: SlicerConfig,
    /// Printer machine profile.
    pub printer: PrinterProfile,
    /// Process-noise / specimen seed.
    pub seed: u64,
    /// Whether to run the (comparatively costly) virtual tensile test.
    pub tensile: bool,
    /// Thread budget for the parallel kernels (slicing, deposition, FEA
    /// relaxation). Every budget produces bit-identical output; the default
    /// is serial.
    pub parallelism: Parallelism,
}

impl ProcessPlan {
    /// The paper's default chain: CatalystEX settings on the Dimension
    /// Elite FDM printer.
    pub fn fdm(resolution: Resolution, orientation: Orientation) -> Self {
        ProcessPlan {
            resolution,
            orientation,
            slicer: SlicerConfig::default(),
            printer: PrinterProfile::dimension_elite(),
            seed: 1,
            tensile: false,
            parallelism: Parallelism::serial(),
        }
    }

    /// The PolyJet chain: Objet30 Pro with matching layer height.
    ///
    /// The 16 µm native layer would make simulation needlessly slow for
    /// most experiments, so the slicer runs at a 89 µm "draft" setting
    /// (still 2× finer than FDM); pass a custom [`SlicerConfig`] for the
    /// native resolution.
    pub fn polyjet(resolution: Resolution, orientation: Orientation) -> Self {
        let printer = PrinterProfile::objet30_pro();
        ProcessPlan {
            resolution,
            orientation,
            slicer: SlicerConfig {
                layer_height: 0.0889,
                road_width: printer.road_width,
                analysis_cell: 0.05,
                ..SlicerConfig::default()
            },
            printer,
            seed: 1,
            tensile: false,
            parallelism: Parallelism::serial(),
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style tensile-test toggle.
    pub fn with_tensile(mut self, tensile: bool) -> Self {
        self.tensile = tensile;
        self
    }

    /// Builder-style thread-budget override.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// One stage of the manufacturing chain, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Feature-history resolution (CAD kernel).
    Cad,
    /// Tessellation / STL export, including integrity verification.
    Stl,
    /// Mesh repair (vertex welding) when the STL audit found damage.
    Repair,
    /// Orientation, placement and plane slicing.
    Slice,
    /// Tool-path planning and G-code serialization.
    ToolPath,
    /// Firmware limit-switch vetting of the part program.
    Firmware,
    /// Voxel deposition and support dissolution.
    Print,
    /// Artifact inspection (simulated CT scan).
    Inspect,
    /// Virtual tensile testing.
    Test,
}

impl Stage {
    /// Short lowercase stage name (stable, used in error messages).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Cad => "cad",
            Stage::Stl => "stl",
            Stage::Repair => "repair",
            Stage::Slice => "slice",
            Stage::ToolPath => "toolpath",
            Stage::Firmware => "firmware",
            Stage::Print => "print",
            Stage::Inspect => "inspect",
            Stage::Test => "test",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a stage finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Completed with no anomalies.
    Clean,
    /// Completed, but damage was injected, detected, or repaired — see the
    /// run's [`Diagnostic`]s.
    Degraded,
    /// Not executed (e.g. the tensile test when the plan does not request
    /// it, or repair when the STL audit found nothing to fix).
    Skipped,
}

/// The record of one executed stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageOutcome {
    /// Which stage.
    pub stage: Stage,
    /// How it finished.
    pub status: StageStatus,
}

/// One recorded anomaly: an injected fault, a detection, or a repair.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stage that recorded the anomaly.
    pub stage: Stage,
    /// Human-readable description.
    pub message: String,
    /// `true` if the pipeline repaired or tolerated the anomaly (the run
    /// degrades gracefully); `false` for pure observations such as
    /// injected-fault records and tamper evidence.
    pub recovered: bool,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.message)?;
        if self.recovered {
            write!(f, " (recovered)")?;
        }
        Ok(())
    }
}

/// Errors from the manufacturing pipeline. Every variant names its failing
/// [`Stage`] via [`PipelineError::stage`].
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// The CAD stage failed.
    Cad(CadError),
    /// The part produced no printable geometry.
    EmptyBuild {
        /// Name of the offending part.
        part: String,
    },
    /// The STL byte stream was rejected by the reader (truncation, facet
    /// bombs, non-finite vertices).
    Stl(StlError),
    /// The slicer configuration failed validation.
    InvalidConfig(ConfigError),
    /// The slicing stage rejected its input.
    Slice(SliceError),
    /// Tool-path planning rejected its input.
    Toolpath(ToolpathError),
    /// The machine-side G-code parser rejected the part program.
    Gcode(GcodeError),
    /// The printer firmware rejected the part program (limit switch).
    FirmwareRejected {
        /// Number of limit violations found.
        violations: usize,
        /// The first violation, rendered.
        first: String,
    },
    /// The deposition stage rejected the part program or machine profile.
    Print(PrintError),
}

impl PipelineError {
    /// The stage the error names.
    pub fn stage(&self) -> Stage {
        match self {
            PipelineError::Cad(_) => Stage::Cad,
            PipelineError::EmptyBuild { .. } | PipelineError::Stl(_) => Stage::Stl,
            PipelineError::InvalidConfig(_) | PipelineError::Slice(_) => Stage::Slice,
            PipelineError::Toolpath(_) | PipelineError::Gcode(_) => Stage::ToolPath,
            PipelineError::FirmwareRejected { .. } => Stage::Firmware,
            PipelineError::Print(_) => Stage::Print,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Cad(e) => write!(f, "cad stage failed: {e}"),
            PipelineError::EmptyBuild { part } => {
                write!(f, "part {part} produced no printable geometry")
            }
            PipelineError::Stl(e) => write!(f, "stl stage failed: {e}"),
            PipelineError::InvalidConfig(e) => write!(f, "slice stage failed: {e}"),
            PipelineError::Slice(e) => write!(f, "slice stage failed: {e}"),
            PipelineError::Toolpath(e) => write!(f, "toolpath stage failed: {e}"),
            PipelineError::Gcode(e) => write!(f, "toolpath stage failed: {e}"),
            PipelineError::FirmwareRejected { violations, first } => {
                write!(f, "printer firmware rejected the part program ({violations} violations; first: {first})")
            }
            PipelineError::Print(e) => write!(f, "print stage failed: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Cad(e) => Some(e),
            PipelineError::Stl(e) => Some(e),
            PipelineError::InvalidConfig(e) => Some(e),
            PipelineError::Slice(e) => Some(e),
            PipelineError::Toolpath(e) => Some(e),
            PipelineError::Gcode(e) => Some(e),
            PipelineError::Print(e) => Some(e),
            PipelineError::EmptyBuild { .. } | PipelineError::FirmwareRejected { .. } => None,
        }
    }
}

impl From<CadError> for PipelineError {
    fn from(e: CadError) -> Self {
        PipelineError::Cad(e)
    }
}

/// Tool-path statistics recorded by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ToolPathStats {
    /// Model road length (mm).
    pub model_mm: f64,
    /// Support road length (mm).
    pub support_mm: f64,
    /// Layer count.
    pub layers: usize,
    /// Print-time estimate (s).
    pub time_s: f64,
}

/// Everything one pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Name of the manufactured part.
    pub part_name: String,
    /// Triangles in the exported STL.
    pub mesh_triangles: usize,
    /// Exact binary STL size (bytes).
    pub stl_bytes: u64,
    /// Seam tessellation-mismatch report (split parts only).
    pub seam: Option<SeamReport>,
    /// Slicing defect diagnosis (Fig. 7a observables).
    pub slice_report: SliceReport,
    /// Tool-path statistics.
    pub toolpath: ToolPathStats,
    /// The printed artifact, support already dissolved.
    pub printed: PrintedPart,
    /// Internal-structure scan of the finished part.
    pub scan: ScanReport,
    /// Virtual tensile test (if requested in the plan).
    pub tensile: Option<TensileResult>,
    /// The cold-joint contact fraction used for the tensile model.
    pub joint_contact: f64,
    /// Per-stage outcomes, in execution order.
    pub stages: Vec<StageOutcome>,
    /// Anomalies recorded along the way (injected faults, tamper evidence,
    /// repairs). Empty for a clean run.
    pub diagnostics: Vec<Diagnostic>,
}

impl PipelineOutput {
    /// `true` if any executed stage finished degraded.
    pub fn is_degraded(&self) -> bool {
        self.stages.iter().any(|s| s.status == StageStatus::Degraded)
    }
}

/// Runs the full manufacturing chain on a part.
///
/// Equivalent to [`run_pipeline_with_faults`] with [`FaultPlan::none`]:
/// bit-identical output, no injected damage.
///
/// # Errors
///
/// Returns [`PipelineError::Cad`] if the feature history fails to resolve
/// and [`PipelineError::EmptyBuild`] if no geometry reaches the printer.
///
/// # Examples
///
/// ```no_run
/// use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
/// use am_mesh::Resolution;
/// use am_slicer::Orientation;
/// use obfuscade::{run_pipeline, ProcessPlan};
///
/// let part = tensile_bar_with_spline(&TensileBarDims::default())?;
/// let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xz).with_tensile(true);
/// let output = run_pipeline(&part, &plan)?;
/// assert!(output.slice_report.has_discontinuity()); // the planted seam shows
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_pipeline(part: &Part, plan: &ProcessPlan) -> Result<PipelineOutput, PipelineError> {
    run_pipeline_with_faults(part, plan, &FaultPlan::none())
}

/// Derives the per-fault RNG seed: deterministic in the plan seed, the
/// stage, and the fault's position, so two faults at one stage damage
/// different facets.
fn fault_seed(plan_seed: u64, stage: Stage, index: usize) -> u64 {
    plan_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((stage as u64) << 32)
        .wrapping_add(index as u64 + 1)
}

/// Runs the full manufacturing chain with a [`FaultPlan`] injected at the
/// stage boundaries.
///
/// Recoverable faults degrade the run: damage is repaired (vertex welding)
/// or tolerated, and every anomaly lands in
/// [`PipelineOutput::diagnostics`]. Unrecoverable faults abort with a typed
/// [`PipelineError`] whose [`PipelineError::stage`] names where the chain
/// stopped. Same part, plan and fault plan ⇒ identical result.
///
/// # Errors
///
/// Any [`PipelineError`] variant, depending on the injected faults.
pub fn run_pipeline_with_faults(
    part: &Part,
    plan: &ProcessPlan,
    faults: &FaultPlan,
) -> Result<PipelineOutput, PipelineError> {
    let mut stages: Vec<StageOutcome> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    // The plan itself must be coherent before anything runs: a bad slicer
    // config or machine profile is a caller error, not a fault.
    plan.slicer.validate().map_err(PipelineError::InvalidConfig)?;
    plan.printer.validate().map_err(|e| PipelineError::Print(PrintError::Profile(e)))?;

    // --- CAD -------------------------------------------------------------
    let resolved = part.resolve()?;
    stages.push(StageOutcome { stage: Stage::Cad, status: StageStatus::Clean });

    // --- STL export + integrity audit ------------------------------------
    let params = plan.resolution.params();
    let mut shells: Vec<TriMesh> = tessellate_shells(&resolved, &params);
    let pristine: Vec<_> = shells.iter().map(fingerprint).collect();

    for (i, fault) in faults.stl.iter().enumerate() {
        let seed = fault_seed(faults.seed, Stage::Stl, i);
        for shell in &mut shells {
            *shell = fault.apply(shell, seed).map_err(PipelineError::Stl)?;
        }
        diagnostics.push(Diagnostic {
            stage: Stage::Stl,
            message: format!("injected {fault}"),
            recovered: false,
        });
    }
    // The Table 1 mitigation: verify the received file against the
    // registered fingerprint. Evidence is recorded, not fatal — the
    // counterfeiter prints anyway; the defender reads the diagnostics.
    if !faults.stl.is_empty() {
        for (body, (shell, fp)) in shells.iter().zip(&pristine).enumerate() {
            for evidence in verify_fingerprint(shell, fp) {
                diagnostics.push(Diagnostic {
                    stage: Stage::Stl,
                    message: format!("fingerprint mismatch on body {body}: {evidence:?}"),
                    recovered: false,
                });
            }
        }
    }
    let mesh_triangles: usize = shells.iter().map(TriMesh::triangle_count).sum();
    if mesh_triangles == 0 {
        return Err(PipelineError::EmptyBuild { part: part.name().to_string() });
    }
    let stl_bytes = binary_stl_size(mesh_triangles);
    let seam = seam_report(&resolved, &params);
    stages.push(StageOutcome {
        stage: Stage::Stl,
        status: if faults.stl.is_empty() { StageStatus::Clean } else { StageStatus::Degraded },
    });

    // --- Repair ----------------------------------------------------------
    // Weld only when the audit found sliver damage: an unfaulted run must
    // stay bit-identical to the historical pipeline.
    let sliver_tol = Tolerance::new(1e-9);
    let damaged = shells.iter().any(|s| s.degenerate_count(sliver_tol) > 0);
    if damaged {
        let mut dropped = 0usize;
        for shell in &mut shells {
            let (welded, report) = weld_vertices(shell, sliver_tol);
            dropped += report.triangles_dropped;
            *shell = welded;
        }
        diagnostics.push(Diagnostic {
            stage: Stage::Repair,
            message: format!("welded shells, dropped {dropped} degenerate triangles"),
            recovered: true,
        });
        if shells.iter().map(TriMesh::triangle_count).sum::<usize>() == 0 {
            return Err(PipelineError::EmptyBuild { part: part.name().to_string() });
        }
        stages.push(StageOutcome { stage: Stage::Repair, status: StageStatus::Degraded });
    } else {
        stages.push(StageOutcome { stage: Stage::Repair, status: StageStatus::Skipped });
    }

    // --- Slice -----------------------------------------------------------
    let mut config = plan.slicer;
    for fault in &faults.slicer {
        fault.apply(&mut config);
        diagnostics.push(Diagnostic {
            stage: Stage::Slice,
            message: format!("injected {fault}"),
            recovered: false,
        });
    }
    if !faults.slicer.is_empty() {
        // Re-vet the effective (possibly sabotaged) configuration.
        config.validate().map_err(PipelineError::InvalidConfig)?;
    }

    // Orient, place on the bed (away from the corner — perimeter insets
    // may overshoot the footprint by a fraction of a road width), slice.
    let bed_margin = am_geom::Transform3::translation(am_geom::Vec3::new(5.0, 5.0, 0.0));
    let oriented: Vec<TriMesh> = orient_shells(&shells, plan.orientation)
        .iter()
        .map(|m| m.transformed(&bed_margin))
        .collect();
    let to_build = build_transform(&shells, plan.orientation).then(&bed_margin);
    let sliced = match kernel_mode() {
        KernelMode::Optimized => {
            try_slice_shells_with(&oriented, config.layer_height, plan.parallelism)
        }
        KernelMode::Reference => slice_shells_scan(&oriented, config.layer_height),
    }
    .map_err(PipelineError::Slice)?;
    let slice_report = diagnose_slices(&sliced, config.analysis_cell);
    let open_paths: usize = sliced.layers.iter().map(|l| l.open_paths.len()).sum();
    if open_paths > 0 {
        diagnostics.push(Diagnostic {
            stage: Stage::Slice,
            message: format!("{open_paths} open contour chains tolerated (damaged mesh)"),
            recovered: true,
        });
    }
    stages.push(StageOutcome {
        stage: Stage::Slice,
        status: if open_paths > 0 || !faults.slicer.is_empty() {
            StageStatus::Degraded
        } else {
            StageStatus::Clean
        },
    });

    // --- Tool path -------------------------------------------------------
    let mut toolpath = try_generate_toolpath(&sliced, &config).map_err(PipelineError::Toolpath)?;
    for (i, fault) in faults.toolpath.iter().enumerate() {
        let seed = fault_seed(faults.seed, Stage::ToolPath, i);
        let note = fault.apply(&mut toolpath, seed).map_err(PipelineError::Gcode)?;
        diagnostics.push(Diagnostic {
            stage: Stage::ToolPath,
            message: format!("injected {fault}: {note}"),
            recovered: true,
        });
    }
    let toolpath_stats = ToolPathStats {
        model_mm: toolpath.total_length(ToolMaterial::Model),
        support_mm: toolpath.total_length(ToolMaterial::Support),
        layers: toolpath.layer_count(),
        // The profile was validated above, so the feed is positive.
        time_s: toolpath.try_print_time_estimate(plan.printer.feed_mm_per_s).unwrap_or(0.0),
    };
    stages.push(StageOutcome {
        stage: Stage::ToolPath,
        status: if faults.toolpath.is_empty() { StageStatus::Clean } else { StageStatus::Degraded },
    });

    // --- Firmware vetting (the Table 1 limit-switch mitigation) ----------
    let mut effective_feed = plan.printer.feed_mm_per_s;
    for fault in &faults.firmware {
        fault.apply(&mut toolpath, &mut effective_feed);
        diagnostics.push(Diagnostic {
            stage: Stage::Firmware,
            message: format!("injected {fault}"),
            recovered: false,
        });
    }
    let envelope = match plan.printer.process {
        Process::Fdm => BuildEnvelope::dimension_elite(),
        Process::PolyJet => BuildEnvelope::objet30_pro(),
    };
    let violations = check_limits_at_feed(&toolpath, &envelope, Some(effective_feed));
    if !violations.is_empty() {
        return Err(PipelineError::FirmwareRejected {
            violations: violations.len(),
            first: violations[0].to_string(),
        });
    }
    stages.push(StageOutcome {
        stage: Stage::Firmware,
        status: if faults.firmware.is_empty() { StageStatus::Clean } else { StageStatus::Degraded },
    });

    // --- Print, dissolve -------------------------------------------------
    let mut printed = match kernel_mode() {
        KernelMode::Optimized => PrintedPart::try_from_toolpath_with(
            &toolpath,
            &plan.printer,
            to_build,
            plan.seed,
            plan.parallelism,
        ),
        KernelMode::Reference => {
            PrintedPart::try_from_toolpath_reference(&toolpath, &plan.printer, to_build, plan.seed)
        }
    }
    .map_err(PipelineError::Print)?;
    printed.dissolve_support();
    stages.push(StageOutcome { stage: Stage::Print, status: StageStatus::Clean });

    // --- Inspect ---------------------------------------------------------
    let scan_report = scan(&printed);
    stages.push(StageOutcome { stage: Stage::Inspect, status: StageStatus::Clean });

    // Cold-joint contact: in x-y the seam's in-plane tessellation gaps
    // reduce the bonded area (fraction of the seam left open by the chord
    // mismatch); in x-z the gap opens across layers instead, measured by
    // the fraction of discontinuous layers.
    let joint_contact = match (&seam, plan.orientation) {
        (Some(s), Orientation::Xy) => {
            (1.0 - 1.5 * s.chain_mismatch / config.road_width).clamp(0.3, 1.0)
        }
        (Some(_), Orientation::Xz) => {
            let frac = if slice_report.layers == 0 {
                0.0
            } else {
                slice_report.discontinuous_layers as f64 / slice_report.layers as f64
            };
            (1.0 - 0.5 * frac).clamp(0.3, 1.0)
        }
        (None, _) => 1.0,
    };

    // --- Virtual tensile test --------------------------------------------
    let tensile = if plan.tensile {
        let tensile_config = TensileConfig {
            joint_contact,
            ..TensileConfig::fdm(plan.orientation)
        };
        let mut lattice = Lattice::from_printed(&printed, &tensile_config, plan.seed);
        stages.push(StageOutcome { stage: Stage::Test, status: StageStatus::Clean });
        Some(match kernel_mode() {
            KernelMode::Optimized => {
                run_tensile_test_with(&mut lattice, &tensile_config, plan.parallelism)
            }
            KernelMode::Reference => run_tensile_test_reference(&mut lattice, &tensile_config),
        })
    } else {
        stages.push(StageOutcome { stage: Stage::Test, status: StageStatus::Skipped });
        None
    };

    Ok(PipelineOutput {
        part_name: part.name().to_string(),
        mesh_triangles,
        stl_bytes,
        seam,
        slice_report,
        toolpath: toolpath_stats,
        printed,
        scan: scan_report,
        tensile,
        joint_contact,
        stages,
        diagnostics,
    })
}
