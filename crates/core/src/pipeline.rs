//! The end-to-end AM process chain (Fig. 1/3 of the paper): CAD → STL →
//! slice → tool path → print → post-process → inspect → test.

use std::error::Error;
use std::fmt;

use am_cad::{CadError, Part};
use am_fea::{run_tensile_test, Lattice, TensileConfig, TensileResult};
use am_mesh::{
    binary_stl_size, seam_report, tessellate_shells, Resolution, SeamReport, TriMesh,
};
use am_printer::{check_limits, scan, BuildEnvelope, PrintedPart, PrinterProfile, Process, ScanReport};
use am_slicer::{
    build_transform, diagnose_slices, generate_toolpath, orient_shells, slice_shells,
    Orientation, SliceReport, SlicerConfig, ToolMaterial,
};

/// A complete manufacturing plan: every processing choice from STL export
/// to the machine. Together with the CAD recipe (applied at part
/// construction) this realizes one [`crate::ProcessKey`].
#[derive(Debug, Clone)]
pub struct ProcessPlan {
    /// STL export resolution.
    pub resolution: Resolution,
    /// Build orientation.
    pub orientation: Orientation,
    /// Slicer settings.
    pub slicer: SlicerConfig,
    /// Printer machine profile.
    pub printer: PrinterProfile,
    /// Process-noise / specimen seed.
    pub seed: u64,
    /// Whether to run the (comparatively costly) virtual tensile test.
    pub tensile: bool,
}

impl ProcessPlan {
    /// The paper's default chain: CatalystEX settings on the Dimension
    /// Elite FDM printer.
    pub fn fdm(resolution: Resolution, orientation: Orientation) -> Self {
        ProcessPlan {
            resolution,
            orientation,
            slicer: SlicerConfig::default(),
            printer: PrinterProfile::dimension_elite(),
            seed: 1,
            tensile: false,
        }
    }

    /// The PolyJet chain: Objet30 Pro with matching layer height.
    ///
    /// The 16 µm native layer would make simulation needlessly slow for
    /// most experiments, so the slicer runs at a 89 µm "draft" setting
    /// (still 2× finer than FDM); pass a custom [`SlicerConfig`] for the
    /// native resolution.
    pub fn polyjet(resolution: Resolution, orientation: Orientation) -> Self {
        let printer = PrinterProfile::objet30_pro();
        ProcessPlan {
            resolution,
            orientation,
            slicer: SlicerConfig {
                layer_height: 0.0889,
                road_width: printer.road_width,
                analysis_cell: 0.05,
                ..SlicerConfig::default()
            },
            printer,
            seed: 1,
            tensile: false,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style tensile-test toggle.
    pub fn with_tensile(mut self, tensile: bool) -> Self {
        self.tensile = tensile;
        self
    }
}

/// Errors from the manufacturing pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// The CAD stage failed.
    Cad(CadError),
    /// The part produced no printable geometry.
    EmptyBuild {
        /// Name of the offending part.
        part: String,
    },
    /// The printer firmware rejected the part program (limit switch).
    FirmwareRejected {
        /// Number of limit violations found.
        violations: usize,
        /// The first violation, rendered.
        first: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Cad(e) => write!(f, "cad stage failed: {e}"),
            PipelineError::EmptyBuild { part } => {
                write!(f, "part {part} produced no printable geometry")
            }
            PipelineError::FirmwareRejected { violations, first } => {
                write!(f, "printer firmware rejected the part program ({violations} violations; first: {first})")
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Cad(e) => Some(e),
            PipelineError::EmptyBuild { .. } | PipelineError::FirmwareRejected { .. } => None,
        }
    }
}

impl From<CadError> for PipelineError {
    fn from(e: CadError) -> Self {
        PipelineError::Cad(e)
    }
}

/// Tool-path statistics recorded by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ToolPathStats {
    /// Model road length (mm).
    pub model_mm: f64,
    /// Support road length (mm).
    pub support_mm: f64,
    /// Layer count.
    pub layers: usize,
    /// Print-time estimate (s).
    pub time_s: f64,
}

/// Everything one pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Name of the manufactured part.
    pub part_name: String,
    /// Triangles in the exported STL.
    pub mesh_triangles: usize,
    /// Exact binary STL size (bytes).
    pub stl_bytes: u64,
    /// Seam tessellation-mismatch report (split parts only).
    pub seam: Option<SeamReport>,
    /// Slicing defect diagnosis (Fig. 7a observables).
    pub slice_report: SliceReport,
    /// Tool-path statistics.
    pub toolpath: ToolPathStats,
    /// The printed artifact, support already dissolved.
    pub printed: PrintedPart,
    /// Internal-structure scan of the finished part.
    pub scan: ScanReport,
    /// Virtual tensile test (if requested in the plan).
    pub tensile: Option<TensileResult>,
    /// The cold-joint contact fraction used for the tensile model.
    pub joint_contact: f64,
}

/// Runs the full manufacturing chain on a part.
///
/// # Errors
///
/// Returns [`PipelineError::Cad`] if the feature history fails to resolve
/// and [`PipelineError::EmptyBuild`] if no geometry reaches the printer.
///
/// # Examples
///
/// ```no_run
/// use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
/// use am_mesh::Resolution;
/// use am_slicer::Orientation;
/// use obfuscade::{run_pipeline, ProcessPlan};
///
/// let part = tensile_bar_with_spline(&TensileBarDims::default())?;
/// let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xz).with_tensile(true);
/// let output = run_pipeline(&part, &plan)?;
/// assert!(output.slice_report.has_discontinuity()); // the planted seam shows
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_pipeline(part: &Part, plan: &ProcessPlan) -> Result<PipelineOutput, PipelineError> {
    // CAD → shells.
    let resolved = part.resolve()?;
    let params = plan.resolution.params();

    // STL export (per-body tessellation).
    let shells: Vec<TriMesh> = tessellate_shells(&resolved, &params);
    let mesh_triangles: usize = shells.iter().map(TriMesh::triangle_count).sum();
    if mesh_triangles == 0 {
        return Err(PipelineError::EmptyBuild { part: part.name().to_string() });
    }
    let stl_bytes = binary_stl_size(mesh_triangles);
    let seam = seam_report(&resolved, &params);

    // Orient, place on the bed (away from the corner — perimeter insets
    // may overshoot the footprint by a fraction of a road width), slice.
    let bed_margin = am_geom::Transform3::translation(am_geom::Vec3::new(5.0, 5.0, 0.0));
    let oriented: Vec<TriMesh> = orient_shells(&shells, plan.orientation)
        .iter()
        .map(|m| m.transformed(&bed_margin))
        .collect();
    let to_build = build_transform(&shells, plan.orientation).then(&bed_margin);
    let sliced = slice_shells(&oriented, plan.slicer.layer_height);
    let slice_report = diagnose_slices(&sliced, plan.slicer.analysis_cell);

    // Tool paths.
    let toolpath = generate_toolpath(&sliced, &plan.slicer);
    let toolpath_stats = ToolPathStats {
        model_mm: toolpath.total_length(ToolMaterial::Model),
        support_mm: toolpath.total_length(ToolMaterial::Support),
        layers: toolpath.layer_count(),
        time_s: toolpath.print_time_estimate(plan.printer.feed_mm_per_s),
    };

    // Firmware vetting (the Table 1 limit-switch mitigation), then print,
    // dissolve, inspect.
    let envelope = match plan.printer.process {
        Process::Fdm => BuildEnvelope::dimension_elite(),
        Process::PolyJet => BuildEnvelope::objet30_pro(),
    };
    let violations = check_limits(&toolpath, &envelope);
    if !violations.is_empty() {
        return Err(PipelineError::FirmwareRejected {
            violations: violations.len(),
            first: violations[0].to_string(),
        });
    }
    let mut printed = PrintedPart::from_toolpath(&toolpath, &plan.printer, to_build, plan.seed);
    printed.dissolve_support();
    let scan_report = scan(&printed);

    // Cold-joint contact: in x-y the seam's in-plane tessellation gaps
    // reduce the bonded area (fraction of the seam left open by the chord
    // mismatch); in x-z the gap opens across layers instead, measured by
    // the fraction of discontinuous layers.
    let joint_contact = match (&seam, plan.orientation) {
        (Some(s), Orientation::Xy) => {
            (1.0 - 1.5 * s.chain_mismatch / plan.slicer.road_width).clamp(0.3, 1.0)
        }
        (Some(_), Orientation::Xz) => {
            let frac = if slice_report.layers == 0 {
                0.0
            } else {
                slice_report.discontinuous_layers as f64 / slice_report.layers as f64
            };
            (1.0 - 0.5 * frac).clamp(0.3, 1.0)
        }
        (None, _) => 1.0,
    };

    // Virtual tensile test.
    let tensile = if plan.tensile {
        let config = TensileConfig {
            joint_contact,
            ..TensileConfig::fdm(plan.orientation)
        };
        let mut lattice = Lattice::from_printed(&printed, &config, plan.seed);
        Some(run_tensile_test(&mut lattice, &config))
    } else {
        None
    };

    Ok(PipelineOutput {
        part_name: part.name().to_string(),
        mesh_triangles,
        stl_bytes,
        seam,
        slice_report,
        toolpath: toolpath_stats,
        printed,
        scan: scan_report,
        tensile,
        joint_contact,
    })
}
