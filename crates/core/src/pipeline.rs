//! The end-to-end AM process chain (Fig. 1/3 of the paper): CAD → STL →
//! slice → tool path → print → post-process → inspect → test.
//!
//! The chain runs as an explicit sequence of [`Stage`]s. Every stage either
//! completes (possibly *degraded*, with the damage recorded as
//! [`Diagnostic`]s in the output) or aborts with a typed [`PipelineError`]
//! naming the stage — library code never panics on bad input. The staged
//! structure is what lets [`run_pipeline_with_faults`] inject the Table 1
//! attack catalog at the exact boundary where each attack lives.
//!
//! Since PR 3 the chain is built from **stage artifacts** — immutable
//! value objects ([`MeshArtifact`], [`SliceArtifact`], [`ToolpathArtifact`],
//! [`PrintArtifact`]) each carrying its stage outcomes and diagnostics —
//! so [`run_pipeline_cached`] can serve any prefix of the chain from a
//! content-addressed [`StageCache`] and replay a bit-identical
//! [`PipelineOutput`] without recomputation. See [`crate::cache`] for the
//! key-derivation and fault-poisoning rules, and [`crate::batch`] for the
//! shared-prefix batch front end.

use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use am_cad::{CadError, Part};
use am_fea::{
    try_run_tensile_test_reference, FeaConfigError, FeaSolver, Lattice, SolverPool,
    SolverPoolStats, TensileConfig, TensileResult,
};
use am_geom::Tolerance;
use am_par::Parallelism;
use am_mesh::{
    binary_stl_size, fingerprint, seam_report, tessellate_shells, verify_fingerprint,
    weld_vertices, Resolution, SeamReport, StlError, TriMesh,
};
use am_printer::{
    check_limits_at_feed, scan, BuildEnvelope, PrintError, PrintedPart, PrinterProfile, Process,
    ScanReport,
};
use am_slicer::{
    build_transform, diagnose_slices, orient_shells, slice_shells_scan, try_generate_toolpath,
    try_slice_shells_with, ConfigError, GcodeError, Orientation, SliceError, SliceReport,
    SlicerConfig, ToolMaterial, ToolPath, ToolpathError,
};

use crate::cache::{StageArtifact, StageCache, StageHasher, StageKey};
use crate::fault::FaultPlan;
use crate::perf::{kernel_mode, KernelMode};

/// A complete manufacturing plan: every processing choice from STL export
/// to the machine. Together with the CAD recipe (applied at part
/// construction) this realizes one [`crate::ProcessKey`].
#[derive(Debug, Clone)]
pub struct ProcessPlan {
    /// STL export resolution.
    pub resolution: Resolution,
    /// Build orientation.
    pub orientation: Orientation,
    /// Slicer settings.
    pub slicer: SlicerConfig,
    /// Printer machine profile.
    pub printer: PrinterProfile,
    /// Process-noise / specimen seed.
    pub seed: u64,
    /// Whether to run the (comparatively costly) virtual tensile test.
    pub tensile: bool,
    /// Equilibrium solver for the tensile kernel (`Optimized` mode only;
    /// the `Reference` kernel always runs its own relaxation loop).
    pub fea_solver: FeaSolver,
    /// Thread budget for the parallel kernels (slicing, deposition, FEA
    /// relaxation). Every budget produces bit-identical output; the default
    /// is serial.
    pub parallelism: Parallelism,
}

impl ProcessPlan {
    /// The paper's default chain: CatalystEX settings on the Dimension
    /// Elite FDM printer.
    pub fn fdm(resolution: Resolution, orientation: Orientation) -> Self {
        ProcessPlan {
            resolution,
            orientation,
            slicer: SlicerConfig::default(),
            printer: PrinterProfile::dimension_elite(),
            seed: 1,
            tensile: false,
            fea_solver: FeaSolver::default(),
            parallelism: Parallelism::serial(),
        }
    }

    /// The PolyJet chain: Objet30 Pro with matching layer height.
    ///
    /// The 16 µm native layer would make simulation needlessly slow for
    /// most experiments, so the slicer runs at a 89 µm "draft" setting
    /// (still 2× finer than FDM); pass a custom [`SlicerConfig`] for the
    /// native resolution.
    pub fn polyjet(resolution: Resolution, orientation: Orientation) -> Self {
        let printer = PrinterProfile::objet30_pro();
        ProcessPlan {
            resolution,
            orientation,
            slicer: SlicerConfig {
                layer_height: 0.0889,
                road_width: printer.road_width,
                analysis_cell: 0.05,
                ..SlicerConfig::default()
            },
            printer,
            seed: 1,
            tensile: false,
            fea_solver: FeaSolver::default(),
            parallelism: Parallelism::serial(),
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style tensile-test toggle.
    pub fn with_tensile(mut self, tensile: bool) -> Self {
        self.tensile = tensile;
        self
    }

    /// Builder-style thread-budget override.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builder-style tensile equilibrium-solver override.
    pub fn with_fea_solver(mut self, fea_solver: FeaSolver) -> Self {
        self.fea_solver = fea_solver;
        self
    }
}

/// A cooperative per-request compute budget, checked at stage boundaries.
///
/// The pipeline stages themselves never poll the clock — a stage that has
/// started runs to completion (so nothing half-computed can be observed or
/// cached). Between stages the runner checks the deadline and aborts with
/// [`PipelineError::DeadlineExceeded`] naming the first stage that was not
/// allowed to start. [`Deadline::none`] (the default) never expires, and a
/// run under it is bit-identical to one without deadline plumbing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline: the run can never be cancelled.
    pub fn none() -> Self {
        Deadline(None)
    }

    /// Expires at `instant`.
    pub fn at(instant: Instant) -> Self {
        Deadline(Some(instant))
    }

    /// Expires `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline(Some(Instant::now() + budget))
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.0.is_some_and(|t| Instant::now() >= t)
    }

    /// Gate before starting `stage`.
    pub(crate) fn check(&self, stage: Stage) -> Result<(), PipelineError> {
        if self.expired() {
            Err(PipelineError::DeadlineExceeded { stage })
        } else {
            Ok(())
        }
    }
}

/// The process-wide [`SolverPool`] behind every optimized tensile stage:
/// replicate sweeps and repeated pipeline runs recycle the same solver
/// scratches (CSR incidence, packed bond parameters, PCG vectors) instead
/// of re-allocating them per specimen. Results are bit-identical to
/// fresh-scratch runs — the pool only reuses allocations, never state.
fn fea_solver_pool() -> &'static SolverPool {
    static POOL: std::sync::OnceLock<SolverPool> = std::sync::OnceLock::new();
    POOL.get_or_init(SolverPool::new)
}

/// Build/reuse statistics of the process-wide tensile solver pool (see
/// [`fea_solver_pool_stats`] re-export; the CLI sweep summary prints it).
pub fn fea_solver_pool_stats() -> SolverPoolStats {
    fea_solver_pool().stats()
}

/// One stage of the manufacturing chain, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Feature-history resolution (CAD kernel).
    Cad,
    /// Tessellation / STL export, including integrity verification.
    Stl,
    /// Mesh repair (vertex welding) when the STL audit found damage.
    Repair,
    /// Orientation, placement and plane slicing.
    Slice,
    /// Tool-path planning and G-code serialization.
    ToolPath,
    /// Firmware limit-switch vetting of the part program.
    Firmware,
    /// Voxel deposition and support dissolution.
    Print,
    /// Artifact inspection (simulated CT scan).
    Inspect,
    /// Virtual tensile testing.
    Test,
}

impl Stage {
    /// Short lowercase stage name (stable, used in error messages).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Cad => "cad",
            Stage::Stl => "stl",
            Stage::Repair => "repair",
            Stage::Slice => "slice",
            Stage::ToolPath => "toolpath",
            Stage::Firmware => "firmware",
            Stage::Print => "print",
            Stage::Inspect => "inspect",
            Stage::Test => "test",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a stage finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Completed with no anomalies.
    Clean,
    /// Completed, but damage was injected, detected, or repaired — see the
    /// run's [`Diagnostic`]s.
    Degraded,
    /// Not executed (e.g. the tensile test when the plan does not request
    /// it, or repair when the STL audit found nothing to fix).
    Skipped,
}

/// The record of one executed stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageOutcome {
    /// Which stage.
    pub stage: Stage,
    /// How it finished.
    pub status: StageStatus,
}

/// One recorded anomaly: an injected fault, a detection, or a repair.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stage that recorded the anomaly.
    pub stage: Stage,
    /// Human-readable description.
    pub message: String,
    /// `true` if the pipeline repaired or tolerated the anomaly (the run
    /// degrades gracefully); `false` for pure observations such as
    /// injected-fault records and tamper evidence.
    pub recovered: bool,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.message)?;
        if self.recovered {
            write!(f, " (recovered)")?;
        }
        Ok(())
    }
}

/// Errors from the manufacturing pipeline. Every variant names its failing
/// [`Stage`] via [`PipelineError::stage`].
///
/// `Clone` lets the batch engine replay one deterministic prefix failure
/// to every plan sharing that prefix without recomputing it; a clone
/// renders identically to the original (the `StlError::Io` payload, which
/// cannot occur in the in-memory pipeline, is the one variant cloned by
/// kind + message rather than structurally).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum PipelineError {
    /// The CAD stage failed.
    Cad(CadError),
    /// The part produced no printable geometry.
    EmptyBuild {
        /// Name of the offending part.
        part: String,
    },
    /// The STL byte stream was rejected by the reader (truncation, facet
    /// bombs, non-finite vertices).
    Stl(StlError),
    /// The slicer configuration failed validation.
    InvalidConfig(ConfigError),
    /// The slicing stage rejected its input.
    Slice(SliceError),
    /// Tool-path planning rejected its input.
    Toolpath(ToolpathError),
    /// The machine-side G-code parser rejected the part program.
    Gcode(GcodeError),
    /// The printer firmware rejected the part program (limit switch).
    FirmwareRejected {
        /// Number of limit violations found.
        violations: usize,
        /// The first violation, rendered.
        first: String,
    },
    /// The deposition stage rejected the part program or machine profile.
    Print(PrintError),
    /// The virtual tensile test rejected its configuration.
    Tensile(FeaConfigError),
    /// The request's [`Deadline`] expired before this stage could start
    /// (cooperative cancellation between stages; nothing partial runs or
    /// is cached).
    DeadlineExceeded {
        /// The first stage the deadline prevented from starting.
        stage: Stage,
    },
}

impl PipelineError {
    /// The stage the error names.
    pub fn stage(&self) -> Stage {
        match self {
            PipelineError::Cad(_) => Stage::Cad,
            PipelineError::EmptyBuild { .. } | PipelineError::Stl(_) => Stage::Stl,
            PipelineError::InvalidConfig(_) | PipelineError::Slice(_) => Stage::Slice,
            PipelineError::Toolpath(_) | PipelineError::Gcode(_) => Stage::ToolPath,
            PipelineError::FirmwareRejected { .. } => Stage::Firmware,
            PipelineError::Print(_) => Stage::Print,
            PipelineError::Tensile(_) => Stage::Test,
            PipelineError::DeadlineExceeded { stage } => *stage,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Cad(e) => write!(f, "cad stage failed: {e}"),
            PipelineError::EmptyBuild { part } => {
                write!(f, "part {part} produced no printable geometry")
            }
            PipelineError::Stl(e) => write!(f, "stl stage failed: {e}"),
            PipelineError::InvalidConfig(e) => write!(f, "slice stage failed: {e}"),
            PipelineError::Slice(e) => write!(f, "slice stage failed: {e}"),
            PipelineError::Toolpath(e) => write!(f, "toolpath stage failed: {e}"),
            PipelineError::Gcode(e) => write!(f, "toolpath stage failed: {e}"),
            PipelineError::FirmwareRejected { violations, first } => {
                write!(f, "printer firmware rejected the part program ({violations} violations; first: {first})")
            }
            PipelineError::Print(e) => write!(f, "print stage failed: {e}"),
            PipelineError::Tensile(e) => write!(f, "test stage failed: {e}"),
            PipelineError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded before the {stage} stage")
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Cad(e) => Some(e),
            PipelineError::Stl(e) => Some(e),
            PipelineError::InvalidConfig(e) => Some(e),
            PipelineError::Slice(e) => Some(e),
            PipelineError::Toolpath(e) => Some(e),
            PipelineError::Gcode(e) => Some(e),
            PipelineError::Print(e) => Some(e),
            PipelineError::Tensile(e) => Some(e),
            PipelineError::EmptyBuild { .. }
            | PipelineError::FirmwareRejected { .. }
            | PipelineError::DeadlineExceeded { .. } => None,
        }
    }
}

impl From<CadError> for PipelineError {
    fn from(e: CadError) -> Self {
        PipelineError::Cad(e)
    }
}

/// Tool-path statistics recorded by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ToolPathStats {
    /// Model road length (mm).
    pub model_mm: f64,
    /// Support road length (mm).
    pub support_mm: f64,
    /// Layer count.
    pub layers: usize,
    /// Print-time estimate (s).
    pub time_s: f64,
}

/// Everything one pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Name of the manufactured part.
    pub part_name: String,
    /// Triangles in the exported STL.
    pub mesh_triangles: usize,
    /// Exact binary STL size (bytes).
    pub stl_bytes: u64,
    /// Seam tessellation-mismatch report (split parts only).
    pub seam: Option<SeamReport>,
    /// Slicing defect diagnosis (Fig. 7a observables).
    pub slice_report: SliceReport,
    /// Tool-path statistics.
    pub toolpath: ToolPathStats,
    /// The printed artifact, support already dissolved. Shared (`Arc`) so
    /// cached pipeline runs can return the voxel grid without copying it;
    /// all read access goes through `Deref` exactly as before.
    pub printed: Arc<PrintedPart>,
    /// Internal-structure scan of the finished part.
    pub scan: ScanReport,
    /// Virtual tensile test (if requested in the plan).
    pub tensile: Option<TensileResult>,
    /// The cold-joint contact fraction used for the tensile model.
    pub joint_contact: f64,
    /// Per-stage outcomes, in execution order.
    pub stages: Vec<StageOutcome>,
    /// Anomalies recorded along the way (injected faults, tamper evidence,
    /// repairs). Empty for a clean run.
    pub diagnostics: Vec<Diagnostic>,
}

impl PipelineOutput {
    /// `true` if any executed stage finished degraded.
    pub fn is_degraded(&self) -> bool {
        self.stages.iter().any(|s| s.status == StageStatus::Degraded)
    }
}

/// Runs the full manufacturing chain on a part.
///
/// Equivalent to [`run_pipeline_with_faults`] with [`FaultPlan::none`]:
/// bit-identical output, no injected damage.
///
/// # Errors
///
/// Returns [`PipelineError::Cad`] if the feature history fails to resolve
/// and [`PipelineError::EmptyBuild`] if no geometry reaches the printer.
///
/// # Examples
///
/// ```no_run
/// use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
/// use am_mesh::Resolution;
/// use am_slicer::Orientation;
/// use obfuscade::{run_pipeline, ProcessPlan};
///
/// let part = tensile_bar_with_spline(&TensileBarDims::default())?;
/// let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xz).with_tensile(true);
/// let output = run_pipeline(&part, &plan)?;
/// assert!(output.slice_report.has_discontinuity()); // the planted seam shows
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_pipeline(part: &Part, plan: &ProcessPlan) -> Result<PipelineOutput, PipelineError> {
    run_pipeline_with_faults(part, plan, &FaultPlan::none())
}

/// Derives the per-fault RNG seed: deterministic in the plan seed, the
/// stage, and the fault's position, so two faults at one stage damage
/// different facets.
fn fault_seed(plan_seed: u64, stage: Stage, index: usize) -> u64 {
    plan_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((stage as u64) << 32)
        .wrapping_add(index as u64 + 1)
}

/// Runs the full manufacturing chain with a [`FaultPlan`] injected at the
/// stage boundaries.
///
/// Recoverable faults degrade the run: damage is repaired (vertex welding)
/// or tolerated, and every anomaly lands in
/// [`PipelineOutput::diagnostics`]. Unrecoverable faults abort with a typed
/// [`PipelineError`] whose [`PipelineError::stage`] names where the chain
/// stopped. Same part, plan and fault plan ⇒ identical result.
///
/// # Errors
///
/// Any [`PipelineError`] variant, depending on the injected faults.
pub fn run_pipeline_with_faults(
    part: &Part,
    plan: &ProcessPlan,
    faults: &FaultPlan,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline_inner(part, plan, faults, None, Deadline::none())
}

/// [`run_pipeline_with_faults`], serving immutable stage artifacts from a
/// content-addressed [`StageCache`].
///
/// Output is **bit-identical** to the uncached run (pinned by
/// `batch_determinism.rs`): the cache stores exactly what each stage
/// computes, keyed over that stage's complete input set, and errors are
/// never cached. Only wall-clock time changes.
///
/// # Errors
///
/// Same as [`run_pipeline_with_faults`].
pub fn run_pipeline_cached(
    part: &Part,
    plan: &ProcessPlan,
    faults: &FaultPlan,
    cache: &StageCache,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline_inner(part, plan, faults, Some(cache), Deadline::none())
}

/// [`run_pipeline_cached`] under a cooperative [`Deadline`].
///
/// The deadline is checked **between** stages only: a stage that has
/// started runs to completion and is cached normally, so an expired
/// deadline can never poison the shared cache with partial artifacts. If
/// the deadline never expires during the run, the output is bit-identical
/// to [`run_pipeline_cached`].
///
/// # Errors
///
/// Same as [`run_pipeline_with_faults`], plus
/// [`PipelineError::DeadlineExceeded`] naming the first stage the expired
/// deadline prevented from starting.
pub fn run_pipeline_cached_deadline(
    part: &Part,
    plan: &ProcessPlan,
    faults: &FaultPlan,
    cache: &StageCache,
    deadline: Deadline,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline_inner(part, plan, faults, Some(cache), deadline)
}

/// The planned tool path of one `(part, plan, fault plan)` evaluation,
/// with the content-addressed identity the chain assigned it.
///
/// This is the hand-off point to the detection subsystem (`am-detect`):
/// side-channel trace synthesis consumes the planned tool path, and the
/// detect/sanitize stage keys chain off [`ToolpathPlan::key`] exactly as
/// the print key does — so detection results cache and route like
/// pipeline stages.
#[derive(Debug, Clone)]
pub struct ToolpathPlan {
    /// The planned (fault-injected, firmware-vetted) tool path.
    pub toolpath: ToolPath,
    /// Tool-path statistics (road lengths, layer count, time estimate).
    pub stats: ToolPathStats,
    /// The slice-stage build transform — what the deposition kernels need
    /// to print this tool path (see [`print_toolpath`]).
    pub to_build: am_geom::Transform3,
    /// The tool-path stage key: chained mesh → slice → toolpath hash of
    /// the complete input set, fault-poisoned at the striking stage.
    pub key: StageKey,
}

/// Evaluates (and caches) the chain through the tool-path stage and
/// returns the planned tool path plus its stage key.
///
/// Runs exactly the pipeline's own mesh → slice → tool-path stages
/// against `cache` — a warm prefix is served without recomputation, and
/// a cold one is warmed for every later caller (the batch engine, a
/// `run` job for the same spec, another detect job).
///
/// # Errors
///
/// Any [`PipelineError`] the chain raises through the tool-path stage —
/// including the typed process-guard rejections injected faults provoke
/// (these are what the detection suite records as *blocked upstream*) —
/// plus [`PipelineError::DeadlineExceeded`] between stages.
pub fn plan_toolpath(
    part: &Part,
    plan: &ProcessPlan,
    faults: &FaultPlan,
    cache: &StageCache,
    deadline: Deadline,
) -> Result<ToolpathPlan, PipelineError> {
    plan.slicer.validate().map_err(PipelineError::InvalidConfig)?;
    plan.printer.validate().map_err(|e| PipelineError::Print(PrintError::Profile(e)))?;
    let keys = plan_keys(part, plan, faults);
    deadline.check(Stage::Cad)?;
    let mesh = obtain_mesh(part, plan, faults, Some((cache, keys.mesh)))?;
    deadline.check(Stage::Slice)?;
    let slice = obtain_slice(&mesh, plan, faults, Some((cache, keys.slice)))?;
    deadline.check(Stage::ToolPath)?;
    let toolpath = obtain_toolpath(&slice, plan, faults, Some((cache, keys.toolpath)))?;
    Ok(ToolpathPlan {
        toolpath: toolpath.toolpath.clone(),
        stats: toolpath.stats,
        to_build: slice.to_build,
        key: keys.toolpath,
    })
}

/// Prints an arbitrary tool path under `plan`'s machine profile and
/// process-noise seed, through the **same** kernel dispatch as the
/// pipeline's print stage, and returns the deposited part with support
/// dissolved.
///
/// This is the sanitizer's fingerprint oracle: printing the original and
/// the sanitized tool path through one code path makes
/// [`am_printer::PrintedPart::grid_digest`] equality a proof that the
/// strip changed nothing the printer can see. Results are **not**
/// cached — the tool path is caller-modified, so it has no stage key.
///
/// # Errors
///
/// [`PipelineError::Print`] when deposition fails (empty build, voxel
/// caps).
pub fn print_toolpath(
    toolpath: &ToolPath,
    plan: &ProcessPlan,
    to_build: am_geom::Transform3,
) -> Result<PrintedPart, PipelineError> {
    let mut printed = match kernel_mode() {
        KernelMode::SpanPlan => PrintedPart::try_from_toolpath_planned(
            toolpath,
            &plan.printer,
            to_build,
            plan.seed,
            plan.parallelism,
        ),
        KernelMode::Optimized => PrintedPart::try_from_toolpath_with(
            toolpath,
            &plan.printer,
            to_build,
            plan.seed,
            plan.parallelism,
        ),
        KernelMode::Reference => PrintedPart::try_from_toolpath_reference(
            toolpath,
            &plan.printer,
            to_build,
            plan.seed,
        ),
    }
    .map_err(PipelineError::Print)?;
    printed.dissolve_support();
    Ok(printed)
}

// --- Stage artifacts ----------------------------------------------------

/// CAD + STL export + integrity audit + repair, as one immutable artifact.
#[derive(Debug)]
pub(crate) struct MeshArtifact {
    pub(crate) shells: Vec<TriMesh>,
    pub(crate) mesh_triangles: usize,
    pub(crate) stl_bytes: u64,
    pub(crate) seam: Option<SeamReport>,
    pub(crate) outcomes: Vec<StageOutcome>,
    pub(crate) diagnostics: Vec<Diagnostic>,
}

impl MeshArtifact {
    pub(crate) fn cost_bytes(&self) -> usize {
        let geometry: usize = self
            .shells
            .iter()
            .map(|s| s.vertex_count() * 24 + s.triangle_count() * 12)
            .sum();
        geometry + diagnostics_cost(&self.diagnostics) + 512
    }
}

/// Orientation, bed placement and plane slicing.
#[derive(Debug)]
pub(crate) struct SliceArtifact {
    pub(crate) sliced: am_slicer::SlicedModel,
    pub(crate) slice_report: SliceReport,
    /// Model→build transform (orientation + bed margin).
    pub(crate) to_build: am_geom::Transform3,
    /// The *effective* slicer configuration: the plan's, after any
    /// injected slicer faults mutated it.
    pub(crate) config: SlicerConfig,
    pub(crate) outcomes: Vec<StageOutcome>,
    pub(crate) diagnostics: Vec<Diagnostic>,
}

impl SliceArtifact {
    pub(crate) fn cost_bytes(&self) -> usize {
        let geometry: usize = self
            .sliced
            .layers
            .iter()
            .map(|l| {
                let loops: usize = l.loops.iter().map(|c| c.polygon.len() * 16 + 48).sum();
                let open: usize = l.open_paths.iter().map(|p| p.len() * 16 + 48).sum();
                64 + loops + open
            })
            .sum();
        geometry + diagnostics_cost(&self.diagnostics) + 512
    }
}

/// Tool-path planning plus firmware vetting (the part program as the
/// machine will actually run it — firmware faults already applied).
#[derive(Debug)]
pub(crate) struct ToolpathArtifact {
    pub(crate) toolpath: ToolPath,
    pub(crate) stats: ToolPathStats,
    pub(crate) outcomes: Vec<StageOutcome>,
    pub(crate) diagnostics: Vec<Diagnostic>,
}

impl ToolpathArtifact {
    pub(crate) fn cost_bytes(&self) -> usize {
        self.toolpath.roads.len() * 64 + diagnostics_cost(&self.diagnostics) + 512
    }
}

/// Deposition (support already dissolved) plus the CT inspection scan.
#[derive(Debug)]
pub(crate) struct PrintArtifact {
    pub(crate) printed: Arc<PrintedPart>,
    pub(crate) scan: ScanReport,
    pub(crate) outcomes: Vec<StageOutcome>,
}

impl PrintArtifact {
    pub(crate) fn cost_bytes(&self) -> usize {
        let (nx, ny, nz) = self.printed.dims();
        nx * ny * nz * 3 + 512
    }
}

fn diagnostics_cost(diagnostics: &[Diagnostic]) -> usize {
    diagnostics.iter().map(|d| d.message.len() + 48).sum()
}

fn tensile_cost(result: &TensileResult) -> usize {
    result.curve.len() * 16 + result.fracture_path.len() * 16 + 256
}

// --- Canonical input hashing ---------------------------------------------
//
// Every foreign input type a stage key absorbs is hashed field by field:
// enum variants write an explicit tag byte, floats go in as IEEE-754 bits
// via `write_f64`, and collections are length-prefixed. No `Debug`
// rendering is ever hashed — a future custom formatting impl that rounds
// or omits a geometry-relevant field could silently alias two distinct
// inputs, and the cache would serve wrong artifacts. (Fault entries are
// the one `Display`-based exception: `FaultPlan` is crate-local and its
// renderings round-trip through `FromStr`, so they are injective by
// construction.) `key_schema_is_field_sensitive` in the tests below pins
// the property: perturbing any single input field changes the derived key.

fn hash_point2(h: &mut StageHasher, p: am_geom::Point2) {
    h.write_f64(p.x);
    h.write_f64(p.y);
}

fn hash_point3(h: &mut StageHasher, p: am_geom::Point3) {
    h.write_f64(p.x);
    h.write_f64(p.y);
    h.write_f64(p.z);
}

fn hash_spline(h: &mut StageHasher, spline: &am_geom::CatmullRom) {
    let points = spline.through_points();
    h.write_u64(points.len() as u64);
    for &p in points {
        hash_point2(h, p);
    }
}

fn hash_profile(h: &mut StageHasher, profile: &am_cad::Profile) {
    let edges = profile.edges();
    h.write_u64(edges.len() as u64);
    for edge in edges {
        match edge {
            am_cad::ProfileEdge::Line(seg) => {
                h.write_u8(0);
                hash_point2(h, seg.start);
                hash_point2(h, seg.end);
            }
            am_cad::ProfileEdge::Spline(spline) => {
                h.write_u8(1);
                hash_spline(h, spline);
            }
        }
    }
}

fn hash_solid(h: &mut StageHasher, shape: &am_cad::SolidShape) {
    match shape {
        am_cad::SolidShape::Extrusion { profile, z_min, z_max } => {
            h.write_u8(0);
            hash_profile(h, profile);
            h.write_f64(*z_min);
            h.write_f64(*z_max);
        }
        am_cad::SolidShape::Cuboid(aabb) => {
            h.write_u8(1);
            hash_point3(h, aabb.min);
            hash_point3(h, aabb.max);
        }
        am_cad::SolidShape::Sphere { center, radius } => {
            h.write_u8(2);
            hash_point3(h, *center);
            h.write_f64(*radius);
        }
    }
}

fn hash_feature(h: &mut StageHasher, feature: &am_cad::Feature) {
    use am_cad::{BodyKind, Feature, MaterialRemoval};
    match feature {
        Feature::Base(shape) => {
            h.write_u8(0);
            hash_solid(h, shape);
        }
        Feature::SplineSplit { spline } => {
            h.write_u8(1);
            hash_spline(h, spline);
        }
        Feature::EmbedSphere { center, radius, kind, removal } => {
            h.write_u8(2);
            hash_point3(h, *center);
            h.write_f64(*radius);
            h.write_u8(match kind {
                BodyKind::Solid => 0,
                BodyKind::Surface => 1,
            });
            h.write_u8(match removal {
                MaterialRemoval::With => 0,
                MaterialRemoval::Without => 1,
            });
        }
        Feature::CutHole { profile } => {
            h.write_u8(3);
            hash_profile(h, profile);
        }
    }
}

fn hash_part(h: &mut StageHasher, part: &Part) {
    h.write_str(part.name());
    h.write_u64(part.features().len() as u64);
    for feature in part.features() {
        hash_feature(h, feature);
    }
}

fn hash_resolution(h: &mut StageHasher, resolution: Resolution) {
    h.write_u8(match resolution {
        Resolution::Coarse => 0,
        Resolution::Fine => 1,
        Resolution::Custom => 2,
    });
}

fn hash_orientation(h: &mut StageHasher, orientation: Orientation) {
    h.write_u8(match orientation {
        Orientation::Xy => 0,
        Orientation::Xz => 1,
    });
}

fn hash_slicer_config(h: &mut StageHasher, config: &SlicerConfig) {
    h.write_f64(config.layer_height);
    h.write_f64(config.road_width);
    h.write_f64(config.analysis_cell);
    h.write_u8(config.support as u8);
    match config.infill {
        am_slicer::InfillStyle::Solid => h.write_u8(0),
        am_slicer::InfillStyle::Sparse { density } => {
            h.write_u8(1);
            h.write_f64(density);
        }
    }
}

fn hash_printer_profile(h: &mut StageHasher, profile: &PrinterProfile) {
    h.write_str(profile.name);
    h.write_u8(match profile.process {
        Process::Fdm => 0,
        Process::PolyJet => 1,
    });
    h.write_f64(profile.layer_height);
    h.write_f64(profile.road_width);
    h.write_f64(profile.feed_mm_per_s);
    let m = &profile.model_material;
    h.write_str(m.name);
    h.write_f64(m.young_modulus_gpa);
    h.write_f64(m.tensile_strength_mpa);
    h.write_f64(m.elongation_at_break);
    h.write_f64(m.density_g_cm3);
    h.write_u8(profile.soluble_support as u8);
    h.write_f64(profile.road_bond);
    h.write_f64(profile.layer_bond);
    h.write_f64(profile.joint_bond);
    h.write_f64(profile.joint_ductility);
    h.write_f64(profile.noise_sigma);
}

// --- Stage keys ---------------------------------------------------------

/// The chained stage keys of one `(part, plan, fault plan)` evaluation.
///
/// Derivation is pure input hashing — no stage runs — so the batch engine
/// can group plans by shared prefix before doing any work. The tensile key
/// is not here: it depends on the joint-contact fraction, which is only
/// known after slicing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanKeys {
    pub(crate) mesh: StageKey,
    pub(crate) slice: StageKey,
    pub(crate) toolpath: StageKey,
    pub(crate) print: StageKey,
}

pub(crate) fn plan_keys(part: &Part, plan: &ProcessPlan, faults: &FaultPlan) -> PlanKeys {
    let mesh = mesh_key(part, plan, faults);
    let slice = slice_key(mesh, plan, faults);
    let toolpath = toolpath_key(slice, plan, faults);
    let print = print_key(toolpath, plan);
    PlanKeys { mesh, slice, toolpath, print }
}

/// Mesh-stage key: part recipe (the full feature history, hashed field by
/// field) + STL export resolution, poisoned by any STL faults (entries +
/// the fault seed the stage draws from).
fn mesh_key(part: &Part, plan: &ProcessPlan, faults: &FaultPlan) -> StageKey {
    let mut h = StageHasher::new("obfuscade/mesh/v2");
    hash_part(&mut h, part);
    hash_resolution(&mut h, plan.resolution);
    h.write_u64(faults.stl.len() as u64);
    if !faults.stl.is_empty() {
        h.write_u64(faults.seed);
        for fault in &faults.stl {
            h.write_str(&fault.to_string());
        }
    }
    h.finish()
}

/// Slice-stage key: mesh key + orientation + the plan's slicer config,
/// poisoned by slicer faults. The kernel mode's discriminant enters here
/// (slicing is the first kernel-dispatched stage) and every downstream key
/// inherits it through the chain, so `Reference`, `Optimized`, and
/// `SpanPlan` runs never alias — a `SpanPlan` print never resurrects a
/// cached `Optimized` `print` entry or vice versa.
fn slice_key(mesh: StageKey, plan: &ProcessPlan, faults: &FaultPlan) -> StageKey {
    let mut h = StageHasher::new("obfuscade/slice/v2");
    h.write_key(mesh);
    hash_orientation(&mut h, plan.orientation);
    hash_slicer_config(&mut h, &plan.slicer);
    h.write_u64(faults.slicer.len() as u64);
    for fault in &faults.slicer {
        h.write_str(&fault.to_string());
    }
    h.write_u8(kernel_mode() as u8);
    h.finish()
}

/// Tool-path-stage key: slice key + printer profile (road planning and the
/// firmware envelope both read it), poisoned by tool-path faults (entries
/// + fault seed) and firmware faults.
fn toolpath_key(slice: StageKey, plan: &ProcessPlan, faults: &FaultPlan) -> StageKey {
    let mut h = StageHasher::new("obfuscade/toolpath/v2");
    h.write_key(slice);
    hash_printer_profile(&mut h, &plan.printer);
    h.write_u64(faults.toolpath.len() as u64);
    if !faults.toolpath.is_empty() {
        h.write_u64(faults.seed);
    }
    for fault in &faults.toolpath {
        h.write_str(&fault.to_string());
    }
    h.write_u64(faults.firmware.len() as u64);
    for fault in &faults.firmware {
        h.write_str(&fault.to_string());
    }
    h.finish()
}

/// Print-stage key: tool-path key + the plan's process-noise seed.
fn print_key(toolpath: StageKey, plan: &ProcessPlan) -> StageKey {
    let mut h = StageHasher::new("obfuscade/print/v2");
    h.write_key(toolpath);
    h.write_u64(plan.seed);
    h.finish()
}

/// Tensile-stage key: print key + orientation (selects the bond model) +
/// the equilibrium solver + the joint-contact fraction, exact to the bit.
/// The solver enters the key because the two solvers agree only to solver
/// tolerance, not to the bit — a cache shared between them must never
/// alias their results (v3 bumps the domain for the added field).
fn tensile_key(print: StageKey, plan: &ProcessPlan, joint_contact: f64) -> StageKey {
    let mut h = StageHasher::new("obfuscade/tensile/v3");
    h.write_key(print);
    hash_orientation(&mut h, plan.orientation);
    h.write_u8(match plan.fea_solver {
        FeaSolver::NewtonPcg => 0,
        FeaSolver::Relaxation => 1,
    });
    h.write_f64(joint_contact);
    h.finish()
}

// --- Stage implementations ----------------------------------------------

/// CAD resolve, tessellation, STL fault injection + fingerprint audit,
/// and repair welding. Everything the monolithic runner did up to the
/// slicer, verbatim.
fn mesh_stage(
    part: &Part,
    plan: &ProcessPlan,
    faults: &FaultPlan,
) -> Result<MeshArtifact, PipelineError> {
    let mut outcomes: Vec<StageOutcome> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    // --- CAD -------------------------------------------------------------
    let resolved = part.resolve()?;
    outcomes.push(StageOutcome { stage: Stage::Cad, status: StageStatus::Clean });

    // --- STL export + integrity audit ------------------------------------
    let params = plan.resolution.params();
    let mut shells: Vec<TriMesh> = tessellate_shells(&resolved, &params);
    let pristine: Vec<_> = shells.iter().map(fingerprint).collect();

    for (i, fault) in faults.stl.iter().enumerate() {
        let seed = fault_seed(faults.seed, Stage::Stl, i);
        for shell in &mut shells {
            *shell = fault.apply(shell, seed).map_err(PipelineError::Stl)?;
        }
        diagnostics.push(Diagnostic {
            stage: Stage::Stl,
            message: format!("injected {fault}"),
            recovered: false,
        });
    }
    // The Table 1 mitigation: verify the received file against the
    // registered fingerprint. Evidence is recorded, not fatal — the
    // counterfeiter prints anyway; the defender reads the diagnostics.
    if !faults.stl.is_empty() {
        for (body, (shell, fp)) in shells.iter().zip(&pristine).enumerate() {
            for evidence in verify_fingerprint(shell, fp) {
                diagnostics.push(Diagnostic {
                    stage: Stage::Stl,
                    message: format!("fingerprint mismatch on body {body}: {evidence:?}"),
                    recovered: false,
                });
            }
        }
    }
    let mesh_triangles: usize = shells.iter().map(TriMesh::triangle_count).sum();
    if mesh_triangles == 0 {
        return Err(PipelineError::EmptyBuild { part: part.name().to_string() });
    }
    let stl_bytes = binary_stl_size(mesh_triangles);
    let seam = seam_report(&resolved, &params);
    outcomes.push(StageOutcome {
        stage: Stage::Stl,
        status: if faults.stl.is_empty() { StageStatus::Clean } else { StageStatus::Degraded },
    });

    // --- Repair ----------------------------------------------------------
    // Weld only when the audit found sliver damage: an unfaulted run must
    // stay bit-identical to the historical pipeline.
    let sliver_tol = Tolerance::new(1e-9);
    let damaged = shells.iter().any(|s| s.degenerate_count(sliver_tol) > 0);
    if damaged {
        let mut dropped = 0usize;
        for shell in &mut shells {
            let (welded, report) = weld_vertices(shell, sliver_tol);
            dropped += report.triangles_dropped;
            *shell = welded;
        }
        diagnostics.push(Diagnostic {
            stage: Stage::Repair,
            message: format!("welded shells, dropped {dropped} degenerate triangles"),
            recovered: true,
        });
        if shells.iter().map(TriMesh::triangle_count).sum::<usize>() == 0 {
            return Err(PipelineError::EmptyBuild { part: part.name().to_string() });
        }
        outcomes.push(StageOutcome { stage: Stage::Repair, status: StageStatus::Degraded });
    } else {
        outcomes.push(StageOutcome { stage: Stage::Repair, status: StageStatus::Skipped });
    }

    Ok(MeshArtifact { shells, mesh_triangles, stl_bytes, seam, outcomes, diagnostics })
}

/// Slicer fault application, orientation, bed placement and slicing.
fn slice_stage(
    mesh: &MeshArtifact,
    plan: &ProcessPlan,
    faults: &FaultPlan,
) -> Result<SliceArtifact, PipelineError> {
    let mut outcomes: Vec<StageOutcome> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    let mut config = plan.slicer;
    for fault in &faults.slicer {
        fault.apply(&mut config);
        diagnostics.push(Diagnostic {
            stage: Stage::Slice,
            message: format!("injected {fault}"),
            recovered: false,
        });
    }
    if !faults.slicer.is_empty() {
        // Re-vet the effective (possibly sabotaged) configuration.
        config.validate().map_err(PipelineError::InvalidConfig)?;
    }

    // Orient, place on the bed (away from the corner — perimeter insets
    // may overshoot the footprint by a fraction of a road width), slice.
    let bed_margin = am_geom::Transform3::translation(am_geom::Vec3::new(5.0, 5.0, 0.0));
    let oriented: Vec<TriMesh> = orient_shells(&mesh.shells, plan.orientation)
        .iter()
        .map(|m| m.transformed(&bed_margin))
        .collect();
    let to_build = build_transform(&mesh.shells, plan.orientation).then(&bed_margin);
    let sliced = match kernel_mode() {
        KernelMode::Optimized | KernelMode::SpanPlan => {
            try_slice_shells_with(&oriented, config.layer_height, plan.parallelism)
        }
        KernelMode::Reference => slice_shells_scan(&oriented, config.layer_height),
    }
    .map_err(PipelineError::Slice)?;
    let slice_report = diagnose_slices(&sliced, config.analysis_cell);
    let open_paths: usize = sliced.layers.iter().map(|l| l.open_paths.len()).sum();
    if open_paths > 0 {
        diagnostics.push(Diagnostic {
            stage: Stage::Slice,
            message: format!("{open_paths} open contour chains tolerated (damaged mesh)"),
            recovered: true,
        });
    }
    outcomes.push(StageOutcome {
        stage: Stage::Slice,
        status: if open_paths > 0 || !faults.slicer.is_empty() {
            StageStatus::Degraded
        } else {
            StageStatus::Clean
        },
    });

    Ok(SliceArtifact { sliced, slice_report, to_build, config, outcomes, diagnostics })
}

/// Tool-path planning, tool-path fault injection, and firmware vetting.
fn toolpath_stage(
    slice: &SliceArtifact,
    plan: &ProcessPlan,
    faults: &FaultPlan,
) -> Result<ToolpathArtifact, PipelineError> {
    let mut outcomes: Vec<StageOutcome> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let config = &slice.config;

    let mut toolpath =
        try_generate_toolpath(&slice.sliced, config).map_err(PipelineError::Toolpath)?;
    for (i, fault) in faults.toolpath.iter().enumerate() {
        let seed = fault_seed(faults.seed, Stage::ToolPath, i);
        let note = fault.apply(&mut toolpath, seed).map_err(PipelineError::Gcode)?;
        diagnostics.push(Diagnostic {
            stage: Stage::ToolPath,
            message: format!("injected {fault}: {note}"),
            recovered: true,
        });
    }
    let stats = ToolPathStats {
        model_mm: toolpath.total_length(ToolMaterial::Model),
        support_mm: toolpath.total_length(ToolMaterial::Support),
        layers: toolpath.layer_count(),
        // The profile was validated up front, so the feed is positive.
        time_s: toolpath.try_print_time_estimate(plan.printer.feed_mm_per_s).unwrap_or(0.0),
    };
    outcomes.push(StageOutcome {
        stage: Stage::ToolPath,
        status: if faults.toolpath.is_empty() { StageStatus::Clean } else { StageStatus::Degraded },
    });

    // --- Firmware vetting (the Table 1 limit-switch mitigation) ----------
    let mut effective_feed = plan.printer.feed_mm_per_s;
    for fault in &faults.firmware {
        fault.apply(&mut toolpath, &mut effective_feed);
        diagnostics.push(Diagnostic {
            stage: Stage::Firmware,
            message: format!("injected {fault}"),
            recovered: false,
        });
    }
    let envelope = match plan.printer.process {
        Process::Fdm => BuildEnvelope::dimension_elite(),
        Process::PolyJet => BuildEnvelope::objet30_pro(),
    };
    let violations = check_limits_at_feed(&toolpath, &envelope, Some(effective_feed));
    if !violations.is_empty() {
        return Err(PipelineError::FirmwareRejected {
            violations: violations.len(),
            first: violations[0].to_string(),
        });
    }
    outcomes.push(StageOutcome {
        stage: Stage::Firmware,
        status: if faults.firmware.is_empty() { StageStatus::Clean } else { StageStatus::Degraded },
    });

    Ok(ToolpathArtifact { toolpath, stats, outcomes, diagnostics })
}

/// Deposition, support dissolution and the CT inspection scan.
fn print_stage(
    toolpath: &ToolpathArtifact,
    slice: &SliceArtifact,
    plan: &ProcessPlan,
) -> Result<PrintArtifact, PipelineError> {
    let mut outcomes: Vec<StageOutcome> = Vec::new();

    let mut printed = match kernel_mode() {
        KernelMode::SpanPlan => PrintedPart::try_from_toolpath_planned(
            &toolpath.toolpath,
            &plan.printer,
            slice.to_build,
            plan.seed,
            plan.parallelism,
        ),
        KernelMode::Optimized => PrintedPart::try_from_toolpath_with(
            &toolpath.toolpath,
            &plan.printer,
            slice.to_build,
            plan.seed,
            plan.parallelism,
        ),
        KernelMode::Reference => PrintedPart::try_from_toolpath_reference(
            &toolpath.toolpath,
            &plan.printer,
            slice.to_build,
            plan.seed,
        ),
    }
    .map_err(PipelineError::Print)?;
    printed.dissolve_support();
    outcomes.push(StageOutcome { stage: Stage::Print, status: StageStatus::Clean });

    let scan_report = scan(&printed);
    outcomes.push(StageOutcome { stage: Stage::Inspect, status: StageStatus::Clean });

    Ok(PrintArtifact { printed: Arc::new(printed), scan: scan_report, outcomes })
}

/// The virtual tensile test. The optimized kernel runs the plan's
/// [`FeaSolver`] through the process-wide [`SolverPool`], so replicate
/// sweeps recycle solver state across specimens.
fn tensile_stage(
    print: &PrintArtifact,
    plan: &ProcessPlan,
    joint_contact: f64,
) -> Result<TensileResult, PipelineError> {
    let tensile_config = TensileConfig {
        joint_contact,
        solver: plan.fea_solver,
        ..TensileConfig::fdm(plan.orientation)
    };
    let mut lattice = Lattice::try_from_printed(&print.printed, &tensile_config, plan.seed)
        .map_err(PipelineError::Tensile)?;
    match kernel_mode() {
        KernelMode::Optimized | KernelMode::SpanPlan => fea_solver_pool()
            .run(&mut lattice, &tensile_config, plan.parallelism)
            .map_err(PipelineError::Tensile),
        KernelMode::Reference => try_run_tensile_test_reference(&mut lattice, &tensile_config)
            .map_err(PipelineError::Tensile),
    }
}

// --- Cached stage lookup ------------------------------------------------

fn obtain_mesh(
    part: &Part,
    plan: &ProcessPlan,
    faults: &FaultPlan,
    cache: Option<(&StageCache, StageKey)>,
) -> Result<Arc<MeshArtifact>, PipelineError> {
    if let Some((cache, key)) = cache {
        if let Some(hit) = cache.get(key).and_then(StageArtifact::into_mesh) {
            return Ok(hit);
        }
        let built = Arc::new(mesh_stage(part, plan, faults)?);
        cache.insert(key, StageArtifact::Mesh(Arc::clone(&built)), built.cost_bytes());
        Ok(built)
    } else {
        Ok(Arc::new(mesh_stage(part, plan, faults)?))
    }
}

fn obtain_slice(
    mesh: &MeshArtifact,
    plan: &ProcessPlan,
    faults: &FaultPlan,
    cache: Option<(&StageCache, StageKey)>,
) -> Result<Arc<SliceArtifact>, PipelineError> {
    if let Some((cache, key)) = cache {
        if let Some(hit) = cache.get(key).and_then(StageArtifact::into_slice) {
            return Ok(hit);
        }
        let built = Arc::new(slice_stage(mesh, plan, faults)?);
        cache.insert(key, StageArtifact::Slice(Arc::clone(&built)), built.cost_bytes());
        Ok(built)
    } else {
        Ok(Arc::new(slice_stage(mesh, plan, faults)?))
    }
}

fn obtain_toolpath(
    slice: &SliceArtifact,
    plan: &ProcessPlan,
    faults: &FaultPlan,
    cache: Option<(&StageCache, StageKey)>,
) -> Result<Arc<ToolpathArtifact>, PipelineError> {
    if let Some((cache, key)) = cache {
        if let Some(hit) = cache.get(key).and_then(StageArtifact::into_toolpath) {
            return Ok(hit);
        }
        let built = Arc::new(toolpath_stage(slice, plan, faults)?);
        cache.insert(key, StageArtifact::Toolpath(Arc::clone(&built)), built.cost_bytes());
        Ok(built)
    } else {
        Ok(Arc::new(toolpath_stage(slice, plan, faults)?))
    }
}

fn obtain_print(
    toolpath: &ToolpathArtifact,
    slice: &SliceArtifact,
    plan: &ProcessPlan,
    cache: Option<(&StageCache, StageKey)>,
) -> Result<Arc<PrintArtifact>, PipelineError> {
    if let Some((cache, key)) = cache {
        if let Some(hit) = cache.get(key).and_then(StageArtifact::into_print) {
            return Ok(hit);
        }
        let built = Arc::new(print_stage(toolpath, slice, plan)?);
        cache.insert(key, StageArtifact::Print(Arc::clone(&built)), built.cost_bytes());
        Ok(built)
    } else {
        Ok(Arc::new(print_stage(toolpath, slice, plan)?))
    }
}

/// How deep [`warm_prefix`] evaluates the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum PrefixDepth {
    Mesh,
    Slice,
    Toolpath,
}

/// Evaluates (and caches) the chain's shared prefix up to `depth`,
/// without printing or testing. The batch engine calls this once per
/// *unique* prefix key so divergent suffixes find their prefix hot.
///
/// Errors are returned but never enter the [`StageCache`]; the batch
/// engine records them in a per-batch side map instead (see
/// [`crate::batch`]), so an erroring prefix — which can fail *after*
/// substantial work, e.g. a tessellation allocation cap — is still only
/// computed once per batch.
pub(crate) fn warm_prefix(
    part: &Part,
    plan: &ProcessPlan,
    faults: &FaultPlan,
    cache: &StageCache,
    depth: PrefixDepth,
    deadline: Deadline,
) -> Result<(), PipelineError> {
    plan.slicer.validate().map_err(PipelineError::InvalidConfig)?;
    plan.printer.validate().map_err(|e| PipelineError::Print(PrintError::Profile(e)))?;
    let keys = plan_keys(part, plan, faults);
    deadline.check(Stage::Cad)?;
    let mesh = obtain_mesh(part, plan, faults, Some((cache, keys.mesh)))?;
    if depth < PrefixDepth::Slice {
        return Ok(());
    }
    deadline.check(Stage::Slice)?;
    let slice = obtain_slice(&mesh, plan, faults, Some((cache, keys.slice)))?;
    if depth < PrefixDepth::Toolpath {
        return Ok(());
    }
    deadline.check(Stage::ToolPath)?;
    obtain_toolpath(&slice, plan, faults, Some((cache, keys.toolpath)))?;
    Ok(())
}

/// The staged runner behind both [`run_pipeline_with_faults`] (no cache)
/// and [`run_pipeline_cached`]: identical control flow, so the two paths
/// cannot drift apart.
fn run_pipeline_inner(
    part: &Part,
    plan: &ProcessPlan,
    faults: &FaultPlan,
    cache: Option<&StageCache>,
    deadline: Deadline,
) -> Result<PipelineOutput, PipelineError> {
    // The plan itself must be coherent before anything runs: a bad slicer
    // config or machine profile is a caller error, not a fault.
    plan.slicer.validate().map_err(PipelineError::InvalidConfig)?;
    plan.printer.validate().map_err(|e| PipelineError::Print(PrintError::Profile(e)))?;

    let keys = cache.map(|_| plan_keys(part, plan, faults));
    let with_key = |key: fn(&PlanKeys) -> StageKey| {
        cache.zip(keys.as_ref().map(key))
    };

    let mut stages: Vec<StageOutcome> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    deadline.check(Stage::Cad)?;
    let mesh = obtain_mesh(part, plan, faults, with_key(|k| k.mesh))?;
    stages.extend_from_slice(&mesh.outcomes);
    diagnostics.extend_from_slice(&mesh.diagnostics);

    deadline.check(Stage::Slice)?;
    let slice = obtain_slice(&mesh, plan, faults, with_key(|k| k.slice))?;
    stages.extend_from_slice(&slice.outcomes);
    diagnostics.extend_from_slice(&slice.diagnostics);

    deadline.check(Stage::ToolPath)?;
    let toolpath = obtain_toolpath(&slice, plan, faults, with_key(|k| k.toolpath))?;
    stages.extend_from_slice(&toolpath.outcomes);
    diagnostics.extend_from_slice(&toolpath.diagnostics);

    deadline.check(Stage::Print)?;
    let print = obtain_print(&toolpath, &slice, plan, with_key(|k| k.print))?;
    stages.extend_from_slice(&print.outcomes);

    // Cold-joint contact: in x-y the seam's in-plane tessellation gaps
    // reduce the bonded area (fraction of the seam left open by the chord
    // mismatch); in x-z the gap opens across layers instead, measured by
    // the fraction of discontinuous layers.
    let slice_report = &slice.slice_report;
    let joint_contact = match (&mesh.seam, plan.orientation) {
        (Some(s), Orientation::Xy) => {
            (1.0 - 1.5 * s.chain_mismatch / slice.config.road_width).clamp(0.3, 1.0)
        }
        (Some(_), Orientation::Xz) => {
            let frac = if slice_report.layers == 0 {
                0.0
            } else {
                slice_report.discontinuous_layers as f64 / slice_report.layers as f64
            };
            (1.0 - 0.5 * frac).clamp(0.3, 1.0)
        }
        (None, _) => 1.0,
    };

    // --- Virtual tensile test --------------------------------------------
    let tensile = if plan.tensile {
        deadline.check(Stage::Test)?;
        stages.push(StageOutcome { stage: Stage::Test, status: StageStatus::Clean });
        let result: Arc<TensileResult> = if let Some((cache, keys)) = cache.zip(keys) {
            let key = tensile_key(keys.print, plan, joint_contact);
            match cache.get(key).and_then(StageArtifact::into_tensile) {
                Some(hit) => hit,
                None => {
                    let built = Arc::new(tensile_stage(&print, plan, joint_contact)?);
                    cache.insert(key, StageArtifact::Tensile(Arc::clone(&built)), tensile_cost(&built));
                    built
                }
            }
        } else {
            Arc::new(tensile_stage(&print, plan, joint_contact)?)
        };
        Some((*result).clone())
    } else {
        stages.push(StageOutcome { stage: Stage::Test, status: StageStatus::Skipped });
        None
    };

    Ok(PipelineOutput {
        part_name: part.name().to_string(),
        mesh_triangles: mesh.mesh_triangles,
        stl_bytes: mesh.stl_bytes,
        seam: mesh.seam.clone(),
        slice_report: slice.slice_report.clone(),
        toolpath: toolpath.stats,
        printed: Arc::clone(&print.printed),
        scan: print.scan,
        tensile,
        joint_contact,
        stages,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::parts::{prism_with_sphere, tensile_bar_with_spline, PrismDims, TensileBarDims};
    use am_cad::{BodyKind, MaterialRemoval};
    use am_geom::Point3;

    fn base_part() -> Part {
        let dims = PrismDims { size: Point3::new(25.4, 12.7, 12.7), sphere_radius: 3.0 };
        prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without).expect("part")
    }

    fn keys_for(part: &Part, plan: &ProcessPlan) -> PlanKeys {
        plan_keys(part, plan, &FaultPlan::none())
    }

    /// Pin for the router tier (PR 9): the public
    /// [`crate::prefix_key_for_job`] must equal — byte for byte — the key
    /// the pipeline actually caches the slice artifact under, for clean
    /// and faulted plans alike. If the two ever drift, affinity routing
    /// would hash jobs to a node whose cache files them elsewhere.
    #[test]
    fn prefix_key_is_the_slice_stage_cache_key() {
        let _guard = crate::perf::KERNEL_MODE_TEST_LOCK.lock().unwrap();
        crate::perf::set_kernel_mode(KernelMode::SpanPlan);
        let part = base_part();
        let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
        let faulted = "stl.degenerate=3"
            .parse::<FaultPlan>()
            .expect("fault plan")
            .with_seed(7);
        for faults in [FaultPlan::none(), faulted] {
            let public = crate::cache::prefix_key_for_job(&part, &plan, &faults);
            assert_eq!(
                public,
                plan_keys(&part, &plan, &faults).slice,
                "public prefix key drifted from the slice-stage plan key"
            );
            let cache = StageCache::with_budget(64 << 20);
            if run_pipeline_cached(&part, &plan, &faults, &cache).is_ok() {
                let cached =
                    cache.get(public).and_then(crate::cache::StageArtifact::into_slice);
                assert!(
                    cached.is_some(),
                    "cached run left no slice artifact under the public prefix key"
                );
            }
        }
    }

    /// Each kernel mode must hash to its own key chain: the three modes
    /// produce bit-identical artifacts, but a cached entry records which
    /// implementation produced it, and the bench harness relies on a mode
    /// switch forcing a recompute. A new discriminant aliasing an old one
    /// would silently serve `Optimized`-era `print` entries to `SpanPlan`.
    #[test]
    fn kernel_modes_never_alias_stage_keys() {
        let _guard = crate::perf::KERNEL_MODE_TEST_LOCK.lock().unwrap();
        let part = base_part();
        let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
        let modes = [KernelMode::Reference, KernelMode::Optimized, KernelMode::SpanPlan];
        let keys: Vec<PlanKeys> = modes
            .iter()
            .map(|&mode| {
                crate::perf::set_kernel_mode(mode);
                keys_for(&part, &plan)
            })
            .collect();
        crate::perf::set_kernel_mode(KernelMode::SpanPlan);
        for a in 0..modes.len() {
            for b in a + 1..modes.len() {
                for (stage, ka, kb) in [
                    ("slice", keys[a].slice, keys[b].slice),
                    ("toolpath", keys[a].toolpath, keys[b].toolpath),
                    ("print", keys[a].print, keys[b].print),
                ] {
                    assert_ne!(
                        ka, kb,
                        "{stage} key aliases between {:?} and {:?}",
                        modes[a], modes[b]
                    );
                }
            }
        }
    }

    /// The cache-correctness pin the hashing scheme rests on: perturbing
    /// any single field of any keyed input must change the stage key that
    /// absorbs it. A lossy encoding (e.g. a `Debug` rendering that omits
    /// or rounds a field) would make two distinct inputs alias and the
    /// cache would serve wrong artifacts.
    #[test]
    fn key_schema_is_field_sensitive() {
        let part = base_part();
        let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
        let base = keys_for(&part, &plan);

        // --- Part recipe → mesh key --------------------------------------
        let part_perturbations: Vec<(&str, Part)> = vec![
            ("prism size.x", {
                let dims = PrismDims { size: Point3::new(25.5, 12.7, 12.7), sphere_radius: 3.0 };
                prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without).expect("part")
            }),
            ("prism size.z", {
                let dims = PrismDims { size: Point3::new(25.4, 12.7, 12.8), sphere_radius: 3.0 };
                prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without).expect("part")
            }),
            ("sphere radius", {
                let dims = PrismDims { size: Point3::new(25.4, 12.7, 12.7), sphere_radius: 3.1 };
                prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without).expect("part")
            }),
            ("body kind", {
                let dims = PrismDims { size: Point3::new(25.4, 12.7, 12.7), sphere_radius: 3.0 };
                prism_with_sphere(&dims, BodyKind::Surface, MaterialRemoval::Without).expect("part")
            }),
            ("material removal", {
                let dims = PrismDims { size: Point3::new(25.4, 12.7, 12.7), sphere_radius: 3.0 };
                prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::With).expect("part")
            }),
            ("feature set (spline split)", {
                tensile_bar_with_spline(&TensileBarDims::default()).expect("bar")
            }),
        ];
        for (what, perturbed) in &part_perturbations {
            assert_ne!(
                keys_for(perturbed, &plan).mesh,
                base.mesh,
                "mesh key insensitive to {what}"
            );
        }

        // Spline through-point: two bars differing in one control point.
        let spline_bar = |dy: f64| {
            let dims = TensileBarDims::default();
            let mut pts = am_cad::parts::standard_split_spline(&dims)
                .expect("spline")
                .through_points()
                .to_vec();
            pts[2].y += dy;
            let spline = am_geom::CatmullRom::new(pts).expect("six points");
            am_cad::parts::tensile_bar(&dims)
                .expect("bar")
                .with_feature(am_cad::Feature::SplineSplit { spline })
                .expect("split")
        };
        assert_ne!(
            keys_for(&spline_bar(0.0), &plan).mesh,
            keys_for(&spline_bar(0.25), &plan).mesh,
            "mesh key insensitive to a spline control point"
        );

        // --- Resolution → mesh key ---------------------------------------
        for resolution in [Resolution::Fine, Resolution::Custom] {
            let changed = ProcessPlan { resolution, ..plan.clone() };
            assert_ne!(
                keys_for(&part, &changed).mesh,
                base.mesh,
                "mesh key insensitive to resolution {resolution:?}"
            );
        }

        // --- Orientation → slice key (mesh key unchanged) ----------------
        let turned = ProcessPlan { orientation: Orientation::Xz, ..plan.clone() };
        let turned_keys = keys_for(&part, &turned);
        assert_eq!(turned_keys.mesh, base.mesh, "orientation must not re-key the mesh");
        assert_ne!(turned_keys.slice, base.slice, "slice key insensitive to orientation");

        // --- SlicerConfig, field by field → slice key ---------------------
        let slicer_perturbations: Vec<(&str, SlicerConfig)> = vec![
            ("layer_height", SlicerConfig { layer_height: 0.2, ..plan.slicer }),
            ("road_width", SlicerConfig { road_width: 0.51, ..plan.slicer }),
            ("analysis_cell", SlicerConfig { analysis_cell: 0.06, ..plan.slicer }),
            ("support", SlicerConfig { support: !plan.slicer.support, ..plan.slicer }),
            (
                "infill style",
                SlicerConfig {
                    infill: am_slicer::InfillStyle::Sparse { density: 0.5 },
                    ..plan.slicer
                },
            ),
        ];
        for (what, slicer) in slicer_perturbations {
            let changed = ProcessPlan { slicer, ..plan.clone() };
            let keys = keys_for(&part, &changed);
            assert_eq!(keys.mesh, base.mesh, "slicer {what} must not re-key the mesh");
            assert_ne!(keys.slice, base.slice, "slice key insensitive to slicer {what}");
        }
        // Sparse density is a field of its own inside the infill variant.
        let sparse = |density| ProcessPlan {
            slicer: SlicerConfig { infill: am_slicer::InfillStyle::Sparse { density }, ..plan.slicer },
            ..plan.clone()
        };
        assert_ne!(
            keys_for(&part, &sparse(0.5)).slice,
            keys_for(&part, &sparse(0.6)).slice,
            "slice key insensitive to sparse-infill density"
        );

        // --- PrinterProfile, field by field → toolpath key ----------------
        let profile_perturbations: Vec<(&str, PrinterProfile)> = vec![
            ("name", PrinterProfile { name: "Other Machine", ..plan.printer.clone() }),
            ("process", PrinterProfile { process: Process::PolyJet, ..plan.printer.clone() }),
            ("layer_height", PrinterProfile { layer_height: 0.2, ..plan.printer.clone() }),
            ("road_width", PrinterProfile { road_width: 0.51, ..plan.printer.clone() }),
            ("feed_mm_per_s", PrinterProfile { feed_mm_per_s: 31.0, ..plan.printer.clone() }),
            (
                "model_material.young_modulus_gpa",
                PrinterProfile {
                    model_material: am_printer::MaterialSpec {
                        young_modulus_gpa: 2.2,
                        ..plan.printer.model_material.clone()
                    },
                    ..plan.printer.clone()
                },
            ),
            (
                "model_material.tensile_strength_mpa",
                PrinterProfile {
                    model_material: am_printer::MaterialSpec {
                        tensile_strength_mpa: 34.0,
                        ..plan.printer.model_material.clone()
                    },
                    ..plan.printer.clone()
                },
            ),
            (
                "model_material.elongation_at_break",
                PrinterProfile {
                    model_material: am_printer::MaterialSpec {
                        elongation_at_break: 0.11,
                        ..plan.printer.model_material.clone()
                    },
                    ..plan.printer.clone()
                },
            ),
            (
                "model_material.density_g_cm3",
                PrinterProfile {
                    model_material: am_printer::MaterialSpec {
                        density_g_cm3: 1.1,
                        ..plan.printer.model_material.clone()
                    },
                    ..plan.printer.clone()
                },
            ),
            (
                "soluble_support",
                PrinterProfile { soluble_support: !plan.printer.soluble_support, ..plan.printer.clone() },
            ),
            ("road_bond", PrinterProfile { road_bond: 0.93, ..plan.printer.clone() }),
            ("layer_bond", PrinterProfile { layer_bond: 0.81, ..plan.printer.clone() }),
            ("joint_bond", PrinterProfile { joint_bond: 0.5, ..plan.printer.clone() }),
            ("joint_ductility", PrinterProfile { joint_ductility: 0.5, ..plan.printer.clone() }),
            ("noise_sigma", PrinterProfile { noise_sigma: 0.07, ..plan.printer.clone() }),
        ];
        for (what, printer) in profile_perturbations {
            let changed = ProcessPlan { printer, ..plan.clone() };
            let keys = keys_for(&part, &changed);
            assert_eq!(keys.slice, base.slice, "printer {what} must not re-key the slice");
            assert_ne!(
                keys.toolpath, base.toolpath,
                "toolpath key insensitive to printer {what}"
            );
        }

        // --- Seed → print key (toolpath key unchanged) --------------------
        let reseeded = plan.clone().with_seed(plan.seed + 1);
        let reseeded_keys = keys_for(&part, &reseeded);
        assert_eq!(reseeded_keys.toolpath, base.toolpath, "seed must not re-key the toolpath");
        assert_ne!(reseeded_keys.print, base.print, "print key insensitive to seed");

        // --- Joint contact, orientation and solver → tensile key ----------
        let t0 = tensile_key(base.print, &plan, 0.9);
        assert_ne!(t0, tensile_key(base.print, &plan, 0.90001), "tensile key insensitive to joint contact");
        assert_ne!(t0, tensile_key(base.print, &turned, 0.9), "tensile key insensitive to orientation");

        // The equilibrium solver re-keys the tensile stage and nothing
        // upstream of it: the two solvers agree only to solver tolerance,
        // so a shared cache must never serve one solver's curve for the
        // other.
        let other_solver = plan.clone().with_fea_solver(FeaSolver::Relaxation);
        let solver_keys = keys_for(&part, &other_solver);
        assert_eq!(solver_keys.print, base.print, "fea solver must not re-key the print stage");
        assert_ne!(
            tensile_key(base.print, &plan, 0.9),
            tensile_key(base.print, &other_solver, 0.9),
            "tensile key insensitive to the fea solver"
        );
    }

    /// Fault poisoning at the key level: fault entries (and the fault seed)
    /// re-key the stage they strike, and only that stage's chain.
    #[test]
    fn fault_entries_poison_their_stage_key() {
        let part = base_part();
        let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
        let clean = plan_keys(&part, &plan, &FaultPlan::none());

        let stl: FaultPlan = "stl.degenerate=3".parse().expect("spec");
        let stl_keys = plan_keys(&part, &plan, &stl);
        assert_ne!(stl_keys.mesh, clean.mesh, "STL fault must poison the mesh key");

        let slicer: FaultPlan = "slicer.zero_layer".parse().expect("spec");
        let slicer_keys = plan_keys(&part, &plan, &slicer);
        assert_eq!(slicer_keys.mesh, clean.mesh, "slicer fault must not poison the mesh key");
        assert_ne!(slicer_keys.slice, clean.slice, "slicer fault must poison the slice key");

        // Fault seed matters once fault entries draw from it.
        let seeded_a = plan_keys(&part, &plan, &stl.clone().with_seed(1));
        let seeded_b = plan_keys(&part, &plan, &stl.with_seed(2));
        assert_ne!(seeded_a.mesh, seeded_b.mesh, "fault seed must enter the poisoned key");
    }
}
