//! Crash-safe persistent spill tier under the in-memory stage cache
//! (PR 6).
//!
//! The in-memory [`crate::StageCache`] evicts least-recently-used
//! artifacts when its byte budget fills; before this module those
//! artifacts were simply recomputed on the next lookup, and a daemon
//! restart started cold. The [`SpillStore`] is an append-only,
//! CRC-checked segment-file store keyed by [`StageKey`] that sits *under*
//! the LRU: evicted entries spill to disk, resident misses consult the
//! spill index and rehydrate, and a fresh process pointed at the same
//! directory rebuilds the index from the segment files — warm restarts.
//!
//! # Byte-identity contract
//!
//! A rehydrated artifact must be **bit-identical** to the artifact a
//! recompute would produce — the cache's determinism contract extends
//! through the disk tier. The codec therefore serializes every artifact
//! field exactly: floats by IEEE-754 bit pattern, enums by explicit
//! discriminant byte, sequences length-prefixed. The only representation
//! change a round trip makes is re-interning the two `&'static str`
//! machine-profile names through a leak-once table (bounded by the set of
//! distinct profile/material names, a handful per process).
//!
//! # Segment format and recovery rules
//!
//! Each segment file starts with an 8-byte magic (`OBFSPILL`) and a
//! little-endian `u32` format version, followed by records:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [body: len bytes]
//! body = [key.0 u64 LE] [key.1 u64 LE] [cost u64 LE] [kind u8] [payload]
//! ```
//!
//! `crc` is CRC-32 (IEEE) over `body`. Recovery scans each segment in id
//! order and stops at the first record whose length prefix or CRC does
//! not hold, truncating the file there: a torn tail from a mid-write
//! crash (or any corrupt record) costs the entries at and after the tear
//! — they are recomputed, never served wrong. The CRC is re-checked at
//! read time too, so corruption that lands *after* recovery indexed a
//! record still drops the entry instead of serving bad bytes. Writes go
//! through the kernel on every `put` (`write(2)`, no userspace
//! buffering), so a `SIGKILL` loses at most the record being written.
//!
//! Spilling is content-addressed and idempotent: a key already present in
//! the spill index is never rewritten, so eviction/rehydration ping-pong
//! does not grow the segments.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use am_fea::TensileResult;
use am_geom::{Aabb3, Point2, Point3, Polygon2, Polyline2, Transform3, Vec3};
use am_mesh::{SeamReport, TriMesh};
use am_printer::{
    Material, MaterialSpec, PrintedPart, PrintedPartRaw, PrinterProfile, Process, ScanReport,
};
use am_slicer::{
    Contour, InfillStyle, Layer, Road, RoadKind, SeamExposure, SliceReport, SlicedModel,
    SlicerConfig, ToolMaterial, ToolPath,
};

use crate::cache::{StageArtifact, StageKey};
use crate::detect::{DetectionReport, SanitizeReport};
use crate::pipeline::{
    Diagnostic, MeshArtifact, PrintArtifact, SliceArtifact, Stage, StageOutcome, StageStatus,
    ToolPathStats, ToolpathArtifact,
};

/// Segment-file magic bytes.
const MAGIC: &[u8; 8] = b"OBFSPILL";
/// Segment format version.
const VERSION: u32 = 1;
/// Header size: magic + version.
const HEADER: u64 = 12;
/// Per-record framing overhead: length prefix + CRC.
const RECORD_HEAD: u64 = 8;
/// Records larger than this are rejected as corrupt length prefixes
/// before any allocation happens.
const MAX_RECORD: u32 = 1 << 30;
/// Segments roll over once their byte length passes this mark, keeping
/// individual files (and recovery scans) bounded.
const SEGMENT_ROLL: u64 = 64 << 20;

// --- CRC-32 (IEEE 802.3), table-driven, dependency-free ----------------

/// The 256-entry CRC-32 lookup table, generated at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// --- Leak-once string interning ----------------------------------------

/// Interns `s` into a process-global leak-once table, so decoded machine
/// profiles can carry `&'static str` names again. Bounded: each distinct
/// name leaks exactly once, and the name universe is the fixed set of
/// machine/material names.
fn intern(s: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = table.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(&interned) = guard.get(s) {
        return interned;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.insert(s.to_owned(), leaked);
    leaked
}

// --- Byte codec ---------------------------------------------------------

/// Little-endian byte sink for the artifact codec.
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` by IEEE-754 bit pattern — exact, `-0.0` and NaN payloads
    /// round-trip.
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Checked little-endian byte source; every read is bounds-validated so a
/// corrupt payload yields a typed error, never a panic.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| format!("truncated payload at byte {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// A length prefix, sanity-capped so a corrupt count cannot demand an
    /// absurd allocation before element reads start failing.
    fn len(&mut self) -> Result<usize, String> {
        let v = self.u64()?;
        if v > (MAX_RECORD as u64) {
            return Err(format!("implausible sequence length {v}"));
        }
        Ok(v as usize)
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("bad bool byte {other}")),
        }
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }

    /// Asserts the payload was fully consumed — trailing bytes mean the
    /// record does not parse as exactly one artifact.
    fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after artifact", self.buf.len() - self.pos))
        }
    }
}

// --- Component encoders/decoders ---------------------------------------

fn enc_point2(w: &mut ByteWriter, p: Point2) {
    w.f64(p.x);
    w.f64(p.y);
}

fn dec_point2(r: &mut ByteReader<'_>) -> Result<Point2, String> {
    Ok(Point2::new(r.f64()?, r.f64()?))
}

fn enc_point3(w: &mut ByteWriter, p: Point3) {
    w.f64(p.x);
    w.f64(p.y);
    w.f64(p.z);
}

fn dec_point3(r: &mut ByteReader<'_>) -> Result<Point3, String> {
    Ok(Point3::new(r.f64()?, r.f64()?, r.f64()?))
}

fn enc_transform(w: &mut ByteWriter, t: &Transform3) {
    let (rows, translation) = t.to_raw();
    for row in rows {
        enc_point3(w, row);
    }
    enc_point3(w, translation);
}

fn dec_transform(r: &mut ByteReader<'_>) -> Result<Transform3, String> {
    let rows = [dec_point3(r)?, dec_point3(r)?, dec_point3(r)?];
    let translation: Vec3 = dec_point3(r)?;
    Ok(Transform3::from_raw(rows, translation))
}

fn enc_stage(w: &mut ByteWriter, stage: Stage) {
    w.u8(match stage {
        Stage::Cad => 0,
        Stage::Stl => 1,
        Stage::Repair => 2,
        Stage::Slice => 3,
        Stage::ToolPath => 4,
        Stage::Firmware => 5,
        Stage::Print => 6,
        Stage::Inspect => 7,
        Stage::Test => 8,
    });
}

fn dec_stage(r: &mut ByteReader<'_>) -> Result<Stage, String> {
    Ok(match r.u8()? {
        0 => Stage::Cad,
        1 => Stage::Stl,
        2 => Stage::Repair,
        3 => Stage::Slice,
        4 => Stage::ToolPath,
        5 => Stage::Firmware,
        6 => Stage::Print,
        7 => Stage::Inspect,
        8 => Stage::Test,
        other => return Err(format!("bad stage discriminant {other}")),
    })
}

fn enc_outcomes(w: &mut ByteWriter, outcomes: &[StageOutcome]) {
    w.usize(outcomes.len());
    for o in outcomes {
        enc_stage(w, o.stage);
        w.u8(match o.status {
            StageStatus::Clean => 0,
            StageStatus::Degraded => 1,
            StageStatus::Skipped => 2,
        });
    }
}

fn dec_outcomes(r: &mut ByteReader<'_>) -> Result<Vec<StageOutcome>, String> {
    let n = r.len()?;
    let mut outcomes = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let stage = dec_stage(r)?;
        let status = match r.u8()? {
            0 => StageStatus::Clean,
            1 => StageStatus::Degraded,
            2 => StageStatus::Skipped,
            other => return Err(format!("bad stage status {other}")),
        };
        outcomes.push(StageOutcome { stage, status });
    }
    Ok(outcomes)
}

fn enc_diagnostics(w: &mut ByteWriter, diagnostics: &[Diagnostic]) {
    w.usize(diagnostics.len());
    for d in diagnostics {
        enc_stage(w, d.stage);
        w.str(&d.message);
        w.bool(d.recovered);
    }
}

fn dec_diagnostics(r: &mut ByteReader<'_>) -> Result<Vec<Diagnostic>, String> {
    let n = r.len()?;
    let mut diagnostics = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        diagnostics.push(Diagnostic {
            stage: dec_stage(r)?,
            message: r.str()?,
            recovered: r.bool()?,
        });
    }
    Ok(diagnostics)
}

fn enc_mesh(w: &mut ByteWriter, mesh: &TriMesh) {
    let vertices = mesh.vertices();
    w.usize(vertices.len());
    for &v in vertices {
        enc_point3(w, v);
    }
    let indices = mesh.indices();
    w.usize(indices.len());
    for tri in indices {
        for &i in tri {
            w.u32(i);
        }
    }
}

fn dec_mesh(r: &mut ByteReader<'_>) -> Result<TriMesh, String> {
    let nv = r.len()?;
    let mut vertices = Vec::with_capacity(nv.min(1 << 20));
    for _ in 0..nv {
        vertices.push(dec_point3(r)?);
    }
    let nt = r.len()?;
    let mut triangles = Vec::with_capacity(nt.min(1 << 20));
    for _ in 0..nt {
        let tri = [r.u32()?, r.u32()?, r.u32()?];
        // `TriMesh::from_raw` panics on out-of-range indices; validate
        // here so corrupt payloads become typed errors instead.
        if tri.iter().any(|&i| i as usize >= vertices.len()) {
            return Err("triangle index out of bounds".to_string());
        }
        triangles.push(tri);
    }
    Ok(TriMesh::from_raw(vertices, triangles))
}

fn enc_seam_report(w: &mut ByteWriter, seam: &SeamReport) {
    w.f64(seam.vertex_mismatch);
    w.f64(seam.chain_mismatch);
    w.usize(seam.chain_a_points);
    w.usize(seam.chain_b_points);
    w.bool(seam.conforming);
    w.usize(seam.profile.len());
    for &(pos, gap) in &seam.profile {
        w.f64(pos);
        w.f64(gap);
    }
}

fn dec_seam_report(r: &mut ByteReader<'_>) -> Result<SeamReport, String> {
    let vertex_mismatch = r.f64()?;
    let chain_mismatch = r.f64()?;
    let chain_a_points = r.len()?;
    let chain_b_points = r.len()?;
    let conforming = r.bool()?;
    let n = r.len()?;
    let mut profile = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        profile.push((r.f64()?, r.f64()?));
    }
    Ok(SeamReport {
        vertex_mismatch,
        chain_mismatch,
        chain_a_points,
        chain_b_points,
        conforming,
        profile,
    })
}

fn enc_sliced_model(w: &mut ByteWriter, sliced: &SlicedModel) {
    w.usize(sliced.layers.len());
    for layer in &sliced.layers {
        w.f64(layer.z);
        w.usize(layer.loops.len());
        for contour in &layer.loops {
            let vertices = contour.polygon.vertices();
            w.usize(vertices.len());
            for &v in vertices {
                enc_point2(w, v);
            }
            w.usize(contour.body);
        }
        w.usize(layer.open_paths.len());
        for path in &layer.open_paths {
            let points = path.points();
            w.usize(points.len());
            for &p in points {
                enc_point2(w, p);
            }
        }
    }
    w.f64(sliced.layer_height);
    enc_point3(w, sliced.bounds.min);
    enc_point3(w, sliced.bounds.max);
}

fn dec_sliced_model(r: &mut ByteReader<'_>) -> Result<SlicedModel, String> {
    let nl = r.len()?;
    let mut layers = Vec::with_capacity(nl.min(1 << 16));
    for _ in 0..nl {
        let z = r.f64()?;
        let nc = r.len()?;
        let mut loops = Vec::with_capacity(nc.min(1 << 16));
        for _ in 0..nc {
            let nv = r.len()?;
            let mut vertices = Vec::with_capacity(nv.min(1 << 16));
            for _ in 0..nv {
                vertices.push(dec_point2(r)?);
            }
            let body = r.len()?;
            loops.push(Contour { polygon: Polygon2::new(vertices), body });
        }
        let np = r.len()?;
        let mut open_paths = Vec::with_capacity(np.min(1 << 16));
        for _ in 0..np {
            let n = r.len()?;
            let mut points = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                points.push(dec_point2(r)?);
            }
            open_paths.push(Polyline2::new(points));
        }
        layers.push(Layer { z, loops, open_paths });
    }
    let layer_height = r.f64()?;
    let bounds = Aabb3 { min: dec_point3(r)?, max: dec_point3(r)? };
    Ok(SlicedModel { layers, layer_height, bounds })
}

fn enc_slice_report(w: &mut ByteWriter, report: &SliceReport) {
    w.usize(report.layers);
    w.usize(report.discontinuous_layers);
    w.usize(report.max_components);
    w.usize(report.internal_void_cells);
    w.f64(report.internal_void_area);
    w.f64(report.cell);
    match &report.seam {
        None => w.u8(0),
        Some(seam) => {
            w.u8(1);
            w.usize(seam.interface_layers);
            w.f64(seam.median_span);
            w.f64(seam.mean_shift);
        }
    }
}

fn dec_slice_report(r: &mut ByteReader<'_>) -> Result<SliceReport, String> {
    let layers = r.len()?;
    let discontinuous_layers = r.len()?;
    let max_components = r.len()?;
    let internal_void_cells = r.len()?;
    let internal_void_area = r.f64()?;
    let cell = r.f64()?;
    let seam = match r.u8()? {
        0 => None,
        1 => Some(SeamExposure {
            interface_layers: r.len()?,
            median_span: r.f64()?,
            mean_shift: r.f64()?,
        }),
        other => return Err(format!("bad option tag {other}")),
    };
    Ok(SliceReport {
        layers,
        discontinuous_layers,
        max_components,
        internal_void_cells,
        internal_void_area,
        cell,
        seam,
    })
}

fn enc_slicer_config(w: &mut ByteWriter, config: &SlicerConfig) {
    w.f64(config.layer_height);
    w.f64(config.road_width);
    w.f64(config.analysis_cell);
    w.bool(config.support);
    match config.infill {
        InfillStyle::Solid => w.u8(0),
        InfillStyle::Sparse { density } => {
            w.u8(1);
            w.f64(density);
        }
    }
}

fn dec_slicer_config(r: &mut ByteReader<'_>) -> Result<SlicerConfig, String> {
    let layer_height = r.f64()?;
    let road_width = r.f64()?;
    let analysis_cell = r.f64()?;
    let support = r.bool()?;
    let infill = match r.u8()? {
        0 => InfillStyle::Solid,
        1 => InfillStyle::Sparse { density: r.f64()? },
        other => return Err(format!("bad infill discriminant {other}")),
    };
    Ok(SlicerConfig { layer_height, road_width, analysis_cell, support, infill })
}

fn enc_toolpath(w: &mut ByteWriter, toolpath: &ToolPath) {
    w.usize(toolpath.roads.len());
    for road in &toolpath.roads {
        enc_point2(w, road.from);
        enc_point2(w, road.to);
        w.f64(road.z);
        w.u8(match road.material {
            ToolMaterial::Model => 0,
            ToolMaterial::Support => 1,
        });
        w.u8(match road.kind {
            RoadKind::Perimeter => 0,
            RoadKind::Infill => 1,
        });
        match road.body {
            None => w.u8(0),
            Some(body) => {
                w.u8(1);
                w.u16(body);
            }
        }
    }
    w.f64(toolpath.layer_height);
    w.f64(toolpath.road_width);
}

fn dec_toolpath(r: &mut ByteReader<'_>) -> Result<ToolPath, String> {
    let n = r.len()?;
    let mut roads = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let from = dec_point2(r)?;
        let to = dec_point2(r)?;
        let z = r.f64()?;
        let material = match r.u8()? {
            0 => ToolMaterial::Model,
            1 => ToolMaterial::Support,
            other => return Err(format!("bad tool material {other}")),
        };
        let kind = match r.u8()? {
            0 => RoadKind::Perimeter,
            1 => RoadKind::Infill,
            other => return Err(format!("bad road kind {other}")),
        };
        let body = match r.u8()? {
            0 => None,
            1 => Some(r.u16()?),
            other => return Err(format!("bad option tag {other}")),
        };
        roads.push(Road { from, to, z, material, kind, body });
    }
    let layer_height = r.f64()?;
    let road_width = r.f64()?;
    Ok(ToolPath { roads, layer_height, road_width })
}

fn enc_profile(w: &mut ByteWriter, profile: &PrinterProfile) {
    w.str(profile.name);
    w.u8(match profile.process {
        Process::Fdm => 0,
        Process::PolyJet => 1,
    });
    w.f64(profile.layer_height);
    w.f64(profile.road_width);
    w.f64(profile.feed_mm_per_s);
    w.str(profile.model_material.name);
    w.f64(profile.model_material.young_modulus_gpa);
    w.f64(profile.model_material.tensile_strength_mpa);
    w.f64(profile.model_material.elongation_at_break);
    w.f64(profile.model_material.density_g_cm3);
    w.bool(profile.soluble_support);
    w.f64(profile.road_bond);
    w.f64(profile.layer_bond);
    w.f64(profile.joint_bond);
    w.f64(profile.joint_ductility);
    w.f64(profile.noise_sigma);
}

fn dec_profile(r: &mut ByteReader<'_>) -> Result<PrinterProfile, String> {
    let name = intern(&r.str()?);
    let process = match r.u8()? {
        0 => Process::Fdm,
        1 => Process::PolyJet,
        other => return Err(format!("bad process discriminant {other}")),
    };
    let layer_height = r.f64()?;
    let road_width = r.f64()?;
    let feed_mm_per_s = r.f64()?;
    let model_material = MaterialSpec {
        name: intern(&r.str()?),
        young_modulus_gpa: r.f64()?,
        tensile_strength_mpa: r.f64()?,
        elongation_at_break: r.f64()?,
        density_g_cm3: r.f64()?,
    };
    Ok(PrinterProfile {
        name,
        process,
        layer_height,
        road_width,
        feed_mm_per_s,
        model_material,
        soluble_support: r.bool()?,
        road_bond: r.f64()?,
        layer_bond: r.f64()?,
        joint_bond: r.f64()?,
        joint_ductility: r.f64()?,
        noise_sigma: r.f64()?,
    })
}

fn enc_printed(w: &mut ByteWriter, printed: &PrintedPart) {
    let raw = printed.to_raw();
    enc_profile(w, &raw.profile);
    enc_point3(w, raw.origin);
    w.f64(raw.voxel_xy);
    w.f64(raw.voxel_z);
    w.usize(raw.nx);
    w.usize(raw.ny);
    w.usize(raw.nz);
    w.usize(raw.material.len());
    for &m in &raw.material {
        w.u8(match m {
            Material::Empty => 0,
            Material::Model => 1,
            Material::Support => 2,
        });
    }
    w.usize(raw.body.len());
    for &b in &raw.body {
        w.u16(b);
    }
    enc_transform(w, &raw.to_build);
    w.u64(raw.seed);
}

fn dec_printed(r: &mut ByteReader<'_>) -> Result<PrintedPart, String> {
    let profile = dec_profile(r)?;
    let origin = dec_point3(r)?;
    let voxel_xy = r.f64()?;
    let voxel_z = r.f64()?;
    let nx = r.len()?;
    let ny = r.len()?;
    let nz = r.len()?;
    let nm = r.len()?;
    let mut material = Vec::with_capacity(nm.min(1 << 24));
    for _ in 0..nm {
        material.push(match r.u8()? {
            0 => Material::Empty,
            1 => Material::Model,
            2 => Material::Support,
            other => return Err(format!("bad material discriminant {other}")),
        });
    }
    let nb = r.len()?;
    let mut body = Vec::with_capacity(nb.min(1 << 24));
    for _ in 0..nb {
        body.push(r.u16()?);
    }
    let to_build = dec_transform(r)?;
    let seed = r.u64()?;
    PrintedPart::from_raw(PrintedPartRaw {
        profile,
        origin,
        voxel_xy,
        voxel_z,
        nx,
        ny,
        nz,
        material,
        body,
        to_build,
        seed,
    })
    .map_err(|e| e.to_string())
}

fn enc_tensile(w: &mut ByteWriter, result: &TensileResult) {
    w.usize(result.curve.len());
    for &(strain, stress) in &result.curve {
        w.f64(strain);
        w.f64(stress);
    }
    w.f64(result.young_modulus_gpa);
    w.f64(result.uts_mpa);
    w.f64(result.failure_strain);
    w.f64(result.toughness_kj_m3);
    match result.fracture_origin {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            enc_point2(w, p);
        }
    }
    w.usize(result.fracture_path.len());
    for &p in &result.fracture_path {
        enc_point2(w, p);
    }
    w.bool(result.ruptured);
}

fn dec_tensile(r: &mut ByteReader<'_>) -> Result<TensileResult, String> {
    let n = r.len()?;
    let mut curve = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        curve.push((r.f64()?, r.f64()?));
    }
    let young_modulus_gpa = r.f64()?;
    let uts_mpa = r.f64()?;
    let failure_strain = r.f64()?;
    let toughness_kj_m3 = r.f64()?;
    let fracture_origin = match r.u8()? {
        0 => None,
        1 => Some(dec_point2(r)?),
        other => return Err(format!("bad option tag {other}")),
    };
    let np = r.len()?;
    let mut fracture_path = Vec::with_capacity(np.min(1 << 20));
    for _ in 0..np {
        fracture_path.push(dec_point2(r)?);
    }
    let ruptured = r.bool()?;
    Ok(TensileResult {
        curve,
        young_modulus_gpa,
        uts_mpa,
        failure_strain,
        toughness_kj_m3,
        fracture_origin,
        fracture_path,
        ruptured,
    })
}

/// Artifact kind tags (the byte after the record cost).
const KIND_MESH: u8 = 1;
const KIND_SLICE: u8 = 2;
const KIND_TOOLPATH: u8 = 3;
const KIND_PRINT: u8 = 4;
const KIND_TENSILE: u8 = 5;
const KIND_DETECTION: u8 = 6;
const KIND_SANITIZE: u8 = 7;

/// Serializes one stage artifact as `[kind u8][payload]`.
pub(crate) fn encode_artifact(artifact: &StageArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match artifact {
        StageArtifact::Mesh(m) => {
            w.u8(KIND_MESH);
            w.usize(m.shells.len());
            for shell in &m.shells {
                enc_mesh(&mut w, shell);
            }
            w.usize(m.mesh_triangles);
            w.u64(m.stl_bytes);
            match &m.seam {
                None => w.u8(0),
                Some(seam) => {
                    w.u8(1);
                    enc_seam_report(&mut w, seam);
                }
            }
            enc_outcomes(&mut w, &m.outcomes);
            enc_diagnostics(&mut w, &m.diagnostics);
        }
        StageArtifact::Slice(s) => {
            w.u8(KIND_SLICE);
            enc_sliced_model(&mut w, &s.sliced);
            enc_slice_report(&mut w, &s.slice_report);
            enc_transform(&mut w, &s.to_build);
            enc_slicer_config(&mut w, &s.config);
            enc_outcomes(&mut w, &s.outcomes);
            enc_diagnostics(&mut w, &s.diagnostics);
        }
        StageArtifact::Toolpath(t) => {
            w.u8(KIND_TOOLPATH);
            enc_toolpath(&mut w, &t.toolpath);
            w.f64(t.stats.model_mm);
            w.f64(t.stats.support_mm);
            w.usize(t.stats.layers);
            w.f64(t.stats.time_s);
            enc_outcomes(&mut w, &t.outcomes);
            enc_diagnostics(&mut w, &t.diagnostics);
        }
        StageArtifact::Print(p) => {
            w.u8(KIND_PRINT);
            enc_printed(&mut w, &p.printed);
            w.usize(p.scan.internal_void_voxels);
            w.usize(p.scan.internal_support_voxels);
            w.f64(p.scan.internal_void_volume);
            w.f64(p.scan.cold_joint_area);
            enc_outcomes(&mut w, &p.outcomes);
        }
        StageArtifact::Tensile(t) => {
            w.u8(KIND_TENSILE);
            enc_tensile(&mut w, t);
        }
        StageArtifact::Detection(d) => {
            w.u8(KIND_DETECTION);
            w.str(&d.fault_spec);
            w.str(&d.quality);
            w.f64(d.jam_amplitude);
            w.u64(d.trace_seed);
            match &d.blocked_by {
                None => w.u8(0),
                Some(stage) => {
                    w.u8(1);
                    w.str(stage);
                }
            }
            w.f64(d.audio_score);
            w.f64(d.power_score);
            w.f64(d.fused_score);
            w.f64(d.audio_threshold);
            w.f64(d.power_threshold);
            w.f64(d.fused_threshold);
            w.bool(d.audio_flagged);
            w.bool(d.power_flagged);
            w.bool(d.fused_flagged);
            w.u64(d.suspect_frames);
            w.u64(d.golden_frames);
        }
        StageArtifact::Sanitize(s) => {
            w.u8(KIND_SANITIZE);
            w.u64(s.payload_seed);
            w.u64(s.payload_bits);
            w.u64(s.roads);
            w.f64(s.suspicious_before);
            w.f64(s.suspicious_after);
            w.f64(s.quantum_mm);
            w.f64(s.residual_mm);
            w.bool(s.fingerprint_preserved);
            w.str(&s.original_fingerprint);
            w.str(&s.sanitized_fingerprint);
        }
    }
    w.buf
}

/// Decodes one stage artifact from `[kind u8][payload]` bytes.
pub(crate) fn decode_artifact(bytes: &[u8]) -> Result<StageArtifact, String> {
    let mut r = ByteReader::new(bytes);
    let kind = r.u8()?;
    let artifact = match kind {
        KIND_MESH => {
            let ns = r.len()?;
            let mut shells = Vec::with_capacity(ns.min(64));
            for _ in 0..ns {
                shells.push(dec_mesh(&mut r)?);
            }
            let mesh_triangles = r.len()?;
            let stl_bytes = r.u64()?;
            let seam = match r.u8()? {
                0 => None,
                1 => Some(dec_seam_report(&mut r)?),
                other => return Err(format!("bad option tag {other}")),
            };
            let outcomes = dec_outcomes(&mut r)?;
            let diagnostics = dec_diagnostics(&mut r)?;
            StageArtifact::Mesh(Arc::new(MeshArtifact {
                shells,
                mesh_triangles,
                stl_bytes,
                seam,
                outcomes,
                diagnostics,
            }))
        }
        KIND_SLICE => {
            let sliced = dec_sliced_model(&mut r)?;
            let slice_report = dec_slice_report(&mut r)?;
            let to_build = dec_transform(&mut r)?;
            let config = dec_slicer_config(&mut r)?;
            let outcomes = dec_outcomes(&mut r)?;
            let diagnostics = dec_diagnostics(&mut r)?;
            StageArtifact::Slice(Arc::new(SliceArtifact {
                sliced,
                slice_report,
                to_build,
                config,
                outcomes,
                diagnostics,
            }))
        }
        KIND_TOOLPATH => {
            let toolpath = dec_toolpath(&mut r)?;
            let stats = ToolPathStats {
                model_mm: r.f64()?,
                support_mm: r.f64()?,
                layers: r.len()?,
                time_s: r.f64()?,
            };
            let outcomes = dec_outcomes(&mut r)?;
            let diagnostics = dec_diagnostics(&mut r)?;
            StageArtifact::Toolpath(Arc::new(ToolpathArtifact {
                toolpath,
                stats,
                outcomes,
                diagnostics,
            }))
        }
        KIND_PRINT => {
            let printed = Arc::new(dec_printed(&mut r)?);
            let scan = ScanReport {
                internal_void_voxels: r.len()?,
                internal_support_voxels: r.len()?,
                internal_void_volume: r.f64()?,
                cold_joint_area: r.f64()?,
            };
            let outcomes = dec_outcomes(&mut r)?;
            StageArtifact::Print(Arc::new(PrintArtifact { printed, scan, outcomes }))
        }
        KIND_TENSILE => StageArtifact::Tensile(Arc::new(dec_tensile(&mut r)?)),
        KIND_DETECTION => {
            let fault_spec = r.str()?;
            let quality = r.str()?;
            let jam_amplitude = r.f64()?;
            let trace_seed = r.u64()?;
            let blocked_by = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                other => return Err(format!("bad option tag {other}")),
            };
            StageArtifact::Detection(Arc::new(DetectionReport {
                fault_spec,
                quality,
                jam_amplitude,
                trace_seed,
                blocked_by,
                audio_score: r.f64()?,
                power_score: r.f64()?,
                fused_score: r.f64()?,
                audio_threshold: r.f64()?,
                power_threshold: r.f64()?,
                fused_threshold: r.f64()?,
                audio_flagged: r.bool()?,
                power_flagged: r.bool()?,
                fused_flagged: r.bool()?,
                suspect_frames: r.u64()?,
                golden_frames: r.u64()?,
            }))
        }
        KIND_SANITIZE => StageArtifact::Sanitize(Arc::new(SanitizeReport {
            payload_seed: r.u64()?,
            payload_bits: r.u64()?,
            roads: r.u64()?,
            suspicious_before: r.f64()?,
            suspicious_after: r.f64()?,
            quantum_mm: r.f64()?,
            residual_mm: r.f64()?,
            fingerprint_preserved: r.bool()?,
            original_fingerprint: r.str()?,
            sanitized_fingerprint: r.str()?,
        })),
        other => return Err(format!("unknown artifact kind {other}")),
    };
    r.finish()?;
    Ok(artifact)
}

// --- The segment-file store ---------------------------------------------

/// Counter snapshot of a [`SpillStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillStats {
    /// Keys currently indexed on disk.
    pub entries: usize,
    /// Record-body bytes currently indexed (excludes framing).
    pub bytes: u64,
    /// Records appended over this store's lifetime.
    pub writes: u64,
    /// Lookups served by rehydrating a spilled artifact.
    pub hits: u64,
    /// Records dropped because their CRC or payload failed validation
    /// (recovery truncations and read-time drops alike).
    pub corrupt_dropped: u64,
    /// Appends that failed — real I/O errors plus injected chaos
    /// failures. The entry is simply not persisted.
    pub write_failures: u64,
}

/// Where one indexed record lives.
#[derive(Debug, Clone, Copy)]
struct Location {
    segment: u64,
    /// Byte offset of the record's length prefix.
    offset: u64,
    /// Body length (bytes after the 8-byte record head).
    len: u32,
}

struct SpillInner {
    dir: PathBuf,
    /// Append handle of the active segment.
    segment: File,
    segment_id: u64,
    /// Current byte length of the active segment.
    segment_len: u64,
    /// Segment roll threshold ([`SEGMENT_ROLL`]; smaller in tests).
    roll: u64,
    index: HashMap<StageKey, Location>,
    bytes: u64,
    writes: u64,
    hits: u64,
    corrupt_dropped: u64,
    write_failures: u64,
    /// Chaos hook: called with the write ordinal before each append;
    /// `true` fails the write (counted, entry not persisted).
    write_fault: Option<Box<dyn FnMut(u64) -> bool + Send>>,
    write_ordinal: u64,
}

/// An append-only, CRC-checked, crash-recovering segment-file store of
/// encoded stage artifacts — the persistent tier under
/// [`crate::StageCache`]. See the module docs for the format and the
/// recovery rules.
pub struct SpillStore {
    inner: Mutex<SpillInner>,
}

impl std::fmt::Debug for SpillStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillStore").field("stats", &self.stats()).finish()
    }
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.spill"))
}

fn write_header(file: &mut File) -> std::io::Result<()> {
    file.write_all(MAGIC)?;
    file.write_all(&VERSION.to_le_bytes())
}

impl SpillStore {
    /// Opens (or creates) a spill store rooted at `dir`, recovering the
    /// key index from the segment files already there. Torn or corrupt
    /// segment tails are truncated away — recovery never errors on bad
    /// records, it drops them.
    ///
    /// # Errors
    ///
    /// Real I/O failures: the directory cannot be created, a segment
    /// cannot be opened, read, or truncated.
    pub fn open(dir: &Path) -> std::io::Result<SpillStore> {
        SpillStore::open_with_roll(dir, SEGMENT_ROLL)
    }

    /// [`SpillStore::open`] with an explicit segment roll threshold —
    /// tests use tiny segments to exercise rollover cheaply.
    pub(crate) fn open_with_roll(dir: &Path, roll: u64) -> std::io::Result<SpillStore> {
        fs::create_dir_all(dir)?;
        let mut ids: Vec<u64> = fs::read_dir(dir)?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                let id = name.strip_prefix("seg-")?.strip_suffix(".spill")?;
                id.parse().ok()
            })
            .collect();
        ids.sort_unstable();

        let mut index = HashMap::new();
        let mut bytes = 0u64;
        let mut corrupt_dropped = 0u64;
        for &id in &ids {
            let path = segment_path(dir, id);
            let data = fs::read(&path)?;
            let valid_len = scan_segment(id, &data, &mut index, &mut bytes, &mut corrupt_dropped);
            if (valid_len as usize) < data.len() {
                // Torn/corrupt tail: truncate so the next append starts
                // at a clean record boundary.
                OpenOptions::new().write(true).open(&path)?.set_len(valid_len)?;
            }
        }

        let segment_id = ids.last().copied().unwrap_or(1);
        let path = segment_path(dir, segment_id);
        let mut segment = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut segment_len = segment.seek(SeekFrom::End(0))?;
        if segment_len < HEADER {
            // Brand-new (or fully truncated) segment: start it with the
            // magic header.
            segment.set_len(0)?;
            write_header(&mut segment)?;
            segment_len = HEADER;
        }

        Ok(SpillStore {
            inner: Mutex::new(SpillInner {
                dir: dir.to_path_buf(),
                segment,
                segment_id,
                segment_len,
                roll,
                index,
                bytes,
                writes: 0,
                hits: 0,
                corrupt_dropped,
                write_failures: 0,
                write_fault: None,
                write_ordinal: 0,
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SpillInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SpillStats {
        let inner = self.lock();
        SpillStats {
            entries: inner.index.len(),
            bytes: inner.bytes,
            writes: inner.writes,
            hits: inner.hits,
            corrupt_dropped: inner.corrupt_dropped,
            write_failures: inner.write_failures,
        }
    }

    /// Installs a deterministic write-fault hook (the chaos harness):
    /// called with the write ordinal before each append, returning `true`
    /// fails that write. The entry is counted and skipped, never torn.
    pub fn set_write_fault(&self, hook: impl FnMut(u64) -> bool + Send + 'static) {
        self.lock().write_fault = Some(Box::new(hook));
    }

    /// Appends one encoded artifact under `key` (idempotent: a key
    /// already indexed is not rewritten). `cost` is the in-memory byte
    /// estimate the cache accounted for the artifact, stored so
    /// rehydration can re-insert with the same cost.
    pub(crate) fn put(&self, key: StageKey, artifact: &StageArtifact, cost: usize) {
        let mut inner = self.lock();
        if inner.index.contains_key(&key) {
            return;
        }
        let ordinal = inner.write_ordinal;
        inner.write_ordinal += 1;
        if let Some(hook) = inner.write_fault.as_mut() {
            if hook(ordinal) {
                inner.write_failures += 1;
                return;
            }
        }

        let mut body = Vec::new();
        let words = key.to_words();
        body.extend_from_slice(&words[0].to_le_bytes());
        body.extend_from_slice(&words[1].to_le_bytes());
        body.extend_from_slice(&(cost as u64).to_le_bytes());
        body.extend_from_slice(&encode_artifact(artifact));
        if body.len() > MAX_RECORD as usize {
            inner.write_failures += 1;
            return;
        }

        if inner.segment_len >= inner.roll {
            if let Err(()) = roll_segment(&mut inner) {
                inner.write_failures += 1;
                return;
            }
        }

        let mut record = Vec::with_capacity(body.len() + RECORD_HEAD as usize);
        record.extend_from_slice(&(body.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&body).to_le_bytes());
        record.extend_from_slice(&body);
        let offset = inner.segment_len;
        if inner.segment.write_all(&record).is_err() {
            // A partial append would be a torn tail; recovery truncates
            // it, but try to clean up eagerly so in-process reads never
            // see it either.
            let _ = inner.segment.set_len(offset);
            inner.segment_len = offset;
            inner.write_failures += 1;
            return;
        }
        inner.segment_len += record.len() as u64;
        inner.bytes += body.len() as u64;
        inner.writes += 1;
        let location =
            Location { segment: inner.segment_id, offset, len: body.len() as u32 };
        inner.index.insert(key, location);
    }

    /// Rehydrates the artifact spilled under `key`, with the byte cost it
    /// was accounted at. The record's CRC and payload are re-validated at
    /// read time; any failure drops the entry (counted) and returns
    /// `None` — corrupt bytes are never served.
    pub(crate) fn get(&self, key: StageKey) -> Option<(StageArtifact, usize)> {
        let mut inner = self.lock();
        let location = *inner.index.get(&key)?;
        match read_record(&inner.dir, location, key) {
            Ok((artifact, cost)) => {
                inner.hits += 1;
                Some((artifact, cost))
            }
            Err(_) => {
                inner.index.remove(&key);
                inner.bytes = inner.bytes.saturating_sub(u64::from(location.len));
                inner.corrupt_dropped += 1;
                None
            }
        }
    }

    /// Drops every spilled entry: deletes the segment files and starts a
    /// fresh one. Counters reset alongside (mirrors
    /// [`crate::StageCache::clear`]).
    pub(crate) fn clear(&self) {
        let mut inner = self.lock();
        let dir = inner.dir.clone();
        let last = inner.segment_id;
        for id in 1..=last {
            let _ = fs::remove_file(segment_path(&dir, id));
        }
        inner.index.clear();
        inner.bytes = 0;
        inner.writes = 0;
        inner.hits = 0;
        inner.corrupt_dropped = 0;
        inner.write_failures = 0;
        inner.segment_id = 1;
        inner.segment_len = 0;
        if let Ok(mut segment) =
            OpenOptions::new().create(true).write(true).truncate(true).open(segment_path(&dir, 1))
        {
            if write_header(&mut segment).is_ok() {
                inner.segment_len = HEADER;
            }
            inner.segment = segment;
        }
    }
}

/// Rolls the active segment forward. Returns `Err(())` when the new
/// segment cannot be created (the caller counts a write failure).
fn roll_segment(inner: &mut SpillInner) -> Result<(), ()> {
    let next_id = inner.segment_id + 1;
    let path = segment_path(&inner.dir, next_id);
    let mut segment =
        OpenOptions::new().create(true).append(true).open(&path).map_err(|_| ())?;
    write_header(&mut segment).map_err(|_| ())?;
    inner.segment = segment;
    inner.segment_id = next_id;
    inner.segment_len = HEADER;
    Ok(())
}

/// Scans one segment's bytes, indexing every valid record (later records
/// win on duplicate keys) and returning the length of the valid prefix.
/// The first bad header, length or CRC stops the scan — everything at and
/// after it is treated as a torn tail.
fn scan_segment(
    segment_id: u64,
    data: &[u8],
    index: &mut HashMap<StageKey, Location>,
    bytes: &mut u64,
    corrupt_dropped: &mut u64,
) -> u64 {
    if data.len() < HEADER as usize
        || &data[..8] != MAGIC
        || data[8..12] != VERSION.to_le_bytes()
    {
        if !data.is_empty() {
            *corrupt_dropped += 1;
        }
        return 0;
    }
    let mut offset = HEADER as usize;
    loop {
        let Some(head) = data.get(offset..offset + RECORD_HEAD as usize) else {
            if offset < data.len() {
                // A partial record head is a torn tail (not worth a
                // corruption counter bump — an in-flight append that
                // never completed looks exactly like this).
                return offset as u64;
            }
            return offset as u64;
        };
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
        if len > MAX_RECORD {
            *corrupt_dropped += 1;
            return offset as u64;
        }
        let body_start = offset + RECORD_HEAD as usize;
        let Some(body) = data.get(body_start..body_start + len as usize) else {
            // Torn tail: the record head promises more bytes than exist.
            return offset as u64;
        };
        if crc32(body) != crc || body.len() < 24 {
            *corrupt_dropped += 1;
            return offset as u64;
        }
        let key = StageKey::from_words([
            u64::from_le_bytes([
                body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
            ]),
            u64::from_le_bytes([
                body[8], body[9], body[10], body[11], body[12], body[13], body[14], body[15],
            ]),
        ]);
        let location = Location { segment: segment_id, offset: offset as u64, len };
        if let Some(old) = index.insert(key, location) {
            *bytes = bytes.saturating_sub(u64::from(old.len));
        }
        *bytes += u64::from(len);
        offset = body_start + len as usize;
    }
}

/// Reads, CRC-checks and decodes one indexed record.
fn read_record(
    dir: &Path,
    location: Location,
    key: StageKey,
) -> Result<(StageArtifact, usize), String> {
    let path = segment_path(dir, location.segment);
    let mut file = File::open(&path).map_err(|e| format!("open {}: {e}", path.display()))?;
    file.seek(SeekFrom::Start(location.offset)).map_err(|e| e.to_string())?;
    let mut head = [0u8; 8];
    file.read_exact(&mut head).map_err(|e| e.to_string())?;
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if len != location.len {
        return Err("record length changed under the index".to_string());
    }
    let mut body = vec![0u8; len as usize];
    file.read_exact(&mut body).map_err(|e| e.to_string())?;
    if crc32(&body) != crc {
        return Err("record CRC mismatch at read time".to_string());
    }
    if body.len() < 24 {
        return Err("record body shorter than its key and cost".to_string());
    }
    let stored_key = StageKey::from_words([
        u64::from_le_bytes([
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]),
        u64::from_le_bytes([
            body[8], body[9], body[10], body[11], body[12], body[13], body[14], body[15],
        ]),
    ]);
    if stored_key != key {
        return Err("record key does not match the index".to_string());
    }
    let cost = u64::from_le_bytes([
        body[16], body[17], body[18], body[19], body[20], body[21], body[22], body[23],
    ]) as usize;
    let artifact = decode_artifact(&body[24..])?;
    Ok((artifact, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StageHasher;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fresh, unique scratch directory for one test.
    fn scratch(label: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("obfuscade-spill-{}-{label}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key_of(label: &str) -> StageKey {
        let mut h = StageHasher::new("spill-test/v1");
        h.write_str(label);
        h.finish()
    }

    fn sample_outcomes() -> Vec<StageOutcome> {
        vec![
            StageOutcome { stage: Stage::Cad, status: StageStatus::Clean },
            StageOutcome { stage: Stage::Slice, status: StageStatus::Degraded },
            StageOutcome { stage: Stage::Test, status: StageStatus::Skipped },
        ]
    }

    fn sample_diagnostics() -> Vec<Diagnostic> {
        vec![Diagnostic {
            stage: Stage::Repair,
            message: "2 degenerate facets dropped — ünïcode too".to_string(),
            recovered: true,
        }]
    }

    fn mesh_artifact() -> StageArtifact {
        let shell = TriMesh::from_raw(
            vec![
                Point3::new(0.0, 0.0, 0.0),
                Point3::new(1.0, 0.0, 0.0),
                Point3::new(0.0, 1.0, 0.5),
                Point3::new(0.25, 0.25, 1.0),
            ],
            vec![[0, 1, 2], [0, 2, 3], [1, 3, 2]],
        );
        StageArtifact::Mesh(Arc::new(MeshArtifact {
            shells: vec![shell],
            mesh_triangles: 3,
            stl_bytes: 284,
            seam: Some(SeamReport {
                vertex_mismatch: 0.125,
                chain_mismatch: -0.0,
                chain_a_points: 7,
                chain_b_points: 9,
                conforming: false,
                profile: vec![(0.0, 1.0e-300), (0.5, f64::MIN_POSITIVE)],
            }),
            outcomes: sample_outcomes(),
            diagnostics: sample_diagnostics(),
        }))
    }

    fn slice_artifact() -> StageArtifact {
        let sliced = SlicedModel {
            layers: vec![Layer {
                z: 0.1778,
                loops: vec![Contour {
                    polygon: Polygon2::new(vec![
                        Point2::new(0.0, 0.0),
                        Point2::new(3.0, 0.0),
                        Point2::new(3.0, 2.0),
                        Point2::new(0.0, 2.0),
                    ]),
                    body: 1,
                }],
                open_paths: vec![Polyline2::new(vec![
                    Point2::new(0.5, 0.5),
                    Point2::new(2.5, 1.5),
                ])],
            }],
            layer_height: 0.1778,
            bounds: Aabb3 {
                min: Point3::new(0.0, 0.0, 0.0),
                max: Point3::new(3.0, 2.0, 0.1778),
            },
        };
        StageArtifact::Slice(Arc::new(SliceArtifact {
            sliced,
            slice_report: SliceReport {
                layers: 1,
                discontinuous_layers: 0,
                max_components: 2,
                internal_void_cells: 5,
                internal_void_area: 0.75,
                cell: 0.25,
                seam: Some(SeamExposure {
                    interface_layers: 3,
                    median_span: 1.5,
                    mean_shift: -0.25,
                }),
            },
            to_build: Transform3::rotation_x(std::f64::consts::FRAC_PI_2)
                .then(&Transform3::translation(Vec3::new(0.0, 0.1778, 0.0))),
            config: SlicerConfig {
                infill: InfillStyle::Sparse { density: 0.3 },
                ..SlicerConfig::default()
            },
            outcomes: sample_outcomes(),
            diagnostics: Vec::new(),
        }))
    }

    fn toolpath_artifact() -> StageArtifact {
        StageArtifact::Toolpath(Arc::new(ToolpathArtifact {
            toolpath: ToolPath {
                roads: vec![
                    Road {
                        from: Point2::new(0.0, 0.0),
                        to: Point2::new(1.0, 0.0),
                        z: 0.1778,
                        material: ToolMaterial::Model,
                        kind: RoadKind::Perimeter,
                        body: Some(2),
                    },
                    Road {
                        from: Point2::new(1.0, 0.0),
                        to: Point2::new(1.0, 1.0),
                        z: 0.3556,
                        material: ToolMaterial::Support,
                        kind: RoadKind::Infill,
                        body: None,
                    },
                ],
                layer_height: 0.1778,
                road_width: 0.5,
            },
            stats: ToolPathStats { model_mm: 12.5, support_mm: 3.25, layers: 2, time_s: 4.5 },
            outcomes: sample_outcomes(),
            diagnostics: sample_diagnostics(),
        }))
    }

    fn print_artifact() -> StageArtifact {
        let printed = PrintedPart::from_raw(PrintedPartRaw {
            profile: PrinterProfile::dimension_elite(),
            origin: Point3::new(-1.0, -2.0, 0.0),
            voxel_xy: 0.5,
            voxel_z: 0.1778,
            nx: 2,
            ny: 2,
            nz: 1,
            material: vec![Material::Model, Material::Empty, Material::Support, Material::Model],
            body: vec![1, 0, 0, 2],
            to_build: Transform3::rotation_x(0.3),
            seed: 0xdead_beef,
        })
        .expect("valid raw part");
        StageArtifact::Print(Arc::new(PrintArtifact {
            printed: Arc::new(printed),
            scan: ScanReport {
                internal_void_voxels: 1,
                internal_support_voxels: 1,
                internal_void_volume: 0.044_45,
                cold_joint_area: 0.25,
            },
            outcomes: sample_outcomes(),
        }))
    }

    fn tensile_artifact(uts: f64) -> StageArtifact {
        StageArtifact::Tensile(Arc::new(TensileResult {
            curve: vec![(0.0, 0.0), (0.01, 25.0), (0.02, uts)],
            young_modulus_gpa: 2.2,
            uts_mpa: uts,
            failure_strain: 0.021,
            toughness_kj_m3: 512.0,
            fracture_origin: Some(Point2::new(1.5, -0.5)),
            fracture_path: vec![Point2::new(1.5, -0.5), Point2::new(1.5, 0.5)],
            ruptured: true,
        }))
    }

    fn detection_artifact() -> StageArtifact {
        StageArtifact::Detection(Arc::new(DetectionReport {
            fault_spec: "toolpath.drop=0.2 firmware.feed=1.5".to_string(),
            quality: "smartphone".to_string(),
            jam_amplitude: 2.5,
            trace_seed: 11,
            blocked_by: Some("firmware — ünïcode too".to_string()),
            audio_score: 4.25,
            power_score: -0.0,
            fused_score: f64::MIN_POSITIVE,
            audio_threshold: 1.0,
            power_threshold: 1.5,
            fused_threshold: 1.0,
            audio_flagged: true,
            power_flagged: false,
            fused_flagged: true,
            suspect_frames: 0,
            golden_frames: 812,
        }))
    }

    fn sanitize_artifact() -> StageArtifact {
        StageArtifact::Sanitize(Arc::new(SanitizeReport {
            payload_seed: 5,
            payload_bits: 2,
            roads: 1024,
            suspicious_before: 0.9375,
            suspicious_after: 0.0,
            quantum_mm: 1.0 / 1024.0,
            residual_mm: 4.8e-4,
            fingerprint_preserved: true,
            original_fingerprint: "00112233445566778899aabbccddeeff".to_string(),
            sanitized_fingerprint: "00112233445566778899aabbccddeeff".to_string(),
        }))
    }

    fn all_kinds() -> Vec<StageArtifact> {
        vec![
            mesh_artifact(),
            slice_artifact(),
            toolpath_artifact(),
            print_artifact(),
            tensile_artifact(33.0),
            detection_artifact(),
            sanitize_artifact(),
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check values ("123456789" is the canonical one).
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_artifact_kind_round_trips_bit_identically() {
        for artifact in all_kinds() {
            let encoded = encode_artifact(&artifact);
            let decoded = decode_artifact(&encoded).expect("decodes");
            assert_eq!(
                encode_artifact(&decoded),
                encoded,
                "canonical re-encoding must be bit-identical"
            );
        }
    }

    #[test]
    fn decoder_rejects_trailing_bytes_and_bad_tags() {
        let mut encoded = encode_artifact(&tensile_artifact(1.0));
        encoded.push(0);
        assert!(decode_artifact(&encoded).is_err(), "trailing byte must fail");
        assert!(decode_artifact(&[99]).is_err(), "unknown kind must fail");
        assert!(decode_artifact(&[]).is_err(), "empty payload must fail");
    }

    #[test]
    fn put_get_round_trips_and_counts() {
        let dir = scratch("roundtrip");
        let store = SpillStore::open(&dir).expect("open");
        for (i, artifact) in all_kinds().into_iter().enumerate() {
            let key = key_of(&format!("k{i}"));
            let expected = encode_artifact(&artifact);
            store.put(key, &artifact, 1000 + i);
            let (back, cost) = store.get(key).expect("spill hit");
            assert_eq!(encode_artifact(&back), expected);
            assert_eq!(cost, 1000 + i);
        }
        let stats = store.stats();
        assert_eq!(stats.entries, 7);
        assert_eq!(stats.writes, 7);
        assert_eq!(stats.hits, 7);
        assert_eq!(stats.corrupt_dropped, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_puts_are_idempotent() {
        let dir = scratch("idempotent");
        let store = SpillStore::open(&dir).expect("open");
        let artifact = tensile_artifact(2.0);
        let key = key_of("same");
        store.put(key, &artifact, 64);
        store.put(key, &artifact, 64);
        store.put(key, &artifact, 64);
        assert_eq!(store.stats().writes, 1, "content-addressed keys are written once");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_recovers_the_index_across_a_restart() {
        let dir = scratch("restart");
        let mut expected = Vec::new();
        {
            let store = SpillStore::open(&dir).expect("open");
            for (i, artifact) in all_kinds().into_iter().enumerate() {
                let key = key_of(&format!("r{i}"));
                expected.push((key, encode_artifact(&artifact), 10 * (i + 1)));
                store.put(key, &artifact, 10 * (i + 1));
            }
        }
        let store = SpillStore::open(&dir).expect("reopen");
        assert_eq!(store.stats().entries, expected.len());
        for (key, bytes, cost) in expected {
            let (back, got_cost) = store.get(key).expect("recovered entry");
            assert_eq!(encode_artifact(&back), bytes, "rehydrated bytes must be identical");
            assert_eq!(got_cost, cost);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_entries_survive() {
        let dir = scratch("torn");
        let key = key_of("survivor");
        let artifact = tensile_artifact(5.0);
        {
            let store = SpillStore::open(&dir).expect("open");
            store.put(key, &artifact, 77);
        }
        // Simulate a crash mid-append: a record head promising more bytes
        // than the file holds.
        let path = segment_path(&dir, 1);
        let mut file = OpenOptions::new().append(true).open(&path).expect("append");
        file.write_all(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3])
            .expect("torn tail");
        drop(file);
        let torn_len = fs::metadata(&path).expect("meta").len();

        let store = SpillStore::open(&dir).expect("recovery must not error");
        let (back, _) = store.get(key).expect("entry before the tear survives");
        assert_eq!(encode_artifact(&back), encode_artifact(&artifact));
        assert!(
            fs::metadata(&path).expect("meta").len() < torn_len,
            "recovery truncates the torn tail"
        );
        // And the truncated segment accepts appends again.
        let key2 = key_of("after-recovery");
        store.put(key2, &tensile_artifact(6.0), 1);
        assert!(store.get(key2).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_and_all_entries_stay_reachable() {
        let dir = scratch("roll");
        // Tiny roll threshold: every record lands in its own segment.
        let store = SpillStore::open_with_roll(&dir, 64).expect("open");
        let mut keys = Vec::new();
        for i in 0..6 {
            let key = key_of(&format!("seg{i}"));
            store.put(key, &tensile_artifact(f64::from(i)), 1);
            keys.push(key);
        }
        let segments = fs::read_dir(&dir).expect("dir").count();
        assert!(segments >= 3, "expected multiple segments, got {segments}");
        for key in &keys {
            assert!(store.get(*key).is_some());
        }
        // Restart still sees every segment's records.
        drop(store);
        let store = SpillStore::open_with_roll(&dir, 64).expect("reopen");
        for key in keys {
            assert!(store.get(key).is_some(), "entry lost across restart");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_faults_drop_the_entry_not_the_store() {
        let dir = scratch("fault");
        let store = SpillStore::open(&dir).expect("open");
        store.set_write_fault(|ordinal| ordinal % 2 == 0);
        let (ka, kb) = (key_of("fault-a"), key_of("fault-b"));
        store.put(ka, &tensile_artifact(1.0), 1); // ordinal 0: fails
        store.put(kb, &tensile_artifact(2.0), 1); // ordinal 1: lands
        assert!(store.get(ka).is_none(), "failed write must not be indexed");
        assert!(store.get(kb).is_some());
        let stats = store.stats();
        assert_eq!((stats.writes, stats.write_failures), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_deletes_segments_and_resets_counters() {
        let dir = scratch("clear");
        let store = SpillStore::open(&dir).expect("open");
        let key = key_of("gone");
        store.put(key, &tensile_artifact(4.0), 9);
        store.clear();
        assert!(store.get(key).is_none());
        assert_eq!(store.stats(), SpillStats::default());
        // Still writable after a clear.
        store.put(key, &tensile_artifact(4.0), 9);
        assert!(store.get(key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The headline robustness property: whatever corruption hits the
        /// segment files — bit flips, truncated tails, duplicated records
        /// — recovery + lookup either return the exact original bytes or
        /// nothing. Wrong bytes are never served, and recovery never
        /// panics or errors.
        #[test]
        fn corruption_never_yields_wrong_bytes(
            seed in 0u64..1u64 << 48,
            flips in 0usize..12,
            truncate_roll in 0u8..2,
            duplicate_roll in 0u8..2,
        ) {
            let (truncate, duplicate) = (truncate_roll == 1, duplicate_roll == 1);
            let dir = scratch("prop");
            let mut expected = Vec::new();
            {
                let store = SpillStore::open(&dir).expect("open");
                for (i, artifact) in all_kinds().into_iter().enumerate() {
                    let key = key_of(&format!("p{seed}-{i}"));
                    expected.push((key, encode_artifact(&artifact)));
                    store.put(key, &artifact, i + 1);
                }
            }
            let path = segment_path(&dir, 1);
            let mut data = fs::read(&path).expect("segment bytes");
            let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut next = move || {
                // xorshift64* — cheap deterministic corruption source.
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            if duplicate && data.len() > HEADER as usize {
                // Replay a whole valid record (CRC intact): recovery must
                // treat the duplicate as last-wins, identical bytes.
                let copy_len = (next() as usize % data.len()).max(1);
                let tail = data[data.len() - copy_len..].to_vec();
                data.extend_from_slice(&tail);
            }
            for _ in 0..flips {
                let pos = next() as usize % data.len();
                let bit = 1u8 << (next() % 8);
                data[pos] ^= bit;
            }
            if truncate {
                let keep = next() as usize % (data.len() + 1);
                data.truncate(keep);
            }
            fs::write(&path, &data).expect("write corrupted segment");

            let store = SpillStore::open(&dir).expect("recovery must never error");
            for (key, bytes) in &expected {
                if let Some((artifact, _)) = store.get(*key) {
                    prop_assert_eq!(
                        &encode_artifact(&artifact),
                        bytes,
                        "a served entry must be bit-identical to what was stored"
                    );
                }
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
