//! Multi-feature protection: composing several keyed features multiplies
//! the key space — the quantitative version of the paper's logic-locking
//! analogy ("we add extra design features" like logic locking "adds extra
//! gates").

use am_cad::{CadError, Feature, Part, SolidShape};
use am_geom::{Aabb3, Point3};
use am_printer::ScanReport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Authenticity, CadRecipe};

/// A prism protected with `n` embedded spheres, each requiring its own CAD
/// recipe: the key space grows as `4^n` and a random counterfeiter's
/// per-print success probability shrinks as `4^-n`.
///
/// # Examples
///
/// ```
/// use obfuscade::MultiSphereScheme;
///
/// let scheme = MultiSphereScheme::new(3)?;
/// assert_eq!(scheme.key_space_size(), 64);
/// # Ok::<(), am_cad::CadError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSphereScheme {
    size: Point3,
    centers: Vec<Point3>,
    radius: f64,
}

impl MultiSphereScheme {
    /// A scheme with `n` spheres spread along a 25.4 × 12.7 × 12.7 mm
    /// prism (the §3.2 geometry, scaled in length for larger `n`).
    ///
    /// # Errors
    ///
    /// Returns [`CadError::InvalidDimension`] if `n` is zero or the spheres
    /// do not fit.
    pub fn new(n: usize) -> Result<Self, CadError> {
        if n == 0 {
            return Err(CadError::InvalidDimension { name: "sphere count", value: 0.0 });
        }
        let radius = 2.5;
        let pitch = 4.0 * radius;
        let length = (n as f64 * pitch).max(25.4);
        let size = Point3::new(length, 12.7, 12.7);
        let centers = (0..n)
            .map(|i| Point3::new((i as f64 + 0.5) * length / n as f64, 6.35, 6.35))
            .collect();
        Ok(MultiSphereScheme { size, centers, radius })
    }

    /// Number of planted spheres.
    pub fn feature_count(&self) -> usize {
        self.centers.len()
    }

    /// Size of the CAD-recipe key space: `4^n`.
    pub fn key_space_size(&self) -> u64 {
        4u64.pow(self.feature_count() as u32)
    }

    /// The centres of the planted spheres.
    pub fn centers(&self) -> &[Point3] {
        &self.centers
    }

    /// Sphere radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The part as manufactured under one recipe **per sphere**.
    ///
    /// # Errors
    ///
    /// Returns [`CadError::InvalidDimension`] if the recipe count does not
    /// match the sphere count, or propagates CAD errors.
    pub fn part_for_recipes(&self, recipes: &[CadRecipe]) -> Result<Part, CadError> {
        if recipes.len() != self.centers.len() {
            return Err(CadError::InvalidDimension {
                name: "recipe count",
                value: recipes.len() as f64,
            });
        }
        let mut part = Part::new(format!("prism-{}-spheres", self.centers.len()));
        part.add_feature(Feature::Base(SolidShape::Cuboid(Aabb3::new(
            Point3::ZERO,
            self.size,
        ))))?;
        for (center, recipe) in self.centers.iter().zip(recipes) {
            part.add_feature(Feature::EmbedSphere {
                center: *center,
                radius: self.radius,
                kind: recipe.body,
                removal: recipe.removal,
            })?;
        }
        Ok(part)
    }

    /// The genuine recipe vector (all spheres keyed correctly).
    pub fn genuine_recipes(&self) -> Vec<CadRecipe> {
        vec![crate::scheme::GENUINE_RECIPE; self.centers.len()]
    }

    /// A uniformly random recipe vector (a counterfeiter's guess).
    pub fn random_recipes(&self, seed: u64) -> Vec<CadRecipe> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.centers.len())
            .map(|_| CadRecipe::ALL[rng.gen_range(0..CadRecipe::ALL.len())])
            .collect()
    }

    /// Authenticates a scanned part: genuine units are fully solid; any
    /// mis-keyed sphere leaves a detectable hollow.
    pub fn authenticate(&self, scan: &ScanReport) -> Authenticity {
        let sphere = 4.0 / 3.0 * std::f64::consts::PI * self.radius.powi(3);
        if scan.internal_support_voxels > 0 || scan.internal_void_volume > sphere * 0.4 {
            Authenticity::Counterfeit
        } else if scan.internal_void_volume < sphere * 0.1 {
            Authenticity::Genuine
        } else {
            Authenticity::Inconclusive
        }
    }

    /// Expected number of physical prints a random-guessing counterfeiter
    /// needs before one comes out solid: `4^n` (geometric distribution).
    pub fn expected_prints_to_success(&self) -> f64 {
        self.key_space_size() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::{BodyKind, MaterialRemoval};

    #[test]
    fn key_space_scales_exponentially() {
        for n in 1..=5 {
            let scheme = MultiSphereScheme::new(n).unwrap();
            assert_eq!(scheme.key_space_size(), 4u64.pow(n as u32));
            assert_eq!(scheme.feature_count(), n);
        }
    }

    #[test]
    fn zero_spheres_rejected() {
        assert!(MultiSphereScheme::new(0).is_err());
    }

    #[test]
    fn genuine_recipes_are_all_removal_solid() {
        let scheme = MultiSphereScheme::new(3).unwrap();
        for r in scheme.genuine_recipes() {
            assert_eq!(r.removal, MaterialRemoval::With);
            assert_eq!(r.body, BodyKind::Solid);
        }
    }

    #[test]
    fn part_construction_validates_recipe_count() {
        let scheme = MultiSphereScheme::new(2).unwrap();
        assert!(scheme.part_for_recipes(&[CadRecipe::ALL[0]]).is_err());
        let part = scheme.part_for_recipes(&scheme.genuine_recipes()).unwrap();
        // Base + per-sphere features; genuine recipe resolves to 1 + 2n shells.
        assert_eq!(part.resolve().unwrap().shells().len(), 5);
    }

    #[test]
    fn random_recipes_are_deterministic_per_seed() {
        let scheme = MultiSphereScheme::new(4).unwrap();
        assert_eq!(scheme.random_recipes(9), scheme.random_recipes(9));
        // And not constant across seeds (with overwhelming probability).
        let distinct: std::collections::HashSet<Vec<CadRecipe>> =
            (0..16).map(|s| scheme.random_recipes(s)).collect();
        assert!(distinct.len() > 4);
    }
}
