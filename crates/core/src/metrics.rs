//! Unified observability surface: one [`MetricsSnapshot`] gathering every
//! counter family the toolchain grows — stage-cache traffic, solver-pool
//! build/reuse, the fea crate's process-wide solver-work counters, and
//! (when a service daemon is running) queue depth plus a request-latency
//! histogram.
//!
//! Before PR 5 these surfaces were ad hoc: `sweep --cache-stats` printed
//! [`CacheStats`] and [`SolverPoolStats`] with its own format strings, the
//! bench report carried three loose cache counters, and the solver-work
//! counters were only visible inside the bench. The snapshot pins **one
//! stable field order** for the JSON form (the service `stats` response
//! and future tooling parse it), and one human rendering that the CLI and
//! bench share.

use crate::cache::{CacheStats, StageCache};
use crate::json::Json;
use am_fea::{SolverCounters, SolverPoolStats};

/// Number of latency buckets. Geometric bounds cover ~0.25 ms to ~5.5
/// minutes; the last bucket absorbs everything slower.
const BUCKETS: usize = 32;
/// Upper bound of bucket 0, in milliseconds.
const BASE_MS: f64 = 0.25;
/// Geometric growth factor between bucket bounds.
const GROWTH: f64 = 1.6;

/// Exact order-statistic rank of the `q`-quantile over `n` samples:
/// `⌈q·n⌉`, clamped to `[1, n]`. This is the **one** rank rule every
/// quantile reader in the workspace shares — the service latency
/// histogram, the load generator's exact client-side quantiles, and the
/// detector score distributions in `am-detect` — so "p99" always means
/// the same order statistic everywhere. Returns 0 when `n` is 0.
pub fn quantile_rank(q: f64, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    ((q * n as f64).ceil() as usize).clamp(1, n)
}

/// Exact sample quantile (0 < q ≤ 1) of an **ascending-sorted** slice:
/// the [`quantile_rank`]-th smallest element. 0 when the slice is empty.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    match quantile_rank(q, sorted.len()) {
        0 => 0.0,
        rank => sorted[rank - 1],
    }
}

/// A fixed-bucket request-latency histogram (geometric bucket bounds).
///
/// Quantiles read from it are bucket-upper-bound estimates — good enough
/// for a `stats` glance; the bench computes exact quantiles client-side
/// from raw samples instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
}

impl LatencyHistogram {
    /// Upper bound of bucket `i` in milliseconds (the last bucket is
    /// unbounded; its nominal bound is returned for quantile estimates).
    fn bound_ms(i: usize) -> f64 {
        BASE_MS * GROWTH.powi(i as i32)
    }

    /// Records one request latency.
    pub fn record_ms(&mut self, ms: f64) {
        let mut i = 0;
        while i + 1 < BUCKETS && ms > Self::bound_ms(i) {
            i += 1;
        }
        self.counts[i] += 1;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimated `q`-quantile (0 < q ≤ 1) in milliseconds: the upper bound
    /// of the bucket holding the ⌈q·n⌉-th sample. 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = quantile_rank(q, total as usize) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bound_ms(i);
            }
        }
        Self::bound_ms(BUCKETS - 1)
    }

    /// Merges another histogram into this one (used to sum per-worker
    /// histograms into one service-wide view).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// Service-side counters (queue, admission control, request latencies).
/// Only present in snapshots taken by a running daemon.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Operator-chosen node name of the daemon that took the snapshot
    /// (`serve --node`; empty when unnamed). Fleet tooling uses it to
    /// tell the N backends of a routed deployment apart on the stats
    /// wire.
    pub node: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded job-queue capacity (admission-control limit).
    pub queue_capacity: usize,
    /// Jobs queued but not yet picked up, at snapshot time.
    pub queue_depth: usize,
    /// Connections accepted since the daemon started.
    pub connections: u64,
    /// Job requests admitted to the queue.
    pub accepted: u64,
    /// Job requests fully processed (response sent).
    pub completed: u64,
    /// Job requests rejected with a typed `overloaded` response because
    /// the queue was at capacity.
    pub rejected_overloaded: u64,
    /// Job requests whose deadline expired before or during processing.
    pub expired_deadlines: u64,
    /// Worker threads that died to a panicking job (each costs that job a
    /// typed `internal` error and nothing else).
    pub worker_panics: u64,
    /// Worker threads respawned by the supervisor after a panic.
    pub respawns: u64,
    /// Connection backend serving this daemon (`"threads"` or
    /// `"reactor"`; empty in snapshots not taken by a daemon).
    pub backend: &'static str,
    /// Request frames decoded under the JSON codec.
    pub frames_json: u64,
    /// Request frames decoded under the negotiated binary codec.
    pub frames_binary: u64,
    /// Connections that successfully negotiated the binary codec.
    pub binary_negotiated: u64,
    /// Reactor writes deferred because the peer's socket buffer was full
    /// (each is one would-block → wait-for-writable transition).
    pub backpressure_stalls: u64,
    /// Request-latency histogram (queue wait + pipeline time).
    pub latency: LatencyHistogram,
}

/// One coherent snapshot of every stats surface, with a stable field
/// order in its JSON form (`cache`, `solver_pool`, `solver`, `service`,
/// `fleet`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Stage-cache traffic of the cache being observed.
    pub cache: CacheStats,
    /// Process-wide tensile solver-pool build/reuse counters.
    pub solver_pool: SolverPoolStats,
    /// Process-wide solver-work counters (monotonic since process start).
    pub solver: SolverCounters,
    /// Service counters, when a daemon owns the observed cache.
    pub service: Option<ServiceStats>,
    /// Routing-tier counters, when the observed daemon is a router front
    /// end (`am-router` fills this with per-backend routing/health
    /// state). `None` everywhere else; the JSON form keeps the field
    /// present as `null` so parsers see a fixed shape.
    pub fleet: Option<Json>,
}

impl MetricsSnapshot {
    /// Gathers a snapshot around `cache`: its own stats plus the
    /// process-wide solver pool and solver-work counters. The `service`
    /// section is `None`; a running daemon fills it in.
    pub fn gather(cache: &StageCache) -> Self {
        MetricsSnapshot {
            cache: cache.stats(),
            solver_pool: crate::pipeline::fea_solver_pool_stats(),
            solver: am_fea::solver_counters(),
            service: None,
            fleet: None,
        }
    }

    /// The snapshot as a [`Json`] object with a **stable field order** —
    /// the service `stats` response body, byte-stable for equal counters.
    pub fn to_json(&self) -> Json {
        let c = &self.cache;
        let cache = Json::Object(vec![
            ("hits".into(), Json::u64(c.hits)),
            ("misses".into(), Json::u64(c.misses)),
            ("evictions".into(), Json::u64(c.evictions)),
            ("insertions".into(), Json::u64(c.insertions)),
            ("entries".into(), Json::u64(c.entries as u64)),
            ("bytes".into(), Json::u64(c.bytes as u64)),
            ("budget".into(), Json::u64(c.budget as u64)),
            ("spill_entries".into(), Json::u64(c.spill_entries as u64)),
            ("spill_bytes".into(), Json::u64(c.spill_bytes)),
            ("spill_hits".into(), Json::u64(c.spill_hits)),
            ("spill_writes".into(), Json::u64(c.spill_writes)),
            ("spill_corrupt_dropped".into(), Json::u64(c.spill_corrupt_dropped)),
            ("spill_write_failures".into(), Json::u64(c.spill_write_failures)),
        ]);
        let pool = Json::Object(vec![
            ("builds".into(), Json::u64(self.solver_pool.builds)),
            ("reuses".into(), Json::u64(self.solver_pool.reuses)),
        ]);
        let solver = Json::Object(vec![
            ("newton_iters".into(), Json::u64(self.solver.newton_iters)),
            ("pcg_iters".into(), Json::u64(self.solver.pcg_iters)),
            ("relax_iters".into(), Json::u64(self.solver.relax_iters)),
            ("force_evals".into(), Json::u64(self.solver.force_evals)),
        ]);
        let service = match &self.service {
            None => Json::Null,
            Some(s) => Json::Object(vec![
                ("workers".into(), Json::u64(s.workers as u64)),
                ("queue_capacity".into(), Json::u64(s.queue_capacity as u64)),
                ("queue_depth".into(), Json::u64(s.queue_depth as u64)),
                ("connections".into(), Json::u64(s.connections)),
                ("accepted".into(), Json::u64(s.accepted)),
                ("completed".into(), Json::u64(s.completed)),
                ("rejected_overloaded".into(), Json::u64(s.rejected_overloaded)),
                ("expired_deadlines".into(), Json::u64(s.expired_deadlines)),
                ("worker_panics".into(), Json::u64(s.worker_panics)),
                ("respawns".into(), Json::u64(s.respawns)),
                ("backend".into(), Json::String(s.backend.to_string())),
                ("node".into(), Json::String(s.node.clone())),
                ("frames_json".into(), Json::u64(s.frames_json)),
                ("frames_binary".into(), Json::u64(s.frames_binary)),
                ("binary_negotiated".into(), Json::u64(s.binary_negotiated)),
                ("backpressure_stalls".into(), Json::u64(s.backpressure_stalls)),
                ("latency_count".into(), Json::u64(s.latency.count())),
                ("latency_p50_ms".into(), Json::Number(s.latency.quantile_ms(0.50))),
                ("latency_p95_ms".into(), Json::Number(s.latency.quantile_ms(0.95))),
                ("latency_p99_ms".into(), Json::Number(s.latency.quantile_ms(0.99))),
            ]),
        };
        let fleet = match &self.fleet {
            None => Json::Null,
            Some(f) => f.clone(),
        };
        Json::Object(vec![
            ("cache".into(), cache),
            ("solver_pool".into(), pool),
            ("solver".into(), solver),
            ("service".into(), service),
            ("fleet".into(), fleet),
        ])
    }

    /// Human-readable multi-line rendering (the `sweep --cache-stats` and
    /// service `stats` console form).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "stage cache: {}", cache_line(&self.cache));
        let _ = writeln!(
            out,
            "             {} live entries, {:.1} MiB of {:.0} MiB budget",
            self.cache.entries,
            self.cache.bytes as f64 / (1024.0 * 1024.0),
            self.cache.budget as f64 / (1024.0 * 1024.0)
        );
        if self.cache.spill_entries > 0 || self.cache.spill_hits > 0 {
            let _ = writeln!(
                out,
                "spill tier:  {} entries, {:.1} MiB on disk; {} rehydrations, {} writes, \
                 {} corrupt dropped, {} write failures",
                self.cache.spill_entries,
                self.cache.spill_bytes as f64 / (1024.0 * 1024.0),
                self.cache.spill_hits,
                self.cache.spill_writes,
                self.cache.spill_corrupt_dropped,
                self.cache.spill_write_failures
            );
        }
        let _ = writeln!(
            out,
            "solver pool: {} scratch builds, {} reuses across {} tensile runs",
            self.solver_pool.builds,
            self.solver_pool.reuses,
            self.solver_pool.builds + self.solver_pool.reuses
        );
        let _ = writeln!(
            out,
            "solver work: {} newton, {} pcg, {} relaxation iters; {} force evals",
            self.solver.newton_iters,
            self.solver.pcg_iters,
            self.solver.relax_iters,
            self.solver.force_evals
        );
        if let Some(s) = &self.service {
            if !s.node.is_empty() {
                let _ = writeln!(out, "node:        {}", s.node);
            }
            let _ = writeln!(
                out,
                "service:     {} workers, queue {}/{}; {} conns, {} accepted, {} completed, \
                 {} overloaded, {} expired",
                s.workers,
                s.queue_depth,
                s.queue_capacity,
                s.connections,
                s.accepted,
                s.completed,
                s.rejected_overloaded,
                s.expired_deadlines
            );
            if !s.backend.is_empty() {
                let _ = writeln!(
                    out,
                    "wire:        {} backend; {} json + {} binary frames, {} binary conns, \
                     {} backpressure stalls",
                    s.backend,
                    s.frames_json,
                    s.frames_binary,
                    s.binary_negotiated,
                    s.backpressure_stalls
                );
            }
            if s.worker_panics > 0 || s.respawns > 0 {
                let _ = writeln!(
                    out,
                    "supervisor:  {} worker panics, {} respawns",
                    s.worker_panics, s.respawns
                );
            }
            let _ = writeln!(
                out,
                "latency:     p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms over {} requests",
                s.latency.quantile_ms(0.50),
                s.latency.quantile_ms(0.95),
                s.latency.quantile_ms(0.99),
                s.latency.count()
            );
        }
        out
    }
}

/// One-line [`CacheStats`] summary, shared by the snapshot rendering and
/// the bench report table.
pub fn cache_line(s: &CacheStats) -> String {
    format!(
        "{} hits / {} lookups ({:.0}% hit rate), {} insertions, {} evictions",
        s.hits,
        s.hits + s.misses,
        100.0 * s.hit_rate(),
        s.insertions,
        s.evictions
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotonic_and_bucketed() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile_ms(0.5), 0.0);
        for ms in [0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 400.0] {
            h.record_ms(ms);
        }
        assert_eq!(h.count(), 8);
        let (p50, p95, p99) = (h.quantile_ms(0.5), h.quantile_ms(0.95), h.quantile_ms(0.99));
        assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Each recorded sample sits at or below its bucket's upper bound.
        assert!(h.quantile_ms(1.0) >= 400.0);
    }

    #[test]
    fn histogram_merge_sums_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record_ms(1.0);
        b.record_ms(1.0);
        b.record_ms(1000.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn snapshot_json_field_order_is_stable() {
        let snapshot = MetricsSnapshot {
            cache: CacheStats { hits: 3, misses: 1, ..CacheStats::default() },
            solver_pool: SolverPoolStats { builds: 2, reuses: 5 },
            solver: SolverCounters::default(),
            service: Some(ServiceStats { workers: 2, queue_capacity: 8, ..Default::default() }),
            fleet: None,
        };
        let json = snapshot.to_json().render();
        let cache_at = json.find("\"cache\"").expect("cache");
        let pool_at = json.find("\"solver_pool\"").expect("pool");
        let solver_at = json.find("\"solver\":").expect("solver");
        let service_at = json.find("\"service\"").expect("service");
        let fleet_at = json.find("\"fleet\"").expect("fleet");
        assert!(cache_at < pool_at && pool_at < solver_at && solver_at < service_at);
        assert!(service_at < fleet_at);
        assert!(json.contains("\"hits\":3"));
        assert!(json.contains("\"reuses\":5"));
        assert!(json.contains("\"workers\":2"));
        // Absent service and fleet sections render as null, keeping the
        // fields present.
        let bare = MetricsSnapshot::default();
        let bare_json = bare.to_json().render();
        assert!(bare_json.contains("\"service\":null"));
        assert!(bare_json.contains("\"fleet\":null"));
    }

    #[test]
    fn snapshot_json_carries_node_identity_and_fleet_section() {
        let snapshot = MetricsSnapshot {
            service: Some(ServiceStats { node: "node2".to_string(), ..Default::default() }),
            fleet: Some(Json::Object(vec![("failovers".into(), Json::u64(3))])),
            ..MetricsSnapshot::default()
        };
        let json = snapshot.to_json().render();
        assert!(json.contains("\"node\":\"node2\""), "{json}");
        assert!(json.contains("\"fleet\":{\"failovers\":3}"), "{json}");
        // Node identity sits with the backend identity, before the
        // latency block.
        let backend_at = json.find("\"backend\"").expect("backend");
        let node_at = json.find("\"node\"").expect("node");
        let latency_at = json.find("\"latency_count\"").expect("latency_count");
        assert!(backend_at < node_at && node_at < latency_at);
        assert!(snapshot.render().contains("node2"));
    }

    #[test]
    fn snapshot_json_carries_spill_and_supervision_counters() {
        let snapshot = MetricsSnapshot {
            cache: CacheStats { spill_hits: 4, spill_writes: 9, ..CacheStats::default() },
            service: Some(ServiceStats { worker_panics: 1, respawns: 1, ..Default::default() }),
            ..MetricsSnapshot::default()
        };
        let json = snapshot.to_json().render();
        for field in [
            "\"spill_entries\":0",
            "\"spill_bytes\":0",
            "\"spill_hits\":4",
            "\"spill_writes\":9",
            "\"spill_corrupt_dropped\":0",
            "\"spill_write_failures\":0",
            "\"worker_panics\":1",
            "\"respawns\":1",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let text = snapshot.render();
        assert!(text.contains("spill tier"));
        assert!(text.contains("supervisor"));
    }

    #[test]
    fn snapshot_json_carries_backend_and_codec_counters() {
        let snapshot = MetricsSnapshot {
            service: Some(ServiceStats {
                backend: "reactor",
                frames_json: 3,
                frames_binary: 12,
                binary_negotiated: 2,
                backpressure_stalls: 1,
                ..Default::default()
            }),
            ..MetricsSnapshot::default()
        };
        let json = snapshot.to_json().render();
        for field in [
            "\"backend\":\"reactor\"",
            "\"frames_json\":3",
            "\"frames_binary\":12",
            "\"binary_negotiated\":2",
            "\"backpressure_stalls\":1",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // Stable order: the codec counters sit between the supervision
        // counters and the latency block.
        let respawns_at = json.find("\"respawns\"").expect("respawns");
        let backend_at = json.find("\"backend\"").expect("backend");
        let latency_at = json.find("\"latency_count\"").expect("latency_count");
        assert!(respawns_at < backend_at && backend_at < latency_at);
        let text = snapshot.render();
        assert!(text.contains("reactor backend"), "{text}");
        assert!(text.contains("backpressure"), "{text}");
    }

    #[test]
    fn render_names_every_surface() {
        let text = MetricsSnapshot::default().render();
        assert!(text.contains("stage cache"));
        assert!(text.contains("solver pool"));
        assert!(text.contains("solver work"));
    }

    #[test]
    fn quantile_is_the_exact_order_statistic() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&sorted, 0.25), 1.0);
        assert_eq!(quantile(&sorted, 0.5), 2.0);
        assert_eq!(quantile(&sorted, 0.75), 3.0);
        assert_eq!(quantile(&sorted, 0.99), 4.0);
        assert_eq!(quantile(&sorted, 1.0), 4.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        // The rank rule is shared with the histogram: ⌈q·n⌉ clamped.
        assert_eq!(quantile_rank(0.5, 0), 0);
        assert_eq!(quantile_rank(0.001, 10), 1);
        assert_eq!(quantile_rank(1.0, 10), 10);
        assert_eq!(quantile_rank(0.95, 20), 19);
    }

    #[test]
    fn histogram_quantiles_follow_the_shared_rank_rule() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record_ms(0.1);
        }
        h.record_ms(1e9);
        // Rank ⌈0.99·100⌉ = 99 still sits in the fast bucket; only
        // q = 1.0 reaches the outlier.
        assert!(h.quantile_ms(0.99) < 1.0);
        assert!(h.quantile_ms(1.0) > 1.0);
    }
}
