//! Determinism properties for the content-addressed stage cache and the
//! shared-prefix batch engine (PR 3).
//!
//! The batch engine's contract is that caching is *invisible* except in
//! wall-clock time: `run_pipeline_batch` / `sweep_key_space` must return
//! **bit-identical** output to independent cold `run_pipeline` calls — for
//! clean runs and seeded fault-injection runs alike, at every thread
//! budget, and even when clean and faulted runs share one cache (the
//! fault-poisoning rule). As in `parallel_determinism.rs`, comparing the
//! `Debug` rendering of the whole `Result` makes the check exhaustive: a
//! single ULP of drift anywhere in the output breaks the string equality.

use am_cad::parts::{prism_with_sphere, PrismDims};
use am_cad::{BodyKind, MaterialRemoval, Part};
use am_geom::Point3;
use am_mesh::Resolution;
use am_par::Parallelism;
use am_slicer::{Orientation, SlicerConfig};
use obfuscade::{
    run_pipeline, run_pipeline_batch_with, run_pipeline_cached, run_pipeline_with_faults,
    sweep_key_space, FaultPlan, FeaSolver, ProcessKey, ProcessPlan, StageCache,
};
use proptest::prelude::*;

/// Fault specs spanning the catalog's stages (subset of the
/// `parallel_determinism.rs` list), plus the clean run.
const FAULT_SPECS: &[&str] = &[
    "",
    "stl.degenerate=3",
    "stl.void=0.15 stl.flip=2",
    "toolpath.dup=0.5 toolpath.drop=0.2",
    "slicer.zero_layer toolpath.drop=0.5",
    "firmware.feed=1.5",
];

fn fault_plan(spec: &str, seed: u64) -> FaultPlan {
    if spec.is_empty() {
        FaultPlan::none().with_seed(seed)
    } else {
        spec.parse::<FaultPlan>().expect(spec).with_seed(seed)
    }
}

fn specimen(sphere_radius: f64) -> Part {
    let dims = PrismDims { size: Point3::new(25.4, 12.7, 12.7), sphere_radius };
    prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without).expect("prism")
}

/// A coarse slicer config keeping each pipeline run cheap.
fn coarse_slicer(layer: f64) -> SlicerConfig {
    SlicerConfig {
        layer_height: layer,
        road_width: layer,
        analysis_cell: layer / 2.0,
        ..SlicerConfig::default()
    }
}

/// A batch of plans with genuinely shared prefixes: both orientations ×
/// two seeds, so the mesh is shared 4 ways and each slice/tool-path
/// prefix 2 ways.
fn plan_batch(layer: f64, tensile: bool, solver: FeaSolver, seed: u64) -> Vec<ProcessPlan> {
    let mut plans = Vec::new();
    for orientation in [Orientation::Xy, Orientation::Xz] {
        for ds in 0..2u64 {
            let mut plan = ProcessPlan::fdm(Resolution::Coarse, orientation)
                .with_seed(seed + ds)
                .with_tensile(tensile)
                .with_fea_solver(solver);
            plan.slicer = coarse_slicer(layer);
            plans.push(plan);
        }
    }
    plans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `run_pipeline_batch_with` must be indistinguishable from independent
    /// `run_pipeline_with_faults` calls — with and without seeded faults,
    /// across thread budgets {1, 2, 8}.
    #[test]
    fn batch_is_bit_identical_to_independent_runs(
        spec_idx in 0..FAULT_SPECS.len(),
        fault_seed in 1..10_000u64,
        layer in 0.5..0.9f64,
        sphere_radius in 2.0..4.0f64,
        tensile in 0..2usize,
        solver_idx in 0..2usize,
    ) {
        let part = specimen(sphere_radius);
        let faults = fault_plan(FAULT_SPECS[spec_idx], fault_seed);
        let plans = plan_batch(layer, tensile == 1, FeaSolver::ALL[solver_idx], fault_seed);

        let independent: Vec<String> = plans
            .iter()
            .map(|plan| format!("{:?}", run_pipeline_with_faults(&part, plan, &faults)))
            .collect();

        for threads in [1usize, 2, 8] {
            let cache = StageCache::default();
            let batch = run_pipeline_batch_with(
                &part,
                &plans,
                &faults,
                &cache,
                Parallelism::threads(threads),
            );
            prop_assert_eq!(batch.len(), plans.len());
            for (slot, (cold, hot)) in independent.iter().zip(&batch).enumerate() {
                prop_assert_eq!(
                    cold,
                    &format!("{:?}", hot),
                    "batch slot {} diverged at threads={} (faults: {}, seed {})",
                    slot,
                    threads,
                    FAULT_SPECS[spec_idx],
                    fault_seed
                );
            }
            // The batch genuinely shared work: 4 plans, 1 unique mesh.
            prop_assert!(cache.stats().hits > 0, "no cache hits in a shared-prefix batch");
        }
    }
}

/// The acceptance pin: `sweep_key_space` over the **full**
/// `ProcessKey::key_space()` returns exactly what cold per-key
/// `run_pipeline` calls return, slot for slot.
#[test]
fn sweep_key_space_is_bit_identical_to_cold_per_key_runs() {
    let dims = PrismDims { size: Point3::new(18.0, 9.0, 9.0), sphere_radius: 3.0 };
    let mut base = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy).with_seed(7);
    base.slicer = coarse_slicer(0.7);
    let keys = ProcessKey::key_space();

    let cache = StageCache::default();
    let swept = sweep_key_space(
        |recipe| prism_with_sphere(&dims, recipe.body, recipe.removal),
        &base,
        &keys,
        &cache,
        Parallelism::threads(2),
    );
    assert_eq!(swept.len(), keys.len());

    for (key, result) in &swept {
        let part = prism_with_sphere(&dims, key.recipe.body, key.recipe.removal).expect("part");
        let plan = ProcessPlan {
            resolution: key.resolution,
            orientation: key.orientation,
            ..base.clone()
        };
        let cold = run_pipeline(&part, &plan);
        assert_eq!(
            format!("{cold:?}"),
            format!("{result:?}"),
            "sweep diverged from cold run at key {key}"
        );
    }

    // 24 keys share 12 unique meshes (4 recipes × 3 resolutions): the
    // sweep must have actually deduplicated the prefix work.
    let stats = cache.stats();
    assert!(stats.hits >= 12, "expected ≥ 12 mesh hits, got {stats:?}");
}

/// Solver poisoning at the cache level: a Newton–PCG run and a relaxation
/// run sharing one cache must each still match their cold counterparts.
/// The two solvers agree only to solver tolerance — not to the bit — so a
/// tensile curve computed by one must never be served to the other, even
/// though every upstream stage (mesh through print) is legitimately
/// shared.
#[test]
fn tensile_solvers_never_alias_in_a_shared_cache() {
    let part = specimen(3.0);
    let mut plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy)
        .with_seed(13)
        .with_tensile(true);
    plan.slicer = coarse_slicer(0.6);
    let faults = FaultPlan::none();
    let newton = plan.clone().with_fea_solver(FeaSolver::NewtonPcg);
    let relax = plan.clone().with_fea_solver(FeaSolver::Relaxation);

    let cold_newton = format!("{:?}", run_pipeline_with_faults(&part, &newton, &faults));
    let cold_relax = format!("{:?}", run_pipeline_with_faults(&part, &relax, &faults));

    let cache = StageCache::default();
    // Warm with Newton–PCG, then ask for relaxation (and again, hot): the
    // cache must rebuild the tensile stage for the other solver, not
    // replay the cached curve.
    for _ in 0..2 {
        let hot_newton = format!("{:?}", run_pipeline_cached(&part, &newton, &faults, &cache));
        let hot_relax = format!("{:?}", run_pipeline_cached(&part, &relax, &faults, &cache));
        assert_eq!(cold_newton, hot_newton);
        assert_eq!(cold_relax, hot_relax);
    }
    // Upstream prefix stages were genuinely shared across the solvers.
    assert!(cache.stats().hits > 0, "no cache hits across solver variants");
}

/// Fault poisoning: a clean run and a faulted run sharing one cache must
/// each still match their cold counterparts — the faulted run may not
/// serve any stage from the clean run's entries (or vice versa).
#[test]
fn faulted_runs_never_alias_clean_ones_in_a_shared_cache() {
    let part = specimen(3.0);
    let mut plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy).with_seed(11);
    plan.slicer = coarse_slicer(0.6);
    let clean = FaultPlan::none().with_seed(42);
    let faulted = fault_plan("stl.degenerate=3 toolpath.dup=0.5", 42);

    let cold_clean = format!("{:?}", run_pipeline_with_faults(&part, &plan, &clean));
    let cold_faulted = format!("{:?}", run_pipeline_with_faults(&part, &plan, &faulted));
    assert_ne!(cold_clean, cold_faulted, "fault plan was a no-op; test is vacuous");

    let cache = StageCache::default();
    // Warm the cache with the clean run, then run faulted (and once more
    // each, fully hot) — every answer must match its cold counterpart.
    for _ in 0..2 {
        let hot_clean = format!("{:?}", run_pipeline_cached(&part, &plan, &clean, &cache));
        let hot_faulted = format!("{:?}", run_pipeline_cached(&part, &plan, &faulted, &cache));
        assert_eq!(cold_clean, hot_clean);
        assert_eq!(cold_faulted, hot_faulted);
    }
}
