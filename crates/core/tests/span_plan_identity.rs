//! Bit-identity of the span-plan deposition kernel vs the stamper oracle
//! (ISSUE 7).
//!
//! The span-plan kernel replans every layer's roads into row spans and
//! fills them whole; the road-at-a-time reference stamper stays in the
//! tree as the oracle. This property drives the *full pipeline* — random
//! specimens through slicing, tool-path planning, seeded fault injection,
//! and deposition — once under [`KernelMode::Reference`] and then under
//! [`KernelMode::SpanPlan`] at every thread budget in {1, 2, 4, 8}, and
//! requires the complete `Debug` rendering of the output to match. Rust
//! prints `f64`s shortest-round-trip, so one ULP of drift anywhere in the
//! voxel grid, body attribution, scan report, or diagnostics breaks the
//! string equality.
//!
//! This file stays a single-`#[test]` binary on purpose: the kernel mode
//! is a process-wide global, and a sibling test in the same binary would
//! race the flips.

use am_cad::parts::{prism_with_sphere, PrismDims};
use am_cad::{BodyKind, MaterialRemoval, Part};
use am_geom::Point3;
use am_mesh::Resolution;
use am_par::Parallelism;
use am_slicer::{Orientation, SlicerConfig};
use obfuscade::{
    run_pipeline_with_faults, set_kernel_mode, FaultPlan, KernelMode, ProcessPlan,
};
use proptest::prelude::*;

/// Fault specs spanning the catalog's stages, plus the clean run — the
/// same spread the thread-count determinism property uses. Tool-path
/// faults matter most here: duplicated and dropped roads reshape the
/// span plans the kernel compiles.
const FAULT_SPECS: &[&str] = &[
    "",
    "stl.degenerate=3",
    "toolpath.dup=0.5 toolpath.drop=0.2",
    "stl.drift=0.2:4 firmware.escape=250",
    "slicer.zero_layer toolpath.drop=0.5",
];

fn fault_plan(spec: &str, seed: u64) -> FaultPlan {
    if spec.is_empty() {
        FaultPlan::none().with_seed(seed)
    } else {
        spec.parse::<FaultPlan>().expect(spec).with_seed(seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn span_plan_matches_stamper_oracle_across_threads(
        spec_idx in 0..FAULT_SPECS.len(),
        fault_seed in 1..10_000u64,
        orient_idx in 0..2usize,
        layer in 0.5..0.9f64,
        sphere_radius in 2.0..4.0f64,
    ) {
        let dims = PrismDims { size: Point3::new(25.4, 12.7, 12.7), sphere_radius };
        let part: Part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
            .expect("prism");
        let orientation = [Orientation::Xy, Orientation::Xz][orient_idx];
        let faults = fault_plan(FAULT_SPECS[spec_idx], fault_seed);
        let mut plan = ProcessPlan::fdm(Resolution::Coarse, orientation).with_tensile(false);
        plan.slicer = SlicerConfig {
            layer_height: layer,
            road_width: layer,
            analysis_cell: layer / 2.0,
            ..SlicerConfig::default()
        };

        let run = |mode: KernelMode, parallelism: Parallelism| {
            set_kernel_mode(mode);
            let plan = plan.clone().with_parallelism(parallelism);
            let rendered = format!("{:?}", run_pipeline_with_faults(&part, &plan, &faults));
            set_kernel_mode(KernelMode::SpanPlan);
            rendered
        };
        let oracle = run(KernelMode::Reference, Parallelism::serial());
        for threads in [1usize, 2, 4, 8] {
            let planned = run(KernelMode::SpanPlan, Parallelism::threads(threads));
            prop_assert_eq!(
                &oracle,
                &planned,
                "span-plan kernel at {} thread(s) diverged from the stamper oracle \
                 (faults: {:?}, seed {})",
                threads,
                FAULT_SPECS[spec_idx],
                fault_seed
            );
        }
    }
}
