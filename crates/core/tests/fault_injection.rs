//! The robustness suite: drive the full pipeline through ≥1000 seeded
//! `(ProcessPlan, FaultPlan)` combinations covering the Table 1 attack
//! catalog, and assert that every run either completes with diagnostics or
//! aborts with a typed [`PipelineError`] naming its stage — never a panic.

use am_cad::parts::{intact_prism, prism_with_sphere, PrismDims};
use am_cad::{BodyKind, MaterialRemoval, Part};
use am_mesh::{fingerprint, tessellate_shells, verify_fingerprint, Resolution};
use am_slicer::{InfillStyle, Orientation, SlicerConfig};
use obfuscade::{
    run_pipeline, run_pipeline_with_faults, FaultPlan, PipelineError, ProcessPlan, Stage,
    StageStatus,
};

/// The small, fast test specimen: the paper's prism, coarse layers.
fn specimen() -> Part {
    intact_prism(&PrismDims::default())
}

/// A sturdier specimen for mesh-damage faults: the sphere's curvature
/// tessellates into hundreds of facets, so collapsing a handful degrades
/// the mesh without destroying it (the 12-facet prism offers no such
/// slack).
fn curved_specimen() -> Part {
    prism_with_sphere(&PrismDims::default(), BodyKind::Solid, MaterialRemoval::Without).unwrap()
}

fn coarse_slicer(layer_height: f64, road_width: f64) -> SlicerConfig {
    SlicerConfig {
        layer_height,
        road_width,
        analysis_cell: road_width / 2.0,
        ..SlicerConfig::default()
    }
}

/// Ten distinct process plans (resolution × orientation × slicing grid).
fn process_plans() -> Vec<ProcessPlan> {
    let mut plans = Vec::new();
    for (res, orient) in [
        (Resolution::Coarse, Orientation::Xy),
        (Resolution::Coarse, Orientation::Xz),
        (Resolution::Fine, Orientation::Xy),
        (Resolution::Fine, Orientation::Xz),
    ] {
        let mut plan = ProcessPlan::fdm(res, orient);
        plan.slicer = coarse_slicer(0.7, 0.7);
        plans.push(plan);
    }
    for (lh, rw) in [(0.5, 0.5), (1.0, 1.0)] {
        for orient in [Orientation::Xy, Orientation::Xz] {
            let mut plan = ProcessPlan::fdm(Resolution::Coarse, orient);
            plan.slicer = coarse_slicer(lh, rw);
            plans.push(plan);
        }
    }
    let mut sparse = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
    sparse.slicer =
        SlicerConfig { infill: InfillStyle::Sparse { density: 0.25 }, ..coarse_slicer(0.7, 0.7) };
    plans.push(sparse);
    let mut reseeded = ProcessPlan::fdm(Resolution::Fine, Orientation::Xz).with_seed(9);
    reseeded.slicer = coarse_slicer(0.7, 0.7);
    plans.push(reseeded);
    plans
}

/// Twenty-five fault plans: the full documented catalog plus multi-fault
/// combinations, including total-destruction cases.
fn fault_plans() -> Vec<FaultPlan> {
    let mut plans: Vec<FaultPlan> = FaultPlan::catalog().into_iter().map(|(_, p)| p).collect();
    for combo in [
        "stl.degenerate=3 toolpath.drop=0.05",
        "stl.void=0.15 stl.flip=2",
        "stl.truncate=0.8 stl.degenerate=2",
        "toolpath.drop=1",
        "toolpath.dup=0.5 toolpath.drop=0.2",
        "toolpath.gcode=0",
        "stl.drift=0.2:4 firmware.escape=250",
        "slicer.zero_layer toolpath.drop=0.5",
        "stl.degenerate=5 slicer.road_width=0.0001",
        "firmware.feed=1.5",
    ] {
        plans.push(combo.parse().expect(combo));
    }
    plans
}

#[test]
fn thousand_seeded_combinations_never_panic() {
    let part = specimen();
    let plans = process_plans();
    let faults = fault_plans();
    assert_eq!(plans.len(), 10);
    assert_eq!(faults.len(), 25);

    let (mut cases, mut degraded_ok, mut typed_err) = (0u32, 0u32, 0u32);
    for plan in &plans {
        for fault_plan in &faults {
            for seed in [1u64, 7, 42, 1234] {
                cases += 1;
                let fp = fault_plan.clone().with_seed(seed);
                match run_pipeline_with_faults(&part, plan, &fp) {
                    Ok(out) => {
                        // A faulted run that completes must say what
                        // happened to it.
                        assert!(
                            !out.diagnostics.is_empty(),
                            "faulted run completed silently: {fp}"
                        );
                        assert!(out.is_degraded(), "no degraded stage recorded: {fp}");
                        degraded_ok += 1;
                    }
                    Err(e) => {
                        // Typed, stage-named, and renderable.
                        let stage = e.stage();
                        let msg = e.to_string();
                        assert!(
                            msg.contains(stage.name())
                                || matches!(
                                    e,
                                    PipelineError::EmptyBuild { .. }
                                        | PipelineError::FirmwareRejected { .. }
                                ),
                            "error does not name its stage: {msg}"
                        );
                        typed_err += 1;
                    }
                }
            }
        }
    }
    assert_eq!(cases, 1000);
    // Both regimes must be represented, or the suite proves nothing.
    assert!(degraded_ok > 100, "only {degraded_ok} graceful runs");
    assert!(typed_err > 100, "only {typed_err} typed failures");
}

#[test]
fn every_catalog_fault_lands_where_documented() {
    let part = curved_specimen();
    let mut plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
    plan.slicer = coarse_slicer(0.7, 0.7);

    for (name, fault_plan) in FaultPlan::catalog() {
        let result = run_pipeline_with_faults(&part, &plan, &fault_plan.with_seed(3));
        match name {
            // Parse-level STL corruption aborts in the STL stage.
            "stl-nan" | "stl-bytes" => {
                let err = result.expect_err(name);
                assert_eq!(err.stage(), Stage::Stl, "{name}: {err}");
                assert!(matches!(err, PipelineError::Stl(_)), "{name}: {err}");
            }
            // Slicer misconfiguration is caught by config validation.
            "slicer-zero-layer" | "slicer-nan-layer" | "slicer-road-width" => {
                let err = result.expect_err(name);
                assert_eq!(err.stage(), Stage::Slice, "{name}: {err}");
                assert!(matches!(err, PipelineError::InvalidConfig(_)), "{name}: {err}");
            }
            // Firmware glitches trip the limit switch.
            "firmware-escape" | "firmware-feed" => {
                let err = result.expect_err(name);
                assert_eq!(err.stage(), Stage::Firmware, "{name}: {err}");
                assert!(matches!(err, PipelineError::FirmwareRejected { .. }), "{name}: {err}");
            }
            // Heavy geometric damage: on the coarse specimen, dropping a
            // third of the facets can leave nothing sliceable — a typed
            // downstream error is as valid as a degraded completion.
            "stl-truncate" => match result {
                Ok(out) => {
                    assert!(!out.diagnostics.is_empty(), "{name}");
                    assert!(out.is_degraded(), "{name}");
                }
                Err(e) => {
                    assert!(
                        matches!(e.stage(), Stage::Stl | Stage::Slice | Stage::ToolPath | Stage::Print),
                        "{name}: {e}"
                    );
                }
            },
            // Everything else degrades gracefully with diagnostics.
            _ => {
                let out = result.unwrap_or_else(|e| panic!("{name} should degrade, got {e}"));
                assert!(!out.diagnostics.is_empty(), "{name}");
                assert!(out.is_degraded(), "{name}");
            }
        }
    }
}

#[test]
fn fingerprint_flags_every_documented_stl_fault() {
    let part = specimen().resolve().unwrap();
    let shells = tessellate_shells(&part, &Resolution::Coarse.params());
    let mesh = &shells[0];
    let registered = fingerprint(mesh);

    let mut checked = 0;
    for (name, fault_plan) in FaultPlan::catalog() {
        for fault in &fault_plan.stl {
            checked += 1;
            match fault.apply(mesh, 99) {
                // The damaged mesh still parses: the fingerprint audit must
                // produce evidence.
                Ok(damaged) => {
                    let evidence = verify_fingerprint(&damaged, &registered);
                    assert!(!evidence.is_empty(), "{name} escaped the fingerprint");
                }
                // The damaged byte stream no longer parses: flagged even
                // earlier, by the reader itself.
                Err(e) => {
                    assert!(!e.to_string().is_empty(), "{name}");
                }
            }
        }
    }
    assert_eq!(checked, 7, "catalog must cover all seven STL fault classes");
}

#[test]
fn fault_runs_are_deterministic() {
    let part = curved_specimen();
    let mut plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
    plan.slicer = coarse_slicer(0.7, 0.7);
    let faults: FaultPlan =
        "seed=11 stl.degenerate=3 stl.drift=0.3:2 toolpath.drop=0.1 toolpath.dup=0.1"
            .parse()
            .unwrap();

    let a = run_pipeline_with_faults(&part, &plan, &faults).unwrap();
    let b = run_pipeline_with_faults(&part, &plan, &faults).unwrap();
    assert_eq!(a.diagnostics, b.diagnostics);
    assert_eq!(a.toolpath, b.toolpath);
    assert_eq!(a.mesh_triangles, b.mesh_triangles);
    assert_eq!(format!("{:?}", a.scan), format!("{:?}", b.scan));

    // A different fault seed damages different facets/roads.
    let reseeded = run_pipeline_with_faults(&part, &plan, &faults.clone().with_seed(12)).unwrap();
    assert_ne!(
        format!("{:?}", a.diagnostics),
        format!("{:?}", reseeded.diagnostics),
        "fault seed must steer the damage"
    );
}

#[test]
fn empty_fault_plan_matches_plain_pipeline() {
    let part = specimen();
    let mut plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
    plan.slicer = coarse_slicer(0.7, 0.7);

    let plain = run_pipeline(&part, &plan).unwrap();
    let faultless = run_pipeline_with_faults(&part, &plan, &FaultPlan::none()).unwrap();
    assert!(plain.diagnostics.is_empty());
    assert!(!plain.is_degraded());
    assert_eq!(plain.toolpath, faultless.toolpath);
    assert_eq!(format!("{:?}", plain.scan), format!("{:?}", faultless.scan));
    // The repair stage must not run on a clean mesh.
    let repair = plain.stages.iter().find(|s| s.stage == Stage::Repair).unwrap();
    assert_eq!(repair.status, StageStatus::Skipped);
}
