//! End-to-end tests of the ObfusCADe protection story.

use am_mesh::Resolution;
use am_slicer::Orientation;
use obfuscade::{
    assess_quality, repair_attack, run_pipeline, search_sphere_scheme, Authenticity, CadRecipe,
    EmbeddedSphereScheme, ProcessPlan, QualityThresholds, SplineSplitScheme, Verdict,
};

#[test]
fn counterfeit_xz_print_is_visibly_defective() {
    let scheme = SplineSplitScheme::default();
    let stolen = scheme.protected_part().unwrap();
    for resolution in Resolution::ALL {
        let plan = ProcessPlan::fdm(resolution, Orientation::Xz);
        let output = run_pipeline(&stolen, &plan).unwrap();
        assert!(
            output.slice_report.has_discontinuity(),
            "{resolution}: x-z counterfeit must show the seam"
        );
    }
}

#[test]
fn counterfeit_xy_fine_print_hides_the_seam_visually() {
    let scheme = SplineSplitScheme::default();
    let stolen = scheme.protected_part().unwrap();
    for resolution in [Resolution::Fine, Resolution::Custom] {
        let plan = ProcessPlan::fdm(resolution, Orientation::Xy);
        let output = run_pipeline(&stolen, &plan).unwrap();
        assert!(!output.slice_report.has_discontinuity(), "{resolution}");
        let seam = output.seam.expect("protected part has a seam");
        assert!(seam.chain_mismatch < 0.05, "{resolution}: {}", seam.chain_mismatch);
    }
    // …but Coarse x-y shows surface disruption (Fig. 8a).
    let coarse = run_pipeline(&stolen, &ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy))
        .unwrap();
    assert!(coarse.seam.unwrap().chain_mismatch > 0.05);
}

#[test]
fn hidden_seam_still_degrades_mechanics() {
    let scheme = SplineSplitScheme::default();
    let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy).with_tensile(true);
    let counterfeit = run_pipeline(&scheme.protected_part().unwrap(), &plan).unwrap();
    let genuine = run_pipeline(&scheme.genuine_part().unwrap(), &plan).unwrap();
    let report = assess_quality(&counterfeit, &genuine, &QualityThresholds::default());
    // Visually clean, mechanically compromised: the ObfusCADe design goal.
    assert_eq!(report.verdict, Verdict::Degraded, "{:?}", report.findings);
    assert!(report.toughness_ratio.unwrap() < 0.6);
}

#[test]
fn authentication_separates_genuine_from_counterfeit() {
    let scheme = SplineSplitScheme::default();
    let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy);
    let counterfeit = run_pipeline(&scheme.protected_part().unwrap(), &plan).unwrap();
    let genuine = run_pipeline(&scheme.genuine_part().unwrap(), &plan).unwrap();
    assert_eq!(scheme.authenticate(&counterfeit.scan), Authenticity::Counterfeit);
    assert_eq!(scheme.authenticate(&genuine.scan), Authenticity::Genuine);
}

#[test]
fn table3_outcomes_through_the_full_pipeline() {
    let scheme = EmbeddedSphereScheme::default();
    let sphere_vol = 4.0 / 3.0 * std::f64::consts::PI * scheme.dims().sphere_radius.powi(3);
    for recipe in CadRecipe::ALL {
        let part = scheme.part_for_recipe(recipe).unwrap();
        let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy);
        let output = run_pipeline(&part, &plan).unwrap();
        let genuine = recipe == scheme.genuine_recipe();
        if genuine {
            assert!(
                output.scan.internal_void_volume < sphere_vol * 0.2,
                "{recipe}: keyed recipe prints solid, got {} mm³ void",
                output.scan.internal_void_volume
            );
            assert_eq!(scheme.authenticate(&output.scan), Authenticity::Genuine);
        } else {
            assert!(
                output.scan.internal_void_volume > sphere_vol * 0.4,
                "{recipe}: unkeyed recipe must hide a void, got {} mm³",
                output.scan.internal_void_volume
            );
            assert_eq!(scheme.authenticate(&output.scan), Authenticity::Counterfeit);
        }
    }
}

#[test]
fn sphere_key_search_succeeds_only_on_genuine_recipe() {
    let scheme = EmbeddedSphereScheme::default();
    let outcome = search_sphere_scheme(&scheme, &QualityThresholds::default(), 7).unwrap();
    assert_eq!(outcome.attempts.len(), 8); // 4 recipes × 2 orientations
    for attempt in &outcome.attempts {
        let genuine = attempt.key.recipe == scheme.genuine_recipe();
        if genuine {
            assert_eq!(attempt.verdict, Verdict::Good, "{}", attempt.key);
        } else {
            assert_ne!(attempt.verdict, Verdict::Good, "{}", attempt.key);
        }
    }
    assert!((outcome.success_rate() - 0.25).abs() < 1e-9);
    assert!(outcome.prints_to_success.is_some());
}

#[test]
fn repair_attack_always_leaves_scars() {
    let scheme = SplineSplitScheme::default();
    // Even the gentlest weld (exact duplicates only) merges the two
    // bodies' shared seam-endpoint vertices, whose vertical wall edges are
    // then incident to four triangles — a non-manifold scar.
    let gentle = repair_attack(&scheme, Resolution::Coarse, 1e-9).unwrap();
    assert!(gentle.watertight_before, "the stolen export is two clean closed bodies");
    assert!(gentle.repair_backfired(), "{gentle:?}");
    // An aggressive weld fuses far more of the seam and corrupts more
    // topology, not less.
    let aggressive = repair_attack(&scheme, Resolution::Coarse, 0.5).unwrap();
    assert!(aggressive.vertices_merged > gentle.vertices_merged);
    assert!(aggressive.repair_backfired(), "{aggressive:?}");
}

#[test]
fn complex_bracket_carries_the_protection_too() {
    // The paper: "industrial component designs are often complex and
    // integrating the proposed security features may be easier in complex
    // geometries."
    use am_cad::parts::{bracket, bracket_with_spline, BracketDims};
    let dims = BracketDims::default();
    let protected = bracket_with_spline(&dims).unwrap();
    let intact = bracket(&dims).unwrap();

    // x-z print of the stolen bracket shows the seam…
    let xz = run_pipeline(&protected, &ProcessPlan::fdm(Resolution::Fine, Orientation::Xz))
        .unwrap();
    assert!(xz.slice_report.has_discontinuity());
    // …while the intact bracket (holes and all) slices clean.
    let ref_xz = run_pipeline(&intact, &ProcessPlan::fdm(Resolution::Fine, Orientation::Xz))
        .unwrap();
    assert!(!ref_xz.slice_report.has_discontinuity());

    // The cold joint is CT-detectable in any orientation.
    let xy = run_pipeline(&protected, &ProcessPlan::fdm(Resolution::Fine, Orientation::Xy))
        .unwrap();
    assert!(xy.scan.cold_joint_area > 20.0, "{}", xy.scan.cold_joint_area);
    let ref_xy = run_pipeline(&intact, &ProcessPlan::fdm(Resolution::Fine, Orientation::Xy))
        .unwrap();
    assert_eq!(ref_xy.scan.cold_joint_area, 0.0);
}

#[test]
fn multi_sphere_scheme_scales_the_key_space() {
    use obfuscade::MultiSphereScheme;
    let scheme = MultiSphereScheme::new(2).unwrap();
    assert_eq!(scheme.key_space_size(), 16);

    let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy);
    // The keyed part prints fully solid.
    let genuine = scheme.part_for_recipes(&scheme.genuine_recipes()).unwrap();
    let output = run_pipeline(&genuine, &plan).unwrap();
    assert_eq!(scheme.authenticate(&output.scan), Authenticity::Genuine);

    // One mis-keyed sphere is enough to mark the part.
    let mut recipes = scheme.genuine_recipes();
    recipes[1] = CadRecipe::ALL[0]; // solid, no removal → void
    let forged = scheme.part_for_recipes(&recipes).unwrap();
    let output = run_pipeline(&forged, &plan).unwrap();
    assert_eq!(scheme.authenticate(&output.scan), Authenticity::Counterfeit);
    // The void sits at the mis-keyed sphere's centre.
    assert_eq!(
        output.printed.material_at_model(scheme.centers()[1]),
        am_printer::Material::Empty
    );
    assert_eq!(
        output.printed.material_at_model(scheme.centers()[0]),
        am_printer::Material::Model
    );
}

#[test]
fn stl_file_observations_match_paper() {
    // §3.2: CAD sizes differ between solid/surface; STL sizes identical;
    // with-removal STL is larger than without.
    let scheme = EmbeddedSphereScheme::default();
    let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy);
    let size = |recipe: CadRecipe| -> u64 {
        run_pipeline(&scheme.part_for_recipe(recipe).unwrap(), &plan).unwrap().stl_bytes
    };
    let [no_solid, no_surface, with_solid, with_surface] = CadRecipe::ALL.map(size);
    assert_eq!(no_solid, no_surface);
    assert_eq!(with_solid, with_surface);
    assert!(with_solid > no_solid);
}
