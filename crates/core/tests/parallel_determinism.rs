//! Determinism properties for the parallel execution engine (PR 2).
//!
//! With the optimized kernels active (the default), every
//! [`am_par::Parallelism`] budget must drive the pipeline to **bit-identical
//! output** — clean runs and seeded fault-injection runs alike. The
//! robustness suite's fault replay and the mesh fingerprints both assume
//! that turning threads on changes nothing but wall-clock time, so any
//! float that shifts with the thread count is a bug, not noise. Comparing
//! the `Debug` rendering of the whole `Result` makes the check exhaustive:
//! Rust prints `f64`s shortest-round-trip, so a single ULP of drift
//! anywhere in the output (voxel grid, tensile curve, diagnostics) breaks
//! the string equality.

use am_cad::parts::{prism_with_sphere, PrismDims};
use am_cad::{BodyKind, MaterialRemoval, Part};
use am_geom::Point3;
use am_mesh::Resolution;
use am_par::Parallelism;
use am_slicer::{Orientation, SlicerConfig};
use obfuscade::{run_pipeline_with_faults, FaultPlan, FeaSolver, ProcessPlan};
use proptest::prelude::*;

/// Fault specs spanning the catalog's stages: mesh damage, tool-path
/// corruption, slicer misconfiguration, firmware tampering — plus the
/// clean run. Each property case draws one and a fresh seed.
const FAULT_SPECS: &[&str] = &[
    "",
    "stl.degenerate=3",
    "stl.void=0.15 stl.flip=2",
    "toolpath.dup=0.5 toolpath.drop=0.2",
    "stl.drift=0.2:4 firmware.escape=250",
    "slicer.zero_layer toolpath.drop=0.5",
    "firmware.feed=1.5",
];

fn fault_plan(spec: &str, seed: u64) -> FaultPlan {
    if spec.is_empty() {
        FaultPlan::none().with_seed(seed)
    } else {
        spec.parse::<FaultPlan>().expect(spec).with_seed(seed)
    }
}

fn specimen(sphere_radius: f64) -> Part {
    let dims = PrismDims { size: Point3::new(25.4, 12.7, 12.7), sphere_radius };
    prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without).expect("prism")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Threads ∈ {1, 2, 8} must be indistinguishable in the output for any
    /// (mesh, plan, fault plan, seed, tensile solver) combination — the
    /// Newton–PCG solver (serial by construction) and the relaxation
    /// solver (barrier-phased parallel) both carry the contract.
    #[test]
    fn pipeline_is_bit_identical_across_thread_counts(
        spec_idx in 0..FAULT_SPECS.len(),
        fault_seed in 1..10_000u64,
        orient_idx in 0..2usize,
        layer in 0.5..0.9f64,
        sphere_radius in 2.0..4.0f64,
        tensile in 0..2usize,
        solver_idx in 0..2usize,
    ) {
        let part = specimen(sphere_radius);
        let orientation = [Orientation::Xy, Orientation::Xz][orient_idx];
        let faults = fault_plan(FAULT_SPECS[spec_idx], fault_seed);
        let mut plan = ProcessPlan::fdm(Resolution::Coarse, orientation)
            .with_tensile(tensile == 1)
            .with_fea_solver(FeaSolver::ALL[solver_idx]);
        plan.slicer = SlicerConfig {
            layer_height: layer,
            road_width: layer,
            analysis_cell: layer / 2.0,
            ..SlicerConfig::default()
        };

        let run = |parallelism: Parallelism| {
            let plan = plan.clone().with_parallelism(parallelism);
            format!("{:?}", run_pipeline_with_faults(&part, &plan, &faults))
        };
        let serial = run(Parallelism::serial());
        for threads in [2usize, 8] {
            let parallel = run(Parallelism::threads(threads));
            prop_assert_eq!(
                &serial,
                &parallel,
                "threads={} diverged from serial (faults: {}, seed {})",
                threads,
                FAULT_SPECS[spec_idx],
                fault_seed
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Solver equivalence at the pipeline level: for random specimens and
    /// seeded fault plans, the Newton–PCG tensile curve must land on the
    /// relaxation solver's equilibria to solver tolerance — same modulus,
    /// strength and toughness within loose engineering bounds, failure
    /// within a couple of strain steps. (Exact reference-kernel tracking
    /// is pinned crate-side in `am-fea`; this guards the wiring: config
    /// plumbing, pooled scratch reuse, warm starts.)
    #[test]
    fn newton_pcg_tracks_relaxation_through_the_pipeline(
        spec_idx in 0..FAULT_SPECS.len(),
        fault_seed in 1..10_000u64,
        orient_idx in 0..2usize,
        sphere_radius in 2.0..4.0f64,
    ) {
        let part = specimen(sphere_radius);
        let orientation = [Orientation::Xy, Orientation::Xz][orient_idx];
        let faults = fault_plan(FAULT_SPECS[spec_idx], fault_seed);
        let mut plan = ProcessPlan::fdm(Resolution::Coarse, orientation).with_tensile(true);
        plan.slicer = SlicerConfig {
            layer_height: 0.7,
            road_width: 0.7,
            analysis_cell: 0.35,
            ..SlicerConfig::default()
        };

        let run = |solver: FeaSolver| {
            let plan = plan.clone().with_fea_solver(solver);
            run_pipeline_with_faults(&part, &plan, &faults)
        };
        let (newton, relax) = (run(FeaSolver::NewtonPcg), run(FeaSolver::Relaxation));
        match (newton, relax) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    a.tensile.is_some() && b.tensile.is_some(),
                    "tensile result missing from a run that requested it"
                );
                let (a, b) = (a.tensile.expect("checked"), b.tensile.expect("checked"));
                // Relative bounds with absolute floors: a fault plan can
                // leave a specimen that carries (almost) no load, where
                // both solvers report near-zero properties whose relative
                // difference is meaningless.
                let close = |x: f64, y: f64, rel: f64, floor: f64| {
                    (x - y).abs() < rel * x.abs().max(y.abs()) + floor
                };
                prop_assert!(
                    close(a.young_modulus_gpa, b.young_modulus_gpa, 2e-2, 0.01),
                    "E diverged: {} vs {}", a.young_modulus_gpa, b.young_modulus_gpa
                );
                prop_assert!(
                    close(a.uts_mpa, b.uts_mpa, 2e-2, 0.1),
                    "UTS diverged: {} vs {}", a.uts_mpa, b.uts_mpa
                );
                prop_assert!(
                    close(a.toughness_kj_m3, b.toughness_kj_m3, 5e-2, 5.0),
                    "toughness diverged: {} vs {}", a.toughness_kj_m3, b.toughness_kj_m3
                );
                // Failure within a couple of strain steps (0.0005 each
                // for the FDM config): break cascades may resolve a step
                // apart. Only meaningful when the specimen carries real
                // load — a fault-shattered gauge (UTS ≪ 1 MPa vs ~30 for
                // sound coupons) has path-dependent rubble equilibria no
                // solver pair agrees on, and the UTS check above already
                // catches any solver that erases genuine strength.
                if a.uts_mpa.max(b.uts_mpa) > 1.0 {
                    prop_assert!(
                        (a.failure_strain - b.failure_strain).abs() < 2.5 * 0.0005,
                        "failure strain diverged: {} vs {}", a.failure_strain, b.failure_strain
                    );
                }
            }
            // Typed errors must not depend on the tensile solver: the
            // fault catalog strikes upstream stages only.
            (a, b) => prop_assert_eq!(format!("{:?}", a), format!("{:?}", b)),
        }
    }
}
