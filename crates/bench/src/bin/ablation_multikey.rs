//! Regenerates the key-space scaling ablation.

fn main() {
    print!("{}", obfuscade_bench::experiments::ablation_multikey());
}
