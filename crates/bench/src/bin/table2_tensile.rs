//! Regenerates Table 2 (virtual tensile tests, 5 replicates by default).

fn main() {
    let replicates = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    print!("{}", obfuscade_bench::experiments::table2_tensile(replicates));
}
