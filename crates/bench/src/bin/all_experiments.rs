//! Runs every experiment in paper order and prints the full report.

use obfuscade_bench::experiments as e;

fn main() {
    let replicates = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let sections: Vec<String> = vec![
        e::table1_risks(),
        e::fig3_stages(),
        e::fig4_gaps(),
        e::fig5_resolution(),
        e::fig7_slicing(),
        e::fig8_surface(),
        e::table2_tensile(replicates),
        e::fig9_fracture(),
        e::table3_printing(),
        e::sidechannel_recon(),
        e::ablation_keyspace(),
        e::ablation_multikey(),
        e::ablation_sparse_infill(),
        e::ablation_repair(),
        e::authentication_demo(),
    ];
    for (i, s) in sections.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(100));
        }
        print!("{s}");
    }
}
