//! Regenerates one paper artifact; see `obfuscade_bench::experiments`.

fn main() {
    print!("{}", obfuscade_bench::experiments::ablation_repair());
}
