//! Regenerates one paper artifact; see `obfuscade_bench::experiments`.

fn main() {
    print!("{}", obfuscade_bench::experiments::table3_printing());
}
