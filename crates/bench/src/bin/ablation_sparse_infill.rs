//! Regenerates the sparse-infill corner-cutting ablation.

fn main() {
    print!("{}", obfuscade_bench::experiments::ablation_sparse_infill());
}
