//! Experiment harness for the ObfusCADe reproduction.
//!
//! Each function in [`experiments`] regenerates one table or figure of the
//! paper as printable text; the binaries in `src/bin/` are thin wrappers
//! (run `cargo run --release -p obfuscade-bench --bin all_experiments` for
//! everything), and `benches/` holds the Criterion performance benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;

/// Formats a `mean ± std` cell.
pub fn pm(mean: f64, std: f64, prec: usize) -> String {
    format!("{mean:.prec$}±{std:.prec$}")
}
