//! One function per paper table/figure: builds the workload, runs the
//! toolchain, and renders the rows the paper reports.

use std::fmt::Write as _;
use std::sync::OnceLock;

use am_cad::parts::{
    prism_with_sphere, standard_split_spline, tensile_bar, tensile_bar_with_spline, PrismDims,
    TensileBarDims,
};
use am_cad::{cad_file_size, BodyKind, MaterialRemoval, Part};
use am_fea::{Stat, TensileResult, TensileSummary};
use am_mesh::{seam_report, tessellate_part, Resolution};
use am_par::Parallelism;
use am_printer::Material;
use am_sidechannel::{
    compare_toolpaths, record_emissions, reconstruct_toolpath, CaptureQuality,
};
use am_slicer::Orientation;
use obfuscade::{
    assess_quality, repair_attack, run_pipeline_batch_with, run_pipeline_cached,
    run_pipeline_jobs, search_sphere_scheme, Authenticity, BatchJob, CadRecipe,
    EmbeddedSphereScheme, FaultPlan, PipelineError, PipelineOutput, ProcessPlan,
    QualityThresholds, SplineSplitScheme, StageCache, Verdict,
};

/// The process-wide stage cache every experiment section shares: the same
/// parts and plans recur across sections (the spline bar at each
/// resolution, the sphere prism under the genuine recipe, …), so later
/// sections find their stage prefixes already hot. The bench harness
/// clears it between timed suite runs so cross-run reuse never flatters a
/// timing.
pub fn experiment_cache() -> &'static StageCache {
    static CACHE: OnceLock<StageCache> = OnceLock::new();
    CACHE.get_or_init(StageCache::default)
}

/// A clean (fault-free) pipeline run served from [`experiment_cache`].
fn run_pipeline(part: &Part, plan: &ProcessPlan) -> Result<PipelineOutput, PipelineError> {
    run_pipeline_cached(part, plan, &FaultPlan::none(), experiment_cache())
}

/// Fig. 3 — the artifact stages: one part walked through the whole chain,
/// reporting each intermediate representation's vital signs.
pub fn fig3_stages() -> String {
    let mut out = String::from("Fig. 3 — artifact stages of the AM process chain\n\n");
    let dims = TensileBarDims::default();
    let part = tensile_bar_with_spline(&dims).expect("standard bar");
    let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy);
    let output = run_pipeline(&part, &plan).expect("pipeline");
    let _ = writeln!(out, "CAD model     : {} ({} features)", part.name(), part.features().len());
    let _ = writeln!(out, "CAD file size : {} bytes (modeled)", cad_file_size(&part));
    let _ = writeln!(out, "STL export    : {} triangles, {} bytes", output.mesh_triangles, output.stl_bytes);
    let _ = writeln!(out, "Sliced layers : {}", output.slice_report.layers);
    let _ = writeln!(
        out,
        "Tool path     : {:.0} mm model roads, {:.0} mm support roads, {} layers, ~{:.0} s print",
        output.toolpath.model_mm, output.toolpath.support_mm, output.toolpath.layers, output.toolpath.time_s
    );
    let _ = writeln!(
        out,
        "Printed part  : {:.2} g, {:.0} mm³ model material",
        output.printed.weight_g(),
        output.printed.material_volume(Material::Model)
    );
    let _ = writeln!(
        out,
        "Inspection    : {:.1} mm³ internal voids, {:.1} mm² cold-joint area",
        output.scan.internal_void_volume, output.scan.cold_joint_area
    );
    out
}

/// Fig. 4 — tessellation-induced gaps along the spline per STL resolution.
pub fn fig4_gaps() -> String {
    let mut out = String::from(
        "Fig. 4 — tessellation-induced gaps along the spline split\n\
         (two bodies tessellate the shared spline independently)\n\n",
    );
    let dims = TensileBarDims::default();
    let part = tensile_bar_with_spline(&dims).expect("bar").resolve().expect("resolve");
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>14} {:>14} {:>12}",
        "STL", "chain pts", "gap width mm", "T-junction mm", "conforming"
    );
    for res in Resolution::ALL {
        let seam = seam_report(&part, &res.params()).expect("split part has a seam");
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>14.4} {:>14.4} {:>12}",
            res.to_string(),
            seam.chain_a_points,
            seam.chain_mismatch,
            seam.vertex_mismatch,
            seam.conforming
        );
    }
    out.push_str("\ngap profile along the seam (Coarse), normalized arc position vs gap (mm):\n");
    let seam = seam_report(&part, &Resolution::Coarse.params()).expect("seam");
    for (t, g) in seam.profile.iter().step_by(8) {
        let bar = "#".repeat((g * 400.0).round() as usize);
        let _ = writeln!(out, "  t={t:4.2}  {g:7.4}  {bar}");
    }
    out
}

/// Fig. 5 — the STL resolution presets and their effect on export size.
pub fn fig5_resolution() -> String {
    let mut out = String::from("Fig. 5 — STL export resolution settings\n\n");
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>14} | {:>12} {:>12} | {:>12} {:>12}",
        "preset", "angle deg", "deviation mm", "bar tris", "bar bytes", "prism tris", "prism bytes"
    );
    let bar = tensile_bar_with_spline(&TensileBarDims::default())
        .expect("bar")
        .resolve()
        .expect("resolve");
    let prism = prism_with_sphere(&PrismDims::default(), BodyKind::Solid, MaterialRemoval::Without)
        .expect("prism")
        .resolve()
        .expect("resolve");
    for res in Resolution::ALL {
        let m1 = tessellate_part(&bar, &res.params());
        let m2 = tessellate_part(&prism, &res.params());
        let _ = writeln!(
            out,
            "{:<8} {:>10.1} {:>14.3} | {:>12} {:>12} | {:>12} {:>12}",
            res.to_string(),
            res.angle_degrees(),
            res.deviation_mm(),
            m1.triangle_count(),
            am_mesh::binary_stl_size(m1.triangle_count()),
            m2.triangle_count(),
            am_mesh::binary_stl_size(m2.triangle_count()),
        );
    }
    out
}

/// Fig. 7a — slicing the spline-split bar: discontinuity matrix over
/// orientation × resolution.
pub fn fig7_slicing() -> String {
    let mut out = String::from(
        "Fig. 7a — sliced spline-split model: discontinuity by orientation and resolution\n\n",
    );
    let part = tensile_bar_with_spline(&TensileBarDims::default()).expect("bar");
    let _ = writeln!(
        out,
        "{:<8} {:<6} {:>14} {:>12} {:>12} {:>16}",
        "STL", "orient", "discontinuity", "disc layers", "void cells", "seam shift mm/ly"
    );
    let mut plans = Vec::new();
    for res in Resolution::ALL {
        for orientation in Orientation::ALL {
            plans.push(ProcessPlan::fdm(res, orientation));
        }
    }
    // One batch: the three meshes are shared across both orientations.
    let outputs = run_pipeline_batch_with(
        &part,
        &plans,
        &FaultPlan::none(),
        experiment_cache(),
        Parallelism::auto(),
    );
    for (plan, output) in plans.iter().zip(outputs) {
        let output = output.expect("pipeline");
        let r = &output.slice_report;
        let shift = r.seam.as_ref().map_or(0.0, |s| s.mean_shift);
        let _ = writeln!(
            out,
            "{:<8} {:<6} {:>14} {:>12} {:>12} {:>16.3}",
            plan.resolution.to_string(),
            plan.orientation.to_string(),
            if r.has_discontinuity() { "YES" } else { "no" },
            r.discontinuous_layers,
            r.internal_void_cells,
            shift
        );
    }
    out.push_str(
        "\npaper: discontinuity in x-z at ALL resolutions; none in x-y at any resolution.\n",
    );
    // Render one gauge layer of the Coarse x-z slice, seam highlighted —
    // the textual version of the paper's Fig. 7a screenshot.
    let resolved = part.resolve().expect("resolve");
    let shells = am_mesh::tessellate_shells(&resolved, &Resolution::Coarse.params());
    let oriented = am_slicer::orient_shells(&shells, Orientation::Xz);
    let sliced = am_slicer::slice_shells(&oriented, 0.1778);
    let bounds = am_geom::Aabb2::new(
        am_geom::Point2::new(sliced.bounds.min.x, sliced.bounds.min.y),
        am_geom::Point2::new(sliced.bounds.max.x, sliced.bounds.max.y),
    )
    .inflated(0.5);
    // Pick the gauge layer whose rendering shows the widest seam gap.
    let best = sliced
        .layers
        .iter()
        .filter(|l| l.loops.len() >= 2)
        .map(|l| {
            let raster = am_slicer::rasterize_layer(l, bounds, 0.1, true);
            let art = am_slicer::render_layer_with_seam(&raster, 100, 1.0);
            let marks = art.chars().filter(|&c| c == '!').count();
            (marks, l.z, art)
        })
        .max_by_key(|(marks, _, _)| *marks);
    if let Some((marks, z, art)) = best {
        if marks > 0 {
            let _ = writeln!(
                out,
                "\nCoarse x-z, layer at z = {z:.2} mm ('#' model, '!' seam gap):\n{art}"
            );
        }
    }
    out
}

/// Fig. 7b / Fig. 8 — printed-part surface quality: seam visibility matrix.
pub fn fig8_surface() -> String {
    let mut out = String::from(
        "Fig. 7b/8 — printed spline-split bar: surface seam visibility\n\
         (visible if the in-plane mismatch exceeds the 0.05 mm feature size,\n\
          or the seam staircase shifts across layers in x-z)\n\n",
    );
    let part = tensile_bar_with_spline(&TensileBarDims::default()).expect("bar");
    let intact = tensile_bar(&TensileBarDims::default()).expect("bar");
    let _ = writeln!(
        out,
        "{:<8} {:<6} {:>14} {:>14} {:>10} | {:>14}",
        "STL", "orient", "mismatch mm", "stair mm/ly", "visible", "intact ref"
    );
    // Both parts × all six plans in one job batch: each part's meshes and
    // slices are shared across the table rows.
    let mut jobs = Vec::new();
    for res in Resolution::ALL {
        for orientation in Orientation::ALL {
            let plan = ProcessPlan::fdm(res, orientation);
            jobs.push(BatchJob { part: &part, plan: plan.clone(), faults: FaultPlan::none() });
            jobs.push(BatchJob { part: &intact, plan, faults: FaultPlan::none() });
        }
    }
    let mut results =
        run_pipeline_jobs(&jobs, experiment_cache(), Parallelism::auto()).into_iter();
    for res in Resolution::ALL {
        for orientation in Orientation::ALL {
            let output = results.next().expect("one result per job").expect("run");
            let reference = results.next().expect("one result per job").expect("run");
            let mismatch = output.seam.as_ref().map_or(0.0, |s| s.chain_mismatch);
            let stair = output
                .slice_report
                .seam
                .as_ref()
                .map_or(0.0, |s| if s.median_span < 4.0 { s.mean_shift } else { 0.0 });
            let visible = match orientation {
                Orientation::Xy => mismatch > 0.05,
                Orientation::Xz => stair > 0.05 || mismatch > 0.05,
            };
            let _ = writeln!(
                out,
                "{:<8} {:<6} {:>14.4} {:>14.3} {:>10} | {:>14}",
                res.to_string(),
                orientation.to_string(),
                mismatch,
                stair,
                if visible { "YES" } else { "no" },
                if reference.slice_report.has_discontinuity() { "defective!" } else { "clean" },
            );
        }
    }
    out.push_str("\npaper: x-y visible at Coarse only; x-z visible at all resolutions.\n");
    out
}

/// One Table 2 group: protected/intact × orientation, n seeded replicates.
///
/// Replicates differ only in the print seed, so the batch engine computes
/// the mesh/slice/tool-path prefix exactly once and fans the replicates out
/// on the shared [`am_par`] pool ([`Parallelism::auto`], so
/// `AM_PAR_THREADS` configures the budget centrally) for the print + FEA
/// suffix only.
fn tensile_group(split: bool, orientation: Orientation, replicates: usize) -> TensileSummary {
    let dims = TensileBarDims::default();
    let part = if split {
        tensile_bar_with_spline(&dims).expect("bar")
    } else {
        tensile_bar(&dims).expect("bar")
    };
    let plans: Vec<ProcessPlan> = (0..replicates as u64)
        .map(|i| {
            ProcessPlan::fdm(Resolution::Coarse, orientation)
                .with_seed(100 + i)
                .with_tensile(true)
        })
        .collect();
    let results: Vec<TensileResult> = run_pipeline_batch_with(
        &part,
        &plans,
        &FaultPlan::none(),
        experiment_cache(),
        Parallelism::auto(),
    )
    .into_iter()
    .map(|r| r.expect("pipeline").tensile.expect("tensile requested"))
    .collect();
    TensileSummary::from_results(&results)
}

/// Table 2 — tensile properties of spline-split and intact specimens in
/// both orientations (mean ± sd over seeded replicates), with the paper's
/// measured values alongside.
pub fn table2_tensile(replicates: usize) -> String {
    let mut out = String::from(
        "Table 2 — tensile properties (simulated FDM ABS, Coarse STL, n replicates)\n\n",
    );
    let groups: [(&str, bool, Orientation, [&str; 4]); 4] = [
        ("Spline x-y", true, Orientation::Xy, ["1.89±0.04", "24±1.1", "0.015±0.001", "295±94"]),
        ("Spline x-z", true, Orientation::Xz, ["2.10±0.05", "31.5±0.5", "0.021±0.001", "454±30"]),
        ("Intact x-y", false, Orientation::Xy, ["1.98±0.05", "30±0.2", "0.029±0.001", "632±33"]),
        ("Intact x-z", false, Orientation::Xz, ["2.05±0.03", "32.5±0.3", "0.077±0.041", "3367±903"]),
    ];
    let _ = writeln!(
        out,
        "{:<12} | {:>12} {:>12} | {:>12} {:>12} | {:>14} {:>14} | {:>12} {:>12}",
        "specimen", "E GPa", "paper", "UTS MPa", "paper", "fail strain", "paper", "U kJ/m³", "paper"
    );
    let fmt = |s: &Stat, prec: usize| crate::pm(s.mean, s.std, prec);
    for (name, split, orientation, paper) in groups {
        let s = tensile_group(split, orientation, replicates);
        let _ = writeln!(
            out,
            "{:<12} | {:>12} {:>12} | {:>12} {:>12} | {:>14} {:>14} | {:>12} {:>12}",
            name,
            fmt(&s.young_modulus_gpa, 2),
            paper[0],
            fmt(&s.uts_mpa, 1),
            paper[1],
            fmt(&s.failure_strain, 4),
            paper[2],
            crate::pm(s.toughness_kj_m3.mean, s.toughness_kj_m3.std, 0),
            paper[3],
        );
    }
    out.push_str(
        "\nshape criteria: E comparable everywhere; spline failure strain ≤ ~50-60% of intact;\n\
         spline toughness ≤ half of intact; intact x-z by far the toughest.\n",
    );
    out
}

/// Fig. 9 — fracture origin: the crack starts at the spline tip.
pub fn fig9_fracture() -> String {
    let mut out = String::from("Fig. 9 — fracture initiates at the tip of the spline\n\n");
    let dims = TensileBarDims::default();
    let part = tensile_bar_with_spline(&dims).expect("bar");
    let spline = standard_split_spline(&dims).expect("spline");
    for orientation in Orientation::ALL {
        let plan = ProcessPlan::fdm(Resolution::Coarse, orientation).with_tensile(true);
        let output = run_pipeline(&part, &plan).expect("pipeline");
        let tensile = output.tensile.expect("tensile requested");
        let origin = tensile.fracture_origin.expect("specimen fractures");
        let d_seam = (0..=128)
            .map(|i| spline.point_at(i as f64 / 128.0).distance(origin))
            .fold(f64::INFINITY, f64::min);
        let d_tip = spline
            .through_points()
            .first()
            .map(|p| p.distance(origin))
            .unwrap_or(f64::INFINITY)
            .min(spline.through_points().last().map(|p| p.distance(origin)).unwrap_or(f64::INFINITY));
        // Crack-path tracking: how much of the crack runs along the seam.
        let on_seam = tensile
            .fracture_path
            .iter()
            .filter(|p| {
                (0..=32)
                    .map(|i| spline.point_at(i as f64 / 32.0).distance(**p))
                    .fold(f64::INFINITY, f64::min)
                    < 1.0
            })
            .count();
        let _ = writeln!(
            out,
            "{orientation}: fracture origin ({:6.2}, {:5.2}) mm — {:.2} mm from the seam, {:.2} mm from its nearest tip; {}/{} crack segments within 1 mm of the seam",
            origin.x, origin.y, d_seam, d_tip, on_seam, tensile.fracture_path.len()
        );
    }
    out.push_str("\npaper: failure originates at the spline tip (stress concentration).\n");
    out
}

/// Table 1 — the per-stage risk/mitigation catalogue, plus the Fig. 2
/// attack taxonomy.
pub fn table1_risks() -> String {
    let mut out = String::from("Table 1 — cybersecurity risks in the AM supply chain\n\n");
    out.push_str(&obfuscade::risk::render_risk_table());
    out.push_str("\nFig. 2 — attack taxonomy\n\n");
    for a in obfuscade::risk::attack_taxonomy() {
        let _ = writeln!(out, "  [{:<18}] {:<45} goal: {}", a.level.to_string(), a.name, a.goal);
    }
    out
}

/// Table 3 (+ §3.2 file-size observations) — the four embedded-sphere
/// recipes through the full pipeline.
pub fn table3_printing() -> String {
    let mut out = String::from(
        "Table 3 — printing results for the four embedded-sphere CAD recipes (Fine STL)\n\n",
    );
    let scheme = EmbeddedSphereScheme::default();
    let dims = *scheme.dims();
    let sphere_vol = 4.0 / 3.0 * std::f64::consts::PI * dims.sphere_radius.powi(3);
    let _ = writeln!(
        out,
        "{:<38} {:>10} {:>10} | {:>12} {:>14} | {:>14}",
        "CAD recipe", "CAD bytes", "STL bytes", "centre", "void mm³", "authenticity"
    );
    let parts: Vec<(CadRecipe, Part)> = CadRecipe::ALL
        .into_iter()
        .map(|recipe| (recipe, scheme.part_for_recipe(recipe).expect("recipe part")))
        .collect();
    let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy);
    let jobs: Vec<BatchJob> = parts
        .iter()
        .map(|(_, part)| BatchJob { part, plan: plan.clone(), faults: FaultPlan::none() })
        .collect();
    let outputs = run_pipeline_jobs(&jobs, experiment_cache(), Parallelism::auto());
    for ((recipe, part), output) in parts.iter().zip(outputs) {
        let output = output.expect("pipeline");
        let center = dims.size * 0.5;
        let material = output.printed.material_at_model(center);
        let auth = scheme.authenticate(&output.scan);
        let _ = writeln!(
            out,
            "{:<38} {:>10} {:>10} | {:>12} {:>14.1} | {:>14}",
            recipe.to_string(),
            cad_file_size(part),
            output.stl_bytes,
            // After dissolution the support-filled sphere reads as empty.
            match material {
                Material::Model => "model",
                Material::Support => "support",
                Material::Empty => "support*",
            },
            output.scan.internal_void_volume,
            format!("{auth:?}"),
        );
    }
    let _ = writeln!(
        out,
        "\n(*support material, dissolved in post-processing; sphere volume = {sphere_vol:.1} mm³)\n\
         paper Table 3: support / support / MODEL / support — only removal+solid prints solid.\n\
         paper §3.2: CAD sizes differ between solid and surface; STL sizes identical;\n\
         with-removal files larger than without."
    );
    out
}

/// §2 information-leakage — acoustic side-channel tool-path reconstruction.
pub fn sidechannel_recon() -> String {
    let mut out = String::from(
        "§2 information leakage — smartphone acoustic/magnetic reconstruction of tool paths\n\n",
    );
    let part = tensile_bar_with_spline(&TensileBarDims::default()).expect("bar");
    let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
    // Rebuild the tool path exactly as the pipeline does.
    let resolved = part.resolve().expect("resolve");
    let shells = am_mesh::tessellate_shells(&resolved, &plan.resolution.params());
    let oriented = am_slicer::orient_shells(&shells, plan.orientation);
    let sliced = am_slicer::slice_shells(&oriented, plan.slicer.layer_height);
    let toolpath = am_slicer::generate_toolpath(&sliced, &plan.slicer);

    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>16} {:>16} {:>14}",
        "capture", "moves", "per-layer mm", "global mm", "length err %"
    );
    for (name, quality) in [
        ("lab grade", CaptureQuality::lab_grade()),
        ("smartphone", CaptureQuality::smartphone()),
        ("across the room", CaptureQuality::across_the_room()),
    ] {
        let trace = record_emissions(&toolpath, plan.printer.feed_mm_per_s, quality, 5);
        let rebuilt = reconstruct_toolpath(&trace);
        let report = compare_toolpaths(&toolpath, &rebuilt);
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>16.3} {:>16.2} {:>14.4}",
            name,
            report.moves,
            report.per_layer_error_mm,
            report.mean_position_error_mm,
            report.length_error_ratio * 100.0
        );
    }
    // The defender's countermeasure (Table 1: "noise emission").
    let trace = record_emissions(
        &toolpath,
        plan.printer.feed_mm_per_s,
        CaptureQuality::smartphone(),
        5,
    );
    let jammed = am_sidechannel::NoiseEmitter::matched_jammer().apply(&trace, 5);
    let report = compare_toolpaths(&toolpath, &reconstruct_toolpath(&jammed));
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>16.3} {:>16.2} {:>14.4}   ← defender jamming",
        "smartphone+jam",
        report.moves,
        report.per_layer_error_mm,
        report.mean_position_error_mm,
        report.length_error_ratio * 100.0
    );
    out.push_str(
        "\nObfusCADe note: the reconstructed tool path inherits the planted seam\n\
         (the roads still terminate at the body boundary), so even side-channel\n\
         theft yields the sabotaged design. Active noise emission (last row)\n\
         destroys the channel outright.\n",
    );
    out
}

/// §16 attack detection — the ROC sweep over the full fault catalog.
///
/// The defender's view of the side channel: audio-signature, power-
/// envelope, and fused detectors against every Table 1 attack, across
/// capture qualities and with the NoiseEmitter countermeasure on and
/// off. Rendered from the same [`am_detect::run_roc_sweep`] table the
/// v9 bench report commits, so `report detect` and `BENCH_PR10.json`
/// can never disagree about the rates.
pub fn detection_roc() -> String {
    let mut out = String::from(
        "§16 attack detection — side-channel ROC sweep over the fault catalog\n\n",
    );
    let part =
        prism_with_sphere(&PrismDims::default(), BodyKind::Solid, MaterialRemoval::Without)
            .expect("prism");
    let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
    let config = am_detect::RocConfig::default();
    let table = am_detect::run_roc_sweep(
        &part,
        &plan,
        &config,
        experiment_cache(),
        obfuscade::Deadline::none(),
    )
    .expect("ROC sweep");

    let _ = writeln!(
        out,
        "{:<12} {:>5}  {:>11} {:>11} {:>11}  {:>9} {:>9} {:>9}",
        "quality", "jam", "audio catch", "power catch", "fused catch", "audio fpr", "power fpr",
        "fused fpr"
    );
    for s in &table.setups {
        let _ = writeln!(
            out,
            "{:<12} {:>5.2}  {:>11.3} {:>11.3} {:>11.3}  {:>9.3} {:>9.3} {:>9.3}",
            s.quality,
            s.jam_amplitude,
            s.audio_catch,
            s.power_catch,
            s.fused_catch,
            s.audio_fpr,
            s.power_fpr,
            s.fused_fpr
        );
    }
    let _ = writeln!(
        out,
        "\nper-fault fused catch rate ({} catalog attacks, min over {} setups):",
        table.faults_covered,
        table.setups.len()
    );
    let mut faults: Vec<&str> = Vec::new();
    for c in &table.cells {
        if !faults.contains(&c.fault.as_str()) {
            faults.push(&c.fault);
        }
    }
    for fault in faults {
        let worst = table
            .cells
            .iter()
            .filter(|c| c.fault == fault)
            .map(|c| c.fused_catch)
            .fold(f64::INFINITY, f64::min);
        let blocked = table.cells.iter().any(|c| c.fault == fault && c.blocked);
        let _ = writeln!(
            out,
            "  {fault:<24} {worst:>6.3}{}",
            if blocked { "  (blocked upstream of the printer)" } else { "" }
        );
    }
    out.push_str(
        "\nObfusCADe note: fusing the acoustic and power channels never loses to\n\
         either channel alone at the same calibrated false-positive budget, and\n\
         the defender's own jamming (nonzero jam rows) degrades the acoustic\n\
         channel while the power envelope keeps the catch rate up.\n",
    );
    out
}

/// Ablation — the counterfeiter's key-space search (the logic-locking
/// analogy quantified).
pub fn ablation_keyspace() -> String {
    let mut out = String::from("Ablation — counterfeiter key-space search\n\n");
    let thresholds = QualityThresholds::default();

    out.push_str("Embedded-sphere scheme (adversary has the CAD, tries recipes × orientations):\n");
    let outcome = search_sphere_scheme(&EmbeddedSphereScheme::default(), &thresholds, 11)
        .expect("search");
    for attempt in &outcome.attempts {
        let _ = writeln!(out, "  {:<55} → {}", attempt.key.to_string(), attempt.verdict);
    }
    let _ = writeln!(
        out,
        "  success rate {:.0}%, prints until first good part: {:?}\n",
        outcome.success_rate() * 100.0,
        outcome.prints_to_success
    );

    out.push_str("Spline-split scheme (adversary has the STL, tries resolutions × orientations,\nfull inspection incl. destructive testing):\n");
    let scheme = SplineSplitScheme::default();
    let reference = obfuscade::genuine_production(&scheme, 21, true).expect("genuine");
    let protected = scheme.protected_part().expect("part");
    let mut good = 0usize;
    let mut total = 0usize;
    let mut trial_plans = Vec::new();
    for resolution in Resolution::ALL {
        for orientation in Orientation::ALL {
            trial_plans
                .push(ProcessPlan::fdm(resolution, orientation).with_seed(33).with_tensile(true));
        }
    }
    let trial_outputs = run_pipeline_batch_with(
        &protected,
        &trial_plans,
        &FaultPlan::none(),
        experiment_cache(),
        Parallelism::auto(),
    );
    for (plan, output) in trial_plans.iter().zip(trial_outputs) {
        let output = output.expect("pipeline");
        let report = assess_quality(&output, &reference, &thresholds);
        let _ = writeln!(
            out,
            "  {:<8} {:<6} → {:<10} {}",
            plan.resolution.to_string(),
            plan.orientation.to_string(),
            report.verdict.to_string(),
            report.findings.first().map(String::as_str).unwrap_or("")
        );
        total += 1;
        if report.verdict == Verdict::Good {
            good += 1;
        }
    }
    let rate = 100.0 * good as f64 / total as f64;
    if good == 0 {
        let _ = writeln!(
            out,
            "  success rate {rate:.0}% — no resolution/orientation restores the stolen file's quality."
        );
    } else {
        let _ = writeln!(out, "  success rate {rate:.0}%");
    }
    out
}

/// Ablation — key-space scaling with multiple planted features (the
/// logic-locking analogy, quantified: n features → 4ⁿ keys).
pub fn ablation_multikey() -> String {
    use obfuscade::MultiSphereScheme;
    let mut out = String::from(
        "Ablation — key-space scaling with multiple embedded features\n\n",
    );
    let _ = writeln!(
        out,
        "{:>2} {:>10} {:>18} | {:>14} {:>18}",
        "n", "key space", "expected prints", "genuine print", "random guesses OK"
    );
    let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy);
    for n in 1..=3usize {
        let scheme = MultiSphereScheme::new(n).expect("scheme");
        let genuine = scheme.part_for_recipes(&scheme.genuine_recipes()).expect("part");
        // Empirical counterfeiter success over 8 random recipe guesses; the
        // genuine print and all guesses go through one job batch (random
        // guesses often repeat a recipe, so their prefixes alias).
        let trials = 8;
        let guesses: Vec<Part> = (0..trials)
            .map(|seed| {
                let recipes = scheme.random_recipes(seed as u64 * 7 + 1);
                scheme.part_for_recipes(&recipes).expect("part")
            })
            .collect();
        let mut jobs =
            vec![BatchJob { part: &genuine, plan: plan.clone(), faults: FaultPlan::none() }];
        jobs.extend(
            guesses
                .iter()
                .map(|part| BatchJob { part, plan: plan.clone(), faults: FaultPlan::none() }),
        );
        let mut results =
            run_pipeline_jobs(&jobs, experiment_cache(), Parallelism::auto()).into_iter();
        let output = results.next().expect("one result per job").expect("pipeline");
        let genuine_ok = scheme.authenticate(&output.scan) == Authenticity::Genuine;
        let mut wins = 0;
        for result in results {
            let output = result.expect("pipeline");
            if scheme.authenticate(&output.scan) == Authenticity::Genuine {
                wins += 1;
            }
        }
        let _ = writeln!(
            out,
            "{:>2} {:>10} {:>18.0} | {:>14} {:>15}/{trials}",
            n,
            scheme.key_space_size(),
            scheme.expected_prints_to_success(),
            if genuine_ok { "solid ✓" } else { "FAILED" },
            wins,
        );
    }
    out.push_str(
        "\neach extra feature multiplies the key space by 4; a random counterfeiter\n\
         succeeds with probability 4⁻ⁿ per print (cf. logic locking key bits).\n",
    );
    out
}

/// Ablation — the mesh-repair (vertex welding) attack.
pub fn ablation_repair() -> String {
    let mut out = String::from("Ablation — STL repair attack (vertex welding before reprint)\n\n");
    let scheme = SplineSplitScheme::default();
    let _ = writeln!(
        out,
        "{:<14} {:>16} {:>14} {:>16} {:>14}",
        "weld tol mm", "verts merged", "tris dropped", "watertight after", "backfired"
    );
    for tol in [1e-9, 1e-4, 0.01, 0.1, 0.5] {
        let outcome = repair_attack(&scheme, Resolution::Coarse, tol).expect("repair");
        let _ = writeln!(
            out,
            "{:<14e} {:>16} {:>14} {:>16} {:>14}",
            tol,
            outcome.vertices_merged,
            outcome.triangles_dropped,
            outcome.watertight_after,
            outcome.repair_backfired()
        );
    }
    out.push_str(
        "\nwelding fuses boundary vertices but cannot remove the interior separation\n\
         wall: every setting either changes nothing or leaves non-manifold scars.\n",
    );
    out
}

/// Ablation — the corner-cutting counterfeiter: right key, sparse infill.
/// The Table 1 weight/density inspection catches what geometry checks miss.
pub fn ablation_sparse_infill() -> String {
    use am_slicer::InfillStyle;
    let mut out = String::from(
        "Ablation — sparse-infill corner cutting vs the weight/density check\n\n",
    );
    let scheme = EmbeddedSphereScheme::default();
    let genuine_part = scheme.part_for_recipe(scheme.genuine_recipe()).expect("part");
    let reference = run_pipeline(
        &genuine_part,
        &ProcessPlan::fdm(Resolution::Fine, Orientation::Xy),
    )
    .expect("pipeline");
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "infill", "weight g", "ratio", "verdict", "finding"
    );
    for (name, infill) in [
        ("solid", InfillStyle::Solid),
        ("sparse 50%", InfillStyle::Sparse { density: 0.5 }),
        ("sparse 25%", InfillStyle::Sparse { density: 0.25 }),
    ] {
        let mut plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy);
        plan.slicer.infill = infill;
        let output = run_pipeline(&genuine_part, &plan).expect("pipeline");
        let report = assess_quality(&output, &reference, &QualityThresholds::default());
        let _ = writeln!(
            out,
            "{:<14} {:>10.2} {:>12.2} {:>12} {:>12}",
            name,
            output.printed.weight_g(),
            output.printed.weight_g() / reference.printed.weight_g(),
            report.verdict.to_string(),
            report.findings.first().map(String::as_str).unwrap_or(""),
        );
    }
    out.push_str(
        "\neven with the correct process key, skimping on infill fails the\n\
         defender's weight measurement (Table 1, printer-stage mitigation).\n",
    );
    out
}

/// Authentication demonstration (the paper's genuine-part identification
/// claim).
pub fn authentication_demo() -> String {
    let mut out = String::from("Authentication — genuine-part identification by CT signature\n\n");
    let scheme = SplineSplitScheme::default();
    let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy);
    let genuine = run_pipeline(&scheme.genuine_part().expect("part"), &plan).expect("run");
    let counterfeit = run_pipeline(&scheme.protected_part().expect("part"), &plan).expect("run");
    for (name, output) in [("licensed print", &genuine), ("counterfeit print", &counterfeit)] {
        let auth = scheme.authenticate(&output.scan);
        let _ = writeln!(
            out,
            "{name:<18}: cold-joint area {:7.1} mm² → {:?}",
            output.scan.cold_joint_area, auth
        );
        assert!(matches!(auth, Authenticity::Genuine | Authenticity::Counterfeit));
    }
    out
}
