//! Benchmark harness for the performance kernels (PR 2) and the
//! shared-prefix sweep engine (PR 3).
//!
//! Measures the three rewritten hot kernels — slicing, deposition, FEA
//! relaxation — plus the end-to-end experiment suite, each as *reference
//! implementation vs optimized kernel*. The reference implementations are
//! the original seed kernels, kept verbatim behind
//! [`obfuscade::KernelMode::Reference`]; the optimized kernels are the
//! interval-sweep slicer, the scanline span-plan stamper (PR 7, DESIGN.md
//! §13), and the SoA gather-based relaxation solver, run at the
//! configured thread budget.
//! The `sweep` row benchmarks the content-addressed stage cache: the full
//! `ProcessKey::key_space()` with seed replicates, cold per-key
//! `run_pipeline` vs [`obfuscade::sweep_key_space`] over one
//! [`StageCache`].
//!
//! The report is rendered both as a human-readable table and as a small
//! JSON document (`BENCH_*.json`) built on the shared
//! [`obfuscade::json`] module; [`validate_report_json`] parses the JSON
//! back and checks the schema (including the cache counters, the PR 4
//! per-kernel solver-work counters, the PR 5 mandatory `serve` section,
//! the PR 7 span-plan deposition counters + untimed serve warmup count,
//! the PR 9 routed-fleet grid — mandatory `fleet` section whose
//! affinity points must beat round-robin at every N ≥ 2 — and the PR 10
//! detection sweep — mandatory `detect` section whose ROC table must
//! cover the complete 15-entry fault catalog with the fused detector
//! never below either single channel per setup; schema
//! `obfuscade-bench/v9`), so CI can verify the emitted file without a
//! JSON dependency.
//!
//! Since PR 5 the harness can also benchmark the **service daemon**
//! ([`BenchConfig::serve`]): it boots an `am-service` server on a
//! loopback port, drives it with the load generator, verifies every
//! response byte-for-byte against an in-process reference run, and
//! commits exact client-side p50/p95/p99 latencies plus throughput into
//! the report's `serve` section.
//!
//! Since PR 4 the `fea` row times the tensile kernel under the configured
//! equilibrium solver ([`BenchConfig::solver`], default Newton–PCG) and
//! every kernel row carries two work counters sampled from the fea crate's
//! process-wide solver telemetry: `inner_iters` (PCG + relaxation sweeps)
//! and `residual_evals` (full bond-force evaluations). Both are averaged
//! per timed optimized pass and are zero for rows that never enter the
//! tensile kernel.

use std::time::Instant;

use am_cad::parts::{prism_with_sphere, tensile_bar_with_spline, PrismDims, TensileBarDims};
use am_cad::{BodyKind, MaterialRemoval};
use am_detect::{run_roc_sweep, RocConfig, RocTable};
use am_fea::{
    run_tensile_test_reference, run_tensile_test_with, solver_counters, FeaSolver, Lattice,
    TensileConfig,
};
use am_geom::{Point3, Transform3, Vec3};
use am_mesh::{tessellate_shells, Resolution};
use am_printer::{stamp_counters, PrintedPart, PrinterProfile};
use am_slicer::{
    build_transform, generate_toolpath, orient_shells, slice_shells_scan, try_slice_shells_with,
    Orientation, SlicedModel, SlicerConfig, ToolPath,
};
use am_par::Parallelism;
use obfuscade::json::{json_number, json_string, parse_json, Json};
use obfuscade::metrics::cache_line;
use obfuscade::{
    run_pipeline, set_kernel_mode, sweep_key_space, CacheStats, CadRecipe, Deadline, KernelMode,
    PipelineError, PipelineOutput, ProcessKey, ProcessPlan, StageCache,
};
use std::fmt::Write as _;

/// What to benchmark and how hard.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Tiny workloads and a single pipeline pass for the end-to-end row —
    /// finishes in seconds; used by the CI smoke stage.
    pub smoke: bool,
    /// Thread budget for the optimized kernels' parallel paths.
    pub threads: usize,
    /// Replicates for the end-to-end experiment suite (ignored in smoke).
    pub replicates: usize,
    /// Equilibrium solver the optimized tensile kernel runs under
    /// (`fea` row only; the reference baseline is always the original
    /// relaxation loop, and the experiment suite uses each plan's default).
    pub solver: FeaSolver,
    /// Also benchmark the service daemon: boot a server on a loopback
    /// port, drive it with the load generator, and commit latency
    /// quantiles + throughput into the report's `serve` section.
    pub serve: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        // Match the hardware: running the parallel paths with more threads
        // than cores only adds scheduling overhead (and on a single-core
        // CI box it can push a committed speedup below 1.0x).
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        BenchConfig {
            smoke: false,
            threads,
            replicates: 2,
            solver: FeaSolver::default(),
            serve: false,
        }
    }
}

/// One kernel's timings: reference baseline vs optimized implementation.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name (`slicing`, `printing`, `fea`, `all_experiments`).
    pub name: String,
    /// What the baseline implementation is.
    pub baseline: String,
    /// What the optimized implementation is.
    pub optimized: String,
    /// Thread budget the optimized side ran with.
    pub threads: usize,
    /// Best-of-N wall-clock of the baseline, milliseconds.
    pub baseline_ms: f64,
    /// Best-of-N wall-clock of the optimized kernel, milliseconds.
    pub optimized_ms: f64,
    /// Inner solver iterations (PCG + relaxation sweeps) per timed
    /// optimized pass; 0 for kernels that never enter the tensile solver.
    pub inner_iters: u64,
    /// Full bond-force evaluations per timed optimized pass; 0 for
    /// kernels that never enter the tensile solver.
    pub residual_evals: u64,
    /// Span records the deposition plan phase compiled per timed optimized
    /// pass (v6); 0 for kernels that never run the span-plan stamper.
    pub spans_planned: u64,
    /// Voxels the deposition execute phase wrote through unconditional
    /// span fills per timed optimized pass (v6); 0 outside the stamper.
    pub span_fill_voxels: u64,
}

impl KernelResult {
    /// Baseline time over optimized time.
    pub fn speedup(&self) -> f64 {
        if self.optimized_ms > 0.0 { self.baseline_ms / self.optimized_ms } else { f64::NAN }
    }
}

/// One point of the v7 backend × codec × concurrency sweep: a clean
/// load run against one daemon configuration, byte-verified against the
/// in-process reference exactly like the headline run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSweep {
    /// Connection backend the daemon ran (`reactor` or `threads`).
    pub backend: String,
    /// Wire codec the load generator negotiated (`json` or `binary`).
    pub codec: String,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Measured requests at this point (warmup excluded).
    pub requests: u64,
    /// Transport failures plus typed error responses (must be 0).
    pub errors: u64,
    /// Client workers that never got a connection (must be 0).
    pub dropped_connections: u64,
    /// Byte-level divergences from the reference run (must be 0).
    pub mismatches: u64,
    /// TCP connects the workers performed — exactly `concurrency` on a
    /// clean run now that each worker holds one connection (satellite 1);
    /// more only when retries had to reconnect.
    pub connects: u64,
    /// Client-side retry cycles at this point.
    pub retries: u64,
    /// Exact client-side median round-trip latency (ms).
    pub p50_ms: f64,
    /// Exact client-side 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// Exact client-side 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
}

/// What the service benchmark measured (the report's `serve` section).
///
/// v7: the headline quantiles come from the reactor-backend binary-codec
/// run at the sweep's highest concurrency; the full backend × codec ×
/// concurrency grid lives in `sweeps`, and the error/mismatch counters
/// aggregate over every point so the zero-checks cover the whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResult {
    /// Connection backend of the headline run (`reactor` on Linux).
    pub backend: String,
    /// Wire codec of the headline run (`binary`).
    pub codec: String,
    /// Requests driven at the daemon.
    pub requests: u64,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Transport failures plus typed error responses (must be 0).
    pub errors: u64,
    /// Client threads that failed to connect (must be 0).
    pub dropped_connections: u64,
    /// Responses that differed byte-for-byte from the in-process
    /// reference run (must be 0).
    pub mismatches: u64,
    /// Exact client-side median round-trip latency (ms).
    pub p50_ms: f64,
    /// Exact client-side 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// Exact client-side 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Daemon-side stage-cache hits accumulated across the load run.
    pub cache_hits: u64,
    /// Daemon-side lookups rehydrated from the persistent spill tier
    /// (v5; zero when the daemon ran without a spill directory).
    pub spill_hits: u64,
    /// Client-side retry cycles across the load run (v5; a clean run on
    /// a healthy loopback daemon normally has zero).
    pub retries: u64,
    /// Daemon-side worker respawns after panics (v5; zero without chaos
    /// injection).
    pub respawns: u64,
    /// Untimed warmup requests driven before measurement began (v6). The
    /// warmup absorbs cold-start work — lazy statics, first-touch page
    /// faults, the first stage-cache misses — so the committed p99
    /// reflects steady state rather than the first request.
    pub warmup_requests: u64,
    /// TCP connects across the whole sweep (v7, satellite 1).
    pub connects: u64,
    /// Daemon-side JSON frames decoded across the sweep (v7).
    pub frames_json: u64,
    /// Daemon-side binary frames decoded across the sweep (v7; > 0
    /// whenever a binary point ran).
    pub frames_binary: u64,
    /// Connections that negotiated the binary codec across the sweep
    /// (v7; > 0 whenever a binary point ran).
    pub binary_negotiated: u64,
    /// Reactor write-backpressure stalls across the sweep (v7; zero on
    /// the thread backend, and usually zero on loopback).
    pub backpressure_stalls: u64,
    /// The full backend × codec × concurrency grid (v7).
    pub sweeps: Vec<ServeSweep>,
}

/// One point of the v8 routed-fleet grid: N daemons behind one router
/// under one routing policy, driven with the shared-prefix sweep and
/// byte-verified against the in-process reference.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPoint {
    /// Backend daemons behind the router at this point.
    pub nodes: usize,
    /// Routing policy (`affinity` or `round-robin`).
    pub policy: String,
    /// Requests driven through the router.
    pub requests: u64,
    /// Transport failures plus typed error responses (must be 0).
    pub errors: u64,
    /// Client workers that never got a connection (must be 0).
    pub dropped_connections: u64,
    /// Byte-level divergences from the reference run (must be 0).
    pub mismatches: u64,
    /// Client-side retry cycles at this point.
    pub retries: u64,
    /// Front-socket connects the load generator performed.
    pub connects: u64,
    /// Jobs the router dispatched to a backend (≥ `requests`; retries
    /// re-dispatch).
    pub routed: u64,
    /// Dispatches that fell past the first-choice backend (0 on a
    /// healthy fleet).
    pub failovers: u64,
    /// Stage-cache hits summed across the fleet's daemons.
    pub cache_hits: u64,
    /// Stage-cache misses summed across the fleet's daemons.
    pub cache_misses: u64,
    /// `100 · hits / (hits + misses)` across the fleet, in percentage
    /// points — the number the affinity-vs-round-robin comparison is
    /// about.
    pub hit_rate: f64,
    /// Per-daemon stage-cache hits, in backend order (sums to
    /// `cache_hits`).
    pub per_node_hits: Vec<u64>,
    /// Exact client-side median routed round-trip latency (ms).
    pub p50_ms: f64,
    /// Exact client-side 95th-percentile routed latency (ms).
    pub p95_ms: f64,
    /// Exact client-side 99th-percentile routed latency (ms).
    pub p99_ms: f64,
    /// Completed routed requests per wall-clock second.
    pub throughput_rps: f64,
}

/// What the routed-fleet benchmark measured (the report's `fleet`
/// section, v8).
///
/// The headline fields restate the **affinity** point at the grid's
/// largest node count — the configuration the router exists for — and
/// the full nodes × policy grid lives in `points`, with round-robin
/// rows as the baseline showing what scale-out costs when placement
/// ignores the stage-key prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Node count of the headline point (the grid's largest fleet).
    pub nodes: usize,
    /// Policy of the headline point (always `affinity`).
    pub policy: String,
    /// Client connections the load ran with. 1 on purpose: round-robin
    /// placement is then a pure function of request order, making the
    /// hit-rate comparison deterministic instead of racing on dispatch
    /// interleaving.
    pub concurrency: usize,
    /// Distinct stage-key prefix families in the sweep workload.
    pub prefixes: u64,
    /// Requests driven at the headline point.
    pub requests: u64,
    /// Fleet-wide warm hit rate at the headline point (percentage
    /// points).
    pub hit_rate: f64,
    /// Exact client-side median routed latency at the headline (ms).
    pub p50_ms: f64,
    /// Exact client-side 95th-percentile routed latency (ms).
    pub p95_ms: f64,
    /// Exact client-side 99th-percentile routed latency (ms).
    pub p99_ms: f64,
    /// Completed routed requests per wall-clock second at the headline.
    pub throughput_rps: f64,
    /// The full nodes × policy grid.
    pub points: Vec<FleetPoint>,
}

/// What the detection benchmark measured (the report's `detect`
/// section, v9): the `am-detect` ROC sweep — the three-detector bank
/// (audio signature, power envelope, fused) against the **complete**
/// 15-entry single-fault catalog, per capture setup (quality preset ×
/// NoiseEmitter jamming amplitude), with the measured false-positive
/// rate over held-out genuine recaptures.
///
/// The headline fields restate the sweep's worst case: the minimum
/// fused catch rate and the maximum measured fused FPR over every
/// setup — the numbers the `--detect-min-catch` / `--detect-max-fpr`
/// gates pin.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectBenchResult {
    /// Worst-case (minimum over setups) catalog-wide fused catch rate.
    pub min_fused_catch: f64,
    /// Worst-case (maximum over setups) measured fused FPR.
    pub max_fused_fpr: f64,
    /// Wall-clock of the whole sweep, milliseconds.
    pub wall_ms: f64,
    /// The full detector × fault × capture-setup table.
    pub table: RocTable,
}

impl DetectBenchResult {
    /// Canonical JSON value of the section (embedded verbatim in the
    /// report document).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("min_fused_catch".into(), Json::Number(self.min_fused_catch)),
            ("max_fused_fpr".into(), Json::Number(self.max_fused_fpr)),
            ("wall_ms".into(), Json::Number(self.wall_ms)),
            ("table".into(), self.table.to_json()),
        ])
    }
}

/// The full benchmark report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Config the run used.
    pub config: BenchConfig,
    /// One row per benchmarked kernel.
    pub kernels: Vec<KernelResult>,
    /// Stage-cache traffic during the sweep benchmark (all-zero when it
    /// didn't run). Serialized under the v2 field names
    /// (`cache_hits`/`cache_misses`/`evictions`).
    pub cache: CacheStats,
    /// The service benchmark ([`BenchConfig::serve`]); `None` renders as
    /// `"serve": null` — the field itself is mandatory in v4.
    pub serve: Option<ServeResult>,
    /// The routed-fleet benchmark (v8, rides the same
    /// [`BenchConfig::serve`] switch); `None` renders as `"fleet":
    /// null` — the field itself is mandatory in v8.
    pub fleet: Option<FleetResult>,
    /// The detection ROC benchmark (v9); `None` renders as `"detect":
    /// null` — the field itself is mandatory in v9.
    pub detect: Option<DetectBenchResult>,
}

const SCHEMA: &str = "obfuscade-bench/v9";

impl BenchReport {
    /// Renders the human-readable results table.
    pub fn render(&self) -> String {
        let mut out = String::from("Benchmark — reference kernels vs optimized kernels\n\n");
        let _ = writeln!(
            out,
            "{:<16} {:>14} {:>14} {:>9} {:>9} {:>12} {:>12}",
            "kernel", "baseline ms", "optimized ms", "speedup", "threads", "inner iters", "resid evals"
        );
        for k in &self.kernels {
            let _ = writeln!(
                out,
                "{:<16} {:>14.2} {:>14.2} {:>8.2}x {:>9} {:>12} {:>12}",
                k.name,
                k.baseline_ms,
                k.optimized_ms,
                k.speedup(),
                k.threads,
                k.inner_iters,
                k.residual_evals
            );
        }
        let _ = writeln!(out, "\ntensile solver (optimized fea row): {}", self.config.solver);
        if let Some(p) = self.kernels.iter().find(|k| k.spans_planned > 0) {
            let _ = writeln!(
                out,
                "span-plan stamper ({} row): {} spans planned, {} voxels span-filled per pass",
                p.name, p.spans_planned, p.span_fill_voxels
            );
        }
        if self.cache.hits + self.cache.misses > 0 {
            let _ = writeln!(out, "\nstage cache (sweep): {}", cache_line(&self.cache));
        }
        if let Some(s) = &self.serve {
            let _ = writeln!(
                out,
                "\nserve ({} backend, {} codec): {} requests over {} connections — \
                 p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, {:.0} req/s, {} cache hits, \
                 {} spill hits, {} errors, {} dropped, {} mismatches, {} retries, {} respawns",
                s.backend,
                s.codec,
                s.requests,
                s.concurrency,
                s.p50_ms,
                s.p95_ms,
                s.p99_ms,
                s.throughput_rps,
                s.cache_hits,
                s.spill_hits,
                s.errors,
                s.dropped_connections,
                s.mismatches,
                s.retries,
                s.respawns
            );
            let _ = writeln!(
                out,
                "serve wire: {} json + {} binary frames, {} binary conns, {} connects, \
                 {} backpressure stalls",
                s.frames_json, s.frames_binary, s.binary_negotiated, s.connects, s.backpressure_stalls
            );
            for p in &s.sweeps {
                let _ = writeln!(
                    out,
                    "  {:<8} {:<7} c={:<5} {:>6} req  p50 {:>8.2} ms  p95 {:>8.2} ms  \
                     p99 {:>8.2} ms  {:>8.0} req/s  {} connects",
                    p.backend, p.codec, p.concurrency, p.requests, p.p50_ms, p.p95_ms, p.p99_ms,
                    p.throughput_rps, p.connects
                );
            }
        }
        if let Some(f) = &self.fleet {
            let _ = writeln!(
                out,
                "\nfleet ({} nodes, {} routing): {} requests over {} prefix families — \
                 {:.1}% warm hits, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, {:.0} req/s",
                f.nodes,
                f.policy,
                f.requests,
                f.prefixes,
                f.hit_rate,
                f.p50_ms,
                f.p95_ms,
                f.p99_ms,
                f.throughput_rps
            );
            for p in &f.points {
                let _ = writeln!(
                    out,
                    "  n={:<2} {:<11} {:>5} req  {:>5.1}% hits  p50 {:>8.2} ms  \
                     p99 {:>8.2} ms  {:>7.0} req/s  {} failovers  per-node hits {:?}",
                    p.nodes,
                    p.policy,
                    p.requests,
                    p.hit_rate,
                    p.p50_ms,
                    p.p99_ms,
                    p.throughput_rps,
                    p.failovers,
                    p.per_node_hits
                );
            }
        }
        if let Some(d) = &self.detect {
            let _ = writeln!(
                out,
                "\ndetect (ROC sweep): {} faults covered over {} capture setups in {:.0} ms — \
                 worst-case fused catch {:.2}, worst-case fused FPR {:.2}",
                d.table.faults_covered,
                d.table.setups.len(),
                d.wall_ms,
                d.min_fused_catch,
                d.max_fused_fpr
            );
            for s in &d.table.setups {
                let _ = writeln!(
                    out,
                    "  {:<11} jam={:<4} catch audio {:>5.2}  power {:>5.2}  fused {:>5.2}  \
                     fpr audio {:>5.2}  power {:>5.2}  fused {:>5.2}",
                    s.quality,
                    s.jam_amplitude,
                    s.audio_catch,
                    s.power_catch,
                    s.fused_catch,
                    s.audio_fpr,
                    s.power_fpr,
                    s.fused_fpr
                );
            }
        }
        out.push_str(
            "\nbaselines are the original seed implementations (KernelMode::Reference);\n\
             parallel output is asserted bit-identical to serial by the test suite.\n",
        );
        out
    }

    /// Serializes the report as a small JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
        let _ = writeln!(out, "  \"smoke\": {},", self.config.smoke);
        let _ = writeln!(out, "  \"threads\": {},", self.config.threads);
        let _ = writeln!(out, "  \"solver\": {},", json_string(self.config.solver.name()));
        let _ = writeln!(out, "  \"cache_hits\": {},", self.cache.hits);
        let _ = writeln!(out, "  \"cache_misses\": {},", self.cache.misses);
        let _ = writeln!(out, "  \"evictions\": {},", self.cache.evictions);
        let _ = writeln!(
            out,
            "  \"determinism\": {},",
            json_string("parallel output bit-identical to serial (asserted by tests)")
        );
        match &self.serve {
            None => out.push_str("  \"serve\": null,\n"),
            Some(s) => {
                out.push_str("  \"serve\": {\n");
                let _ = writeln!(out, "    \"backend\": {},", json_string(&s.backend));
                let _ = writeln!(out, "    \"codec\": {},", json_string(&s.codec));
                let _ = writeln!(out, "    \"requests\": {},", s.requests);
                let _ = writeln!(out, "    \"concurrency\": {},", s.concurrency);
                let _ = writeln!(out, "    \"errors\": {},", s.errors);
                let _ = writeln!(out, "    \"dropped_connections\": {},", s.dropped_connections);
                let _ = writeln!(out, "    \"mismatches\": {},", s.mismatches);
                let _ = writeln!(out, "    \"p50_ms\": {},", json_number(s.p50_ms));
                let _ = writeln!(out, "    \"p95_ms\": {},", json_number(s.p95_ms));
                let _ = writeln!(out, "    \"p99_ms\": {},", json_number(s.p99_ms));
                let _ = writeln!(out, "    \"throughput_rps\": {},", json_number(s.throughput_rps));
                let _ = writeln!(out, "    \"cache_hits\": {},", s.cache_hits);
                let _ = writeln!(out, "    \"spill_hits\": {},", s.spill_hits);
                let _ = writeln!(out, "    \"retries\": {},", s.retries);
                let _ = writeln!(out, "    \"respawns\": {},", s.respawns);
                let _ = writeln!(out, "    \"warmup_requests\": {},", s.warmup_requests);
                let _ = writeln!(out, "    \"connects\": {},", s.connects);
                let _ = writeln!(out, "    \"frames_json\": {},", s.frames_json);
                let _ = writeln!(out, "    \"frames_binary\": {},", s.frames_binary);
                let _ = writeln!(out, "    \"binary_negotiated\": {},", s.binary_negotiated);
                let _ = writeln!(out, "    \"backpressure_stalls\": {},", s.backpressure_stalls);
                out.push_str("    \"sweeps\": [\n");
                for (i, p) in s.sweeps.iter().enumerate() {
                    out.push_str("      {\n");
                    let _ = writeln!(out, "        \"backend\": {},", json_string(&p.backend));
                    let _ = writeln!(out, "        \"codec\": {},", json_string(&p.codec));
                    let _ = writeln!(out, "        \"concurrency\": {},", p.concurrency);
                    let _ = writeln!(out, "        \"requests\": {},", p.requests);
                    let _ = writeln!(out, "        \"errors\": {},", p.errors);
                    let _ = writeln!(
                        out,
                        "        \"dropped_connections\": {},",
                        p.dropped_connections
                    );
                    let _ = writeln!(out, "        \"mismatches\": {},", p.mismatches);
                    let _ = writeln!(out, "        \"connects\": {},", p.connects);
                    let _ = writeln!(out, "        \"retries\": {},", p.retries);
                    let _ = writeln!(out, "        \"p50_ms\": {},", json_number(p.p50_ms));
                    let _ = writeln!(out, "        \"p95_ms\": {},", json_number(p.p95_ms));
                    let _ = writeln!(out, "        \"p99_ms\": {},", json_number(p.p99_ms));
                    let _ = writeln!(
                        out,
                        "        \"throughput_rps\": {}",
                        json_number(p.throughput_rps)
                    );
                    out.push_str(if i + 1 < s.sweeps.len() { "      },\n" } else { "      }\n" });
                }
                out.push_str("    ]\n");
                out.push_str("  },\n");
            }
        }
        match &self.fleet {
            None => out.push_str("  \"fleet\": null,\n"),
            Some(f) => {
                out.push_str("  \"fleet\": {\n");
                let _ = writeln!(out, "    \"nodes\": {},", f.nodes);
                let _ = writeln!(out, "    \"policy\": {},", json_string(&f.policy));
                let _ = writeln!(out, "    \"concurrency\": {},", f.concurrency);
                let _ = writeln!(out, "    \"prefixes\": {},", f.prefixes);
                let _ = writeln!(out, "    \"requests\": {},", f.requests);
                let _ = writeln!(out, "    \"hit_rate\": {},", json_number(f.hit_rate));
                let _ = writeln!(out, "    \"p50_ms\": {},", json_number(f.p50_ms));
                let _ = writeln!(out, "    \"p95_ms\": {},", json_number(f.p95_ms));
                let _ = writeln!(out, "    \"p99_ms\": {},", json_number(f.p99_ms));
                let _ = writeln!(out, "    \"throughput_rps\": {},", json_number(f.throughput_rps));
                out.push_str("    \"points\": [\n");
                for (i, p) in f.points.iter().enumerate() {
                    out.push_str("      {\n");
                    let _ = writeln!(out, "        \"nodes\": {},", p.nodes);
                    let _ = writeln!(out, "        \"policy\": {},", json_string(&p.policy));
                    let _ = writeln!(out, "        \"requests\": {},", p.requests);
                    let _ = writeln!(out, "        \"errors\": {},", p.errors);
                    let _ = writeln!(
                        out,
                        "        \"dropped_connections\": {},",
                        p.dropped_connections
                    );
                    let _ = writeln!(out, "        \"mismatches\": {},", p.mismatches);
                    let _ = writeln!(out, "        \"retries\": {},", p.retries);
                    let _ = writeln!(out, "        \"connects\": {},", p.connects);
                    let _ = writeln!(out, "        \"routed\": {},", p.routed);
                    let _ = writeln!(out, "        \"failovers\": {},", p.failovers);
                    let _ = writeln!(out, "        \"cache_hits\": {},", p.cache_hits);
                    let _ = writeln!(out, "        \"cache_misses\": {},", p.cache_misses);
                    let _ = writeln!(out, "        \"hit_rate\": {},", json_number(p.hit_rate));
                    let hits: Vec<String> =
                        p.per_node_hits.iter().map(u64::to_string).collect();
                    let _ = writeln!(out, "        \"per_node_hits\": [{}],", hits.join(", "));
                    let _ = writeln!(out, "        \"p50_ms\": {},", json_number(p.p50_ms));
                    let _ = writeln!(out, "        \"p95_ms\": {},", json_number(p.p95_ms));
                    let _ = writeln!(out, "        \"p99_ms\": {},", json_number(p.p99_ms));
                    let _ = writeln!(
                        out,
                        "        \"throughput_rps\": {}",
                        json_number(p.throughput_rps)
                    );
                    out.push_str(if i + 1 < f.points.len() { "      },\n" } else { "      }\n" });
                }
                out.push_str("    ]\n");
                out.push_str("  },\n");
            }
        }
        match &self.detect {
            None => out.push_str("  \"detect\": null,\n"),
            // The section is assembled as a `Json` value and embedded in
            // its canonical rendering — the same bytes the CLI and the
            // wire protocol produce for the ROC table.
            Some(d) => {
                let _ = writeln!(out, "  \"detect\": {},", d.to_json().render());
            }
        }
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": {},", json_string(&k.name));
            let _ = writeln!(out, "      \"baseline\": {},", json_string(&k.baseline));
            let _ = writeln!(out, "      \"optimized\": {},", json_string(&k.optimized));
            let _ = writeln!(out, "      \"threads\": {},", k.threads);
            let _ = writeln!(out, "      \"baseline_ms\": {},", json_number(k.baseline_ms));
            let _ = writeln!(out, "      \"optimized_ms\": {},", json_number(k.optimized_ms));
            let _ = writeln!(out, "      \"inner_iters\": {},", k.inner_iters);
            let _ = writeln!(out, "      \"residual_evals\": {},", k.residual_evals);
            let _ = writeln!(out, "      \"spans_planned\": {},", k.spans_planned);
            let _ = writeln!(out, "      \"span_fill_voxels\": {},", k.span_fill_voxels);
            let _ = writeln!(out, "      \"speedup\": {}", json_number(k.speedup()));
            out.push_str(if i + 1 < self.kernels.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

// --- JSON parse-back validation ----------------------------------------
//
// The JSON value type, renderer and parser moved to `obfuscade::json` in
// PR 5 (the service wire protocol shares them); this module keeps only
// the bench-schema validation built on top.

/// Parses a `BENCH_*.json` document back and checks it against the schema:
/// the marker, the thread count, the tensile solver name, and a non-empty
/// kernel list whose rows carry positive timings, integer solver-work
/// counters, and a speedup consistent with the timings. Returns the
/// per-kernel speedups on success.
pub fn validate_report_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = parse_json(text)?;
    match doc.get("schema") {
        Some(Json::String(s)) if s == SCHEMA => {}
        other => return Err(format!("bad schema marker: {other:?}")),
    }
    match doc.get("smoke") {
        Some(Json::Bool(_)) => {}
        other => return Err(format!("bad 'smoke' field: {other:?}")),
    }
    let threads = doc
        .get("threads")
        .and_then(Json::as_number)
        .ok_or("missing 'threads'")?;
    if threads < 1.0 {
        return Err(format!("bad thread count {threads}"));
    }
    // v3: the tensile solver the optimized fea row ran under must name a
    // known solver.
    match doc.get("solver") {
        Some(Json::String(s)) if s.parse::<FeaSolver>().is_ok() => {}
        other => return Err(format!("bad 'solver' field: {other:?}")),
    }
    // v2: the stage-cache counters are mandatory non-negative integers.
    for field in ["cache_hits", "cache_misses", "evictions"] {
        let v = doc
            .get(field)
            .and_then(Json::as_number)
            .ok_or_else(|| format!("missing numeric '{field}'"))?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("bad '{field}' counter: {v}"));
        }
    }
    // v4: the serve section is mandatory — `null` when the daemon bench
    // didn't run, otherwise a clean load-generator result (zero errors,
    // zero dropped connections, zero determinism mismatches, warm cache,
    // monotone latency quantiles). v5 adds the robustness counters
    // (`spill_hits`, `retries`, `respawns`): mandatory non-negative
    // integers, but not required to be zero — a retried request that
    // ultimately returned correct bytes is still a clean run.
    let smoke = matches!(doc.get("smoke"), Some(Json::Bool(true)));
    let serve = doc.get("serve").ok_or("missing 'serve' field")?;
    let served = match serve {
        Json::Null => false,
        Json::Object(_) => {
            let get = |field: &str| {
                serve
                    .get(field)
                    .and_then(Json::as_number)
                    .ok_or_else(|| format!("serve: missing numeric '{field}'"))
            };
            // v7: the headline run names its connection backend and codec.
            for field in ["backend", "codec"] {
                match serve.get(field) {
                    Some(Json::String(s)) if !s.is_empty() => {}
                    other => return Err(format!("serve: bad '{field}' field: {other:?}")),
                }
            }
            for field in [
                "requests",
                "concurrency",
                "errors",
                "dropped_connections",
                "mismatches",
                "cache_hits",
                "spill_hits",
                "retries",
                "respawns",
                // v6: the untimed warmup round that precedes measurement.
                "warmup_requests",
                // v7: connection and codec accounting across the sweep.
                "connects",
                "frames_json",
                "frames_binary",
                "binary_negotiated",
                "backpressure_stalls",
            ] {
                let v = get(field)?;
                if v < 0.0 || v.fract() != 0.0 {
                    return Err(format!("serve: bad '{field}' counter: {v}"));
                }
            }
            if get("requests")? < 1.0 || get("concurrency")? < 1.0 {
                return Err("serve: a served report needs at least one request".to_string());
            }
            for field in ["errors", "dropped_connections", "mismatches"] {
                if get(field)? != 0.0 {
                    return Err(format!("serve: nonzero '{field}' — the load run was not clean"));
                }
            }
            if get("cache_hits")? < 1.0 {
                return Err("serve: the shared stage cache saw no hits across requests".to_string());
            }
            let (p50, p95, p99) = (get("p50_ms")?, get("p95_ms")?, get("p99_ms")?);
            if !(p50 > 0.0 && p95 >= p50 && p99 >= p95 && p99.is_finite()) {
                return Err(format!("serve: bad latency quantiles p50={p50} p95={p95} p99={p99}"));
            }
            if get("throughput_rps")? <= 0.0 {
                return Err("serve: non-positive throughput".to_string());
            }
            validate_serve_sweeps(serve, smoke)?;
            true
        }
        other => return Err(format!("bad 'serve' field: {other:?}")),
    };
    // v8: the routed-fleet section is mandatory — `null` when the fleet
    // bench didn't run, otherwise a clean nodes × policy grid with the
    // affinity-beats-round-robin ordering the router exists for.
    let routed = match doc.get("fleet").ok_or("missing 'fleet' field")? {
        Json::Null => false,
        fleet @ Json::Object(_) => {
            validate_fleet_grid(fleet, smoke)?;
            true
        }
        other => return Err(format!("bad 'fleet' field: {other:?}")),
    };
    // v9: the detection section is mandatory — `null` when the ROC sweep
    // didn't run, otherwise the full-catalog detector table with the
    // fused-beats-single-channel ordering the fused detector exists for.
    let detected = match doc.get("detect").ok_or("missing 'detect' field")? {
        Json::Null => false,
        detect @ Json::Object(_) => {
            validate_detect_section(detect, smoke)?;
            true
        }
        other => return Err(format!("bad 'detect' field: {other:?}")),
    };
    let kernels = match doc.get("kernels") {
        Some(Json::Array(items)) if !items.is_empty() || served || routed || detected => items,
        _ => return Err("missing or empty 'kernels' array".to_string()),
    };
    let mut speedups = Vec::new();
    for k in kernels {
        let name = match k.get("name") {
            Some(Json::String(s)) => s.clone(),
            other => return Err(format!("kernel without a name: {other:?}")),
        };
        for field in ["baseline", "optimized"] {
            if !matches!(k.get(field), Some(Json::String(_))) {
                return Err(format!("kernel '{name}': missing '{field}' description"));
            }
        }
        let get = |field: &str| {
            k.get(field)
                .and_then(Json::as_number)
                .ok_or_else(|| format!("kernel '{name}': missing numeric '{field}'"))
        };
        let baseline_ms = get("baseline_ms")?;
        let optimized_ms = get("optimized_ms")?;
        let speedup = get("speedup")?;
        // v3: every kernel row carries solver-work counters (zero outside
        // the tensile kernel); v6 adds the span-plan deposition counters
        // (zero outside the stamper). All non-negative integers.
        for field in ["inner_iters", "residual_evals", "spans_planned", "span_fill_voxels"] {
            let v = get(field)?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("kernel '{name}': bad '{field}' counter: {v}"));
            }
        }
        if baseline_ms <= 0.0 || optimized_ms <= 0.0 {
            return Err(format!("kernel '{name}': non-positive timings"));
        }
        // The stored speedup must agree with the stored timings (loosely:
        // both sides are rounded to 3 decimals independently).
        let expected = baseline_ms / optimized_ms;
        if (speedup - expected).abs() > 0.01 * expected.max(1.0) {
            return Err(format!(
                "kernel '{name}': speedup {speedup} inconsistent with timings ({expected:.3})"
            ));
        }
        speedups.push((name, speedup));
    }
    Ok(speedups)
}

/// Validates the v7 `serve.sweeps` grid: a non-empty array of clean
/// per-point rows (zero errors/drops/mismatches, monotone quantiles,
/// positive throughput, at least one connect per connection), plus the
/// codec-accounting cross-checks. In full (non-smoke) reports the grid
/// must carry the PR 8 comparison pair at its top concurrency —
/// reactor+binary and threads+json — and the binary p99 must be
/// strictly below the thread-backend JSON p99; smoke runs on a loaded
/// single-core box are too noise-dominated for a strict latency order,
/// so there only the grid's cleanliness is enforced.
fn validate_serve_sweeps(serve: &Json, smoke: bool) -> Result<(), String> {
    let sweeps = match serve.get("sweeps") {
        Some(Json::Array(items)) if !items.is_empty() => items,
        other => return Err(format!("serve: missing or empty 'sweeps' array: {other:?}")),
    };
    let mut rows: Vec<(String, String, f64, f64)> = Vec::new();
    let mut any_binary = false;
    for (i, p) in sweeps.iter().enumerate() {
        let gets = |field: &str| match p.get(field) {
            Some(Json::String(s)) if !s.is_empty() => Ok(s.clone()),
            other => Err(format!("serve sweep {i}: bad '{field}' field: {other:?}")),
        };
        let get = |field: &str| {
            p.get(field)
                .and_then(Json::as_number)
                .ok_or_else(|| format!("serve sweep {i}: missing numeric '{field}'"))
        };
        let (backend, codec) = (gets("backend")?, gets("codec")?);
        any_binary |= codec == "binary";
        for field in ["concurrency", "requests", "errors", "dropped_connections", "mismatches", "connects", "retries"]
        {
            let v = get(field)?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("serve sweep {i}: bad '{field}' counter: {v}"));
            }
        }
        for field in ["errors", "dropped_connections", "mismatches"] {
            if get(field)? != 0.0 {
                return Err(format!(
                    "serve sweep {i} ({backend}/{codec}): nonzero '{field}' — not a clean run"
                ));
            }
        }
        let concurrency = get("concurrency")?;
        if get("requests")? < 1.0 || concurrency < 1.0 {
            return Err(format!("serve sweep {i}: empty load point"));
        }
        if get("connects")? < concurrency {
            return Err(format!(
                "serve sweep {i} ({backend}/{codec}): fewer connects than connections"
            ));
        }
        let (p50, p95, p99) = (get("p50_ms")?, get("p95_ms")?, get("p99_ms")?);
        if !(p50 > 0.0 && p95 >= p50 && p99 >= p95 && p99.is_finite()) {
            return Err(format!(
                "serve sweep {i} ({backend}/{codec}): bad quantiles p50={p50} p95={p95} p99={p99}"
            ));
        }
        if get("throughput_rps")? <= 0.0 {
            return Err(format!("serve sweep {i} ({backend}/{codec}): non-positive throughput"));
        }
        rows.push((backend, codec, concurrency, p99));
    }
    // The per-codec frame counters must agree with the grid: any binary
    // point implies the daemon decoded binary frames on negotiated
    // connections.
    let counter = |field: &str| serve.get(field).and_then(Json::as_number).unwrap_or(0.0);
    if any_binary && (counter("frames_binary") < 1.0 || counter("binary_negotiated") < 1.0) {
        return Err("serve: binary sweep points but no decoded binary frames".to_string());
    }
    if counter("frames_json") < 1.0 {
        return Err("serve: no decoded JSON frames across the sweep".to_string());
    }
    if smoke {
        return Ok(());
    }
    let top = rows.iter().map(|r| r.2).fold(0.0, f64::max);
    let p99_of = |backend: &str, codec: &str| {
        rows.iter()
            .find(|(b, c, conc, _)| b == backend && c == codec && *conc == top)
            .map(|&(_, _, _, p99)| p99)
            .ok_or_else(|| {
                format!("serve: full report lacks the {backend}+{codec} sweep at c={top}")
            })
    };
    let binary = p99_of("reactor", "binary")?;
    let baseline = p99_of("threads", "json")?;
    if binary >= baseline {
        return Err(format!(
            "serve: reactor+binary p99 {binary} ms is not below the threads+json p99 \
             {baseline} ms at c={top}"
        ));
    }
    Ok(())
}

/// Validates the v8 `fleet` section: a routed-fleet grid of nodes ×
/// routing-policy points, every point a clean byte-verified load run
/// whose per-node hit counts sum to the point's fleet-wide total and
/// whose stored hit rate agrees with its counters. Every node count
/// must carry both policies, and at N ≥ 2 the affinity hit rate must
/// strictly beat round-robin — the whole point of hashing stage-key
/// prefixes. The headline fields must restate the affinity point at
/// the grid's largest node count. Full (non-smoke) reports must carry
/// the single-node baseline and reach at least 4 nodes, with the top
/// affinity hit rate within 5 percentage points of single-node (cache
/// locality preserved under scale-out).
fn validate_fleet_grid(fleet: &Json, smoke: bool) -> Result<(), String> {
    let get = |field: &str| {
        fleet
            .get(field)
            .and_then(Json::as_number)
            .ok_or_else(|| format!("fleet: missing numeric '{field}'"))
    };
    match fleet.get("policy") {
        Some(Json::String(s)) if s == "affinity" => {}
        other => return Err(format!("fleet: headline policy must be affinity: {other:?}")),
    }
    for field in ["nodes", "concurrency", "prefixes", "requests"] {
        let v = get(field)?;
        if v < 1.0 || v.fract() != 0.0 {
            return Err(format!("fleet: bad '{field}': {v}"));
        }
    }
    if get("prefixes")? < 2.0 {
        return Err("fleet: a one-prefix sweep cannot exercise placement".to_string());
    }
    let headline_nodes = get("nodes")?;
    let headline_hit = get("hit_rate")?;
    if !(0.0..=100.0).contains(&headline_hit) {
        return Err(format!("fleet: hit rate {headline_hit} outside [0, 100]"));
    }
    let (p50, p95, p99) = (get("p50_ms")?, get("p95_ms")?, get("p99_ms")?);
    if !(p50 > 0.0 && p95 >= p50 && p99 >= p95 && p99.is_finite()) {
        return Err(format!("fleet: bad latency quantiles p50={p50} p95={p95} p99={p99}"));
    }
    if get("throughput_rps")? <= 0.0 {
        return Err("fleet: non-positive throughput".to_string());
    }

    let points = match fleet.get("points") {
        Some(Json::Array(items)) if !items.is_empty() => items,
        other => return Err(format!("fleet: missing or empty 'points' array: {other:?}")),
    };
    // (nodes, policy, hit_rate) rows for the grid-shape checks below.
    let mut grid: Vec<(f64, String, f64)> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let policy = match p.get("policy") {
            Some(Json::String(s)) if s == "affinity" || s == "round-robin" => s.clone(),
            other => return Err(format!("fleet point {i}: bad 'policy': {other:?}")),
        };
        let get = |field: &str| {
            p.get(field)
                .and_then(Json::as_number)
                .ok_or_else(|| format!("fleet point {i}: missing numeric '{field}'"))
        };
        for field in [
            "nodes",
            "requests",
            "errors",
            "dropped_connections",
            "mismatches",
            "retries",
            "connects",
            "routed",
            "failovers",
            "cache_hits",
            "cache_misses",
        ] {
            let v = get(field)?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("fleet point {i}: bad '{field}' counter: {v}"));
            }
        }
        for field in ["errors", "dropped_connections", "mismatches"] {
            if get(field)? != 0.0 {
                return Err(format!(
                    "fleet point {i} ({policy}): nonzero '{field}' — not a clean run"
                ));
            }
        }
        let (nodes, requests) = (get("nodes")?, get("requests")?);
        if nodes < 1.0 || requests < 1.0 || get("connects")? < 1.0 {
            return Err(format!("fleet point {i}: empty load point"));
        }
        if get("routed")? < requests {
            return Err(format!(
                "fleet point {i} ({policy}): fewer dispatches than requests"
            ));
        }
        let per_node = match p.get("per_node_hits") {
            Some(Json::Array(items)) => items,
            other => return Err(format!("fleet point {i}: bad 'per_node_hits': {other:?}")),
        };
        if per_node.len() as f64 != nodes {
            return Err(format!(
                "fleet point {i}: {} per-node hit entries for {nodes} nodes",
                per_node.len()
            ));
        }
        let mut summed = 0.0;
        for h in per_node {
            let v = h.as_number().ok_or_else(|| format!("fleet point {i}: bad per-node hit"))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("fleet point {i}: bad per-node hit count {v}"));
            }
            summed += v;
        }
        let (hits, misses) = (get("cache_hits")?, get("cache_misses")?);
        if summed != hits {
            return Err(format!(
                "fleet point {i} ({policy}): per-node hits sum to {summed}, not {hits}"
            ));
        }
        let hit_rate = get("hit_rate")?;
        let expected =
            if hits + misses > 0.0 { 100.0 * hits / (hits + misses) } else { 0.0 };
        if (hit_rate - expected).abs() > 0.01 {
            return Err(format!(
                "fleet point {i} ({policy}): hit rate {hit_rate} inconsistent with \
                 counters ({expected:.3})"
            ));
        }
        let (p50, p95, p99) = (get("p50_ms")?, get("p95_ms")?, get("p99_ms")?);
        if !(p50 > 0.0 && p95 >= p50 && p99 >= p95 && p99.is_finite()) {
            return Err(format!(
                "fleet point {i} ({policy}): bad quantiles p50={p50} p95={p95} p99={p99}"
            ));
        }
        if get("throughput_rps")? <= 0.0 {
            return Err(format!("fleet point {i} ({policy}): non-positive throughput"));
        }
        grid.push((nodes, policy, hit_rate));
    }

    let max_nodes = grid.iter().map(|r| r.0).fold(0.0, f64::max);
    if headline_nodes != max_nodes {
        return Err(format!(
            "fleet: headline names {headline_nodes} nodes but the grid tops out at {max_nodes}"
        ));
    }
    let rate_of = |nodes: f64, policy: &str| {
        grid.iter()
            .find(|(n, p, _)| *n == nodes && p == policy)
            .map(|&(_, _, rate)| rate)
            .ok_or_else(|| format!("fleet: grid lacks the {policy} point at {nodes} nodes"))
    };
    let top_affinity = rate_of(max_nodes, "affinity")?;
    if (top_affinity - headline_hit).abs() > 0.01 {
        return Err(format!(
            "fleet: headline hit rate {headline_hit} does not restate the top affinity \
             point ({top_affinity})"
        ));
    }
    let mut node_counts: Vec<f64> = grid.iter().map(|r| r.0).collect();
    node_counts.sort_by(f64::total_cmp);
    node_counts.dedup();
    for &nodes in &node_counts {
        let affinity = rate_of(nodes, "affinity")?;
        let round_robin = rate_of(nodes, "round-robin")?;
        if nodes >= 2.0 && affinity <= round_robin {
            return Err(format!(
                "fleet: at {nodes} nodes the affinity hit rate {affinity} does not beat \
                 round-robin {round_robin} — prefix routing bought nothing"
            ));
        }
    }
    if !smoke {
        let single = rate_of(1.0, "affinity")
            .map_err(|_| "fleet: full report lacks the single-node baseline".to_string())?;
        if max_nodes < 4.0 {
            return Err(format!(
                "fleet: full report tops out at {max_nodes} nodes (needs ≥ 4)"
            ));
        }
        if top_affinity < single - 5.0 {
            return Err(format!(
                "fleet: affinity hit rate {top_affinity} at {max_nodes} nodes is more than \
                 5 points below single-node ({single}) — locality lost under scale-out"
            ));
        }
    }
    Ok(())
}

/// Validates the v9 `detect` section: the ROC table must cover the
/// **complete** 15-entry fault catalog (distinct names pinned cell by
/// cell), every rate must be a probability, per setup the fused
/// detector's catalog-wide catch rate must be at least each single
/// channel's (the detectors share one calibration, so the comparison is
/// at equal nominal FPR), and the headline worst-case fields must
/// restate the table. Full (non-smoke) reports must additionally sweep
/// the NoiseEmitter jamming axis (at least one setup with a nonzero
/// amplitude) and more than one capture quality.
fn validate_detect_section(detect: &Json, smoke: bool) -> Result<(), String> {
    let get = |field: &str| {
        detect
            .get(field)
            .and_then(Json::as_number)
            .ok_or_else(|| format!("detect: missing numeric '{field}'"))
    };
    let min_catch = get("min_fused_catch")?;
    let max_fpr = get("max_fused_fpr")?;
    for (name, v) in [("min_fused_catch", min_catch), ("max_fused_fpr", max_fpr)] {
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("detect: '{name}' {v} is not a probability"));
        }
    }
    if get("wall_ms")? <= 0.0 {
        return Err("detect: non-positive sweep wall clock".to_string());
    }
    let table = detect.get("table").ok_or("detect: missing 'table'")?;
    let faults_covered = table
        .get("faults_covered")
        .and_then(Json::as_number)
        .ok_or("detect: missing 'faults_covered'")?;
    if faults_covered != 15.0 {
        return Err(format!(
            "detect: table covers {faults_covered} fault-catalog entries, not the full 15"
        ));
    }
    let cells = match table.get("cells") {
        Some(Json::Array(items)) if !items.is_empty() => items,
        other => return Err(format!("detect: missing or empty 'cells' array: {other:?}")),
    };
    let mut fault_names: Vec<String> = Vec::new();
    for (i, c) in cells.iter().enumerate() {
        match c.get("fault") {
            Some(Json::String(s)) if !s.is_empty() => {
                if !fault_names.contains(s) {
                    fault_names.push(s.clone());
                }
            }
            other => return Err(format!("detect cell {i}: bad 'fault' name: {other:?}")),
        }
        for field in ["audio_catch", "power_catch", "fused_catch"] {
            let v = c
                .get(field)
                .and_then(Json::as_number)
                .ok_or_else(|| format!("detect cell {i}: missing numeric '{field}'"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("detect cell {i}: '{field}' {v} is not a probability"));
            }
        }
    }
    if fault_names.len() as f64 != faults_covered {
        return Err(format!(
            "detect: cells name {} distinct faults but the table claims {faults_covered}",
            fault_names.len()
        ));
    }
    let setups = match table.get("setups") {
        Some(Json::Array(items)) if !items.is_empty() => items,
        other => return Err(format!("detect: missing or empty 'setups' array: {other:?}")),
    };
    let (mut worst_catch, mut worst_fpr) = (f64::INFINITY, 0.0f64);
    let (mut any_jam, mut qualities) = (false, Vec::new());
    for (i, s) in setups.iter().enumerate() {
        match s.get("quality") {
            Some(Json::String(q)) if !q.is_empty() => {
                if !qualities.contains(q) {
                    qualities.push(q.clone());
                }
            }
            other => return Err(format!("detect setup {i}: bad 'quality': {other:?}")),
        }
        let get = |field: &str| {
            s.get(field)
                .and_then(Json::as_number)
                .ok_or_else(|| format!("detect setup {i}: missing numeric '{field}'"))
        };
        let jam = get("jam_amplitude")?;
        if !(jam.is_finite() && jam >= 0.0) {
            return Err(format!("detect setup {i}: bad jam amplitude {jam}"));
        }
        any_jam |= jam > 0.0;
        for field in
            ["audio_fpr", "power_fpr", "fused_fpr", "audio_catch", "power_catch", "fused_catch"]
        {
            let v = get(field)?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("detect setup {i}: '{field}' {v} is not a probability"));
            }
        }
        let fused = get("fused_catch")?;
        let single = get("audio_catch")?.max(get("power_catch")?);
        if fused + 1e-9 < single {
            return Err(format!(
                "detect setup {i}: fused catch {fused} below a single channel's {single} — \
                 fusion bought nothing"
            ));
        }
        worst_catch = worst_catch.min(fused);
        worst_fpr = worst_fpr.max(get("fused_fpr")?);
    }
    if (worst_catch - min_catch).abs() > 0.01 {
        return Err(format!(
            "detect: headline min_fused_catch {min_catch} does not restate the table's \
             worst setup ({worst_catch})"
        ));
    }
    if (worst_fpr - max_fpr).abs() > 0.01 {
        return Err(format!(
            "detect: headline max_fused_fpr {max_fpr} does not restate the table's worst \
             setup ({worst_fpr})"
        ));
    }
    if !smoke {
        if !any_jam {
            return Err("detect: full report never swept the jamming countermeasure".to_string());
        }
        if qualities.len() < 2 {
            return Err("detect: full report swept only one capture quality".to_string());
        }
    }
    Ok(())
}

/// Extracts one numeric field from the report's headline `detect`
/// object (for the `--detect-min-catch` / `--detect-max-fpr` absolute
/// gates layered on top of [`validate_report_json`]'s structural
/// checks). Errors when the report carries no detect section at all.
pub fn report_detect_number(text: &str, field: &str) -> Result<f64, String> {
    let doc = parse_json(text)?;
    let detect = match doc.get("detect") {
        Some(d @ Json::Object(_)) => d,
        _ => return Err("no detect section in the report".to_string()),
    };
    detect
        .get(field)
        .and_then(Json::as_number)
        .ok_or_else(|| format!("detect: missing numeric '{field}'"))
}

/// Extracts one kernel row's `optimized_ms` from a `BENCH_*.json` document
/// (for absolute wall-clock budget gates on top of [`validate_report_json`]'s
/// relative speedup checks).
pub fn report_kernel_optimized_ms(text: &str, kernel: &str) -> Result<f64, String> {
    let doc = parse_json(text)?;
    let kernels = match doc.get("kernels") {
        Some(Json::Array(items)) => items,
        _ => return Err("missing 'kernels' array".to_string()),
    };
    for k in kernels {
        if matches!(k.get("name"), Some(Json::String(s)) if s == kernel) {
            return k
                .get("optimized_ms")
                .and_then(Json::as_number)
                .ok_or_else(|| format!("kernel '{kernel}': missing numeric 'optimized_ms'"));
        }
    }
    Err(format!("no '{kernel}' kernel row in the report"))
}

/// Whether a `BENCH_*.json` document carries a daemon (`serve`) result:
/// `false` for an explicit `null`, `true` for an object, an error when
/// the mandatory field is missing entirely.
pub fn report_has_serve(text: &str) -> Result<bool, String> {
    let doc = parse_json(text)?;
    match doc.get("serve") {
        Some(Json::Null) => Ok(false),
        Some(Json::Object(_)) => Ok(true),
        Some(other) => Err(format!("bad 'serve' field: {other:?}")),
        None => Err("missing 'serve' field".to_string()),
    }
}

/// Extracts one numeric field from the report's headline `serve` object
/// (for the `--serve-p99-ms` / `--serve-min-rps` absolute gates layered
/// on top of [`validate_report_json`]'s structural checks). Errors when
/// the report carries no serve section at all.
pub fn report_serve_number(text: &str, field: &str) -> Result<f64, String> {
    let doc = parse_json(text)?;
    let serve = match doc.get("serve") {
        Some(s @ Json::Object(_)) => s,
        _ => return Err("no serve section in the report".to_string()),
    };
    serve
        .get(field)
        .and_then(Json::as_number)
        .ok_or_else(|| format!("serve: missing numeric '{field}'"))
}

/// Extracts one numeric field from the report's headline `fleet` object
/// (for the `--fleet-min-hit-rate` / `--fleet-min-rps` absolute gates
/// layered on top of [`validate_report_json`]'s structural checks).
/// Errors when the report carries no fleet section at all.
pub fn report_fleet_number(text: &str, field: &str) -> Result<f64, String> {
    let doc = parse_json(text)?;
    let fleet = match doc.get("fleet") {
        Some(f @ Json::Object(_)) => f,
        _ => return Err("no fleet section in the report".to_string()),
    };
    fleet
        .get(field)
        .and_then(Json::as_number)
        .ok_or_else(|| format!("fleet: missing numeric '{field}'"))
}

// --- Workloads ---------------------------------------------------------

/// Best-of-`iters` wall clock of `f`, in milliseconds, plus the last result.
fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("at least one iteration"))
}

/// The shared benchmark workload: the spline-split tensile bar pushed far
/// enough through the chain that the printing and FEA kernels get real
/// input. The bar stands on edge (x-z, the paper's counterfeit-revealing
/// orientation) so the build is ~360 layers tall at the FDM layer height
/// instead of the ~18 the flat bar produces; slicing gets its own heavier
/// mesh (see [`Workload::slice_mesh`]).
struct Workload {
    /// Slicing-only mesh: the sphere-cavity prism at `Custom` resolution
    /// (~16× the bar's triangle count), where the z-interval sweep's
    /// asymptotic edge over the per-layer scan is visible. The bar mesh
    /// stays the workload for the rest of the chain so the printing and
    /// FEA benches exercise the paper's tensile specimen.
    slice_mesh: Vec<am_mesh::TriMesh>,
    layer_height: f64,
    toolpath: ToolPath,
    profile: PrinterProfile,
    to_build: Transform3,
    printed: PrintedPart,
}

fn build_workload(smoke: bool) -> Workload {
    let resolution = if smoke { Resolution::Coarse } else { Resolution::Custom };
    let plan = ProcessPlan::fdm(resolution, Orientation::Xz);
    let part = tensile_bar_with_spline(&TensileBarDims::default())
        .expect("standard bar")
        .resolve()
        .expect("resolve");
    let shells = tessellate_shells(&part, &resolution.params());
    let bed_margin = Transform3::translation(Vec3::new(5.0, 5.0, 0.0));
    let oriented: Vec<am_mesh::TriMesh> = orient_shells(&shells, Orientation::Xz)
        .iter()
        .map(|m| m.transformed(&bed_margin))
        .collect();
    let to_build = build_transform(&shells, Orientation::Xz).then(&bed_margin);
    let sliced = try_slice_shells_with(&oriented, plan.slicer.layer_height, Parallelism::serial())
        .expect("slice");
    let toolpath = generate_toolpath(&sliced, &plan.slicer);
    let printed =
        PrintedPart::try_from_toolpath(&toolpath, &plan.printer, to_build, plan.seed)
            .expect("print");
    let slice_mesh = if smoke {
        oriented.clone()
    } else {
        let prism = prism_with_sphere(
            &PrismDims::default(),
            BodyKind::Solid,
            MaterialRemoval::Without,
        )
        .expect("prism")
        .resolve()
        .expect("resolve prism");
        tessellate_shells(&prism, &resolution.params())
    };
    Workload {
        slice_mesh,
        layer_height: plan.slicer.layer_height,
        toolpath,
        profile: plan.printer,
        to_build,
        printed,
    }
}

fn tensile_config(smoke: bool) -> TensileConfig {
    let base = TensileConfig::fdm(Orientation::Xz);
    if smoke {
        TensileConfig { node_spacing: 1.0, strain_step: 0.004, max_strain: 0.048, ..base }
    } else {
        TensileConfig { max_strain: 0.06, ..base }
    }
}

fn bench_slicing(w: &Workload, config: &BenchConfig) -> KernelResult {
    let iters = if config.smoke { 1 } else { 3 };
    let (baseline_ms, scan) =
        time_best(iters, || slice_shells_scan(&w.slice_mesh, w.layer_height).expect("scan"));
    let (optimized_ms, sweep) = time_best(iters, || {
        try_slice_shells_with(&w.slice_mesh, w.layer_height, Parallelism::threads(config.threads))
            .expect("sweep")
    });
    let equal: bool = { let a: &SlicedModel = &scan; a == &sweep };
    assert!(equal, "sweep slicer diverged from the scan baseline");
    KernelResult {
        name: "slicing".to_string(),
        baseline: "per-layer full-mesh scan (serial)".to_string(),
        optimized: format!("z-interval sweep, {} thread(s)", config.threads),
        threads: config.threads,
        baseline_ms,
        optimized_ms,
        inner_iters: 0,
        residual_evals: 0,
        spans_planned: 0,
        span_fill_voxels: 0,
    }
}

fn bench_printing(w: &Workload, config: &BenchConfig) -> KernelResult {
    // The deposition pass is only a few ms at the bench workload, so a
    // best-of-9 keeps scheduler noise out of the committed speedup.
    let iters = if config.smoke { 1 } else { 9 };
    let (baseline_ms, reference) = time_best(iters, || {
        PrintedPart::try_from_toolpath_reference(&w.toolpath, &w.profile, w.to_build, 7)
            .expect("print")
    });
    let before = stamp_counters();
    let (optimized_ms, planned) = time_best(iters, || {
        PrintedPart::try_from_toolpath_planned(
            &w.toolpath,
            &w.profile,
            w.to_build,
            7,
            Parallelism::threads(config.threads),
        )
        .expect("print")
    });
    // The span-plan work is deterministic per pass, so the average over
    // the timed iterations is the exact per-pass count.
    let after = stamp_counters();
    // Full-grid bit-identity against the oracle, not just a scalar check:
    // the digest folds dimensions, origin, every material and every body
    // id, so a single drifted voxel fails the bench.
    assert_eq!(
        reference.grid_digest(),
        planned.grid_digest(),
        "span-plan stamper diverged from the road-at-a-time oracle"
    );
    KernelResult {
        name: "printing".to_string(),
        baseline: "road-at-a-time whole-grid stamping (serial)".to_string(),
        optimized: format!(
            "scanline span-plan stamping (plan/execute), layer-chunked, {} thread(s)",
            config.threads
        ),
        threads: config.threads,
        baseline_ms,
        optimized_ms,
        inner_iters: 0,
        residual_evals: 0,
        spans_planned: (after.spans_planned - before.spans_planned) / iters as u64,
        span_fill_voxels: (after.span_fill_voxels - before.span_fill_voxels) / iters as u64,
    }
}

fn bench_fea(w: &Workload, config: &BenchConfig) -> KernelResult {
    let tc = TensileConfig { solver: config.solver, ..tensile_config(config.smoke) };
    let pristine = Lattice::from_printed(&w.printed, &tc, 7);
    // Seconds-long but convergence-sensitive: a single timing sample has
    // landed a committed speedup on the wrong side of 1.0x under scheduler
    // noise, so take best-of-3 like the other kernels.
    let iters = if config.smoke { 1 } else { 3 };
    let (baseline_ms, reference) = time_best(iters, || {
        let mut lattice = pristine.clone();
        run_tensile_test_reference(&mut lattice, &tc)
    });
    let before = solver_counters();
    let (optimized_ms, optimized) = time_best(iters, || {
        let mut lattice = pristine.clone();
        run_tensile_test_with(&mut lattice, &tc, Parallelism::threads(config.threads))
    });
    // The solver work is deterministic per pass, so the average over the
    // timed iterations is the exact per-pass count.
    let work = solver_counters().since(&before);
    // The solvers share the constitutive law and convergence tolerance but
    // relax along different pseudo-dynamic paths, so they agree to solver
    // tolerance — not bit-for-bit (the fea crate's
    // `optimized_kernel_tracks_reference` test pins pre-peak drift at
    // ≤ 3e-3). UTS itself sits at the onset of the bond-breaking cascade,
    // where a tolerance-level difference can shift one break by one strain
    // step, so the sanity bound here is looser.
    assert_eq!(reference.ruptured, optimized.ruptured, "FEA kernels disagree on rupture");
    assert!(
        (reference.uts_mpa - optimized.uts_mpa).abs() <= 0.05 * (1.0 + reference.uts_mpa.abs()),
        "FEA kernels diverged: UTS {} vs {}",
        reference.uts_mpa,
        optimized.uts_mpa
    );
    KernelResult {
        name: "fea".to_string(),
        baseline: "unit-mass AoS relaxation (serial)".to_string(),
        optimized: match config.solver {
            FeaSolver::NewtonPcg => format!(
                "matrix-free Newton-PCG, pooled scratch, {} thread(s)",
                config.threads
            ),
            FeaSolver::Relaxation => format!(
                "mass-scaled, warm-started SoA relaxation, {} thread(s)",
                config.threads
            ),
        },
        threads: config.threads,
        baseline_ms,
        optimized_ms,
        inner_iters: work.inner_iters() / iters as u64,
        residual_evals: work.force_evals / iters as u64,
        spans_planned: 0,
        span_fill_voxels: 0,
    }
}

/// Runs the experiment suite and returns total rendered length (a cheap
/// way to keep every section's work observable).
fn run_suite(smoke: bool, replicates: usize) -> usize {
    use crate::experiments as ex;
    if smoke {
        return ex::fig3_stages().len();
    }
    type Section = (&'static str, Box<dyn Fn() -> String>);
    let timed: Vec<Section> = vec![
        ("table1", Box::new(ex::table1_risks)),
        ("fig3", Box::new(ex::fig3_stages)),
        ("fig4", Box::new(ex::fig4_gaps)),
        ("fig5", Box::new(ex::fig5_resolution)),
        ("fig7", Box::new(ex::fig7_slicing)),
        ("fig8", Box::new(ex::fig8_surface)),
        ("table2", Box::new(move || ex::table2_tensile(replicates))),
        ("fig9", Box::new(ex::fig9_fracture)),
        ("table3", Box::new(ex::table3_printing)),
        ("sidechannel", Box::new(ex::sidechannel_recon)),
        ("keyspace", Box::new(ex::ablation_keyspace)),
        ("multikey", Box::new(ex::ablation_multikey)),
        ("sparse", Box::new(ex::ablation_sparse_infill)),
        ("repair", Box::new(ex::ablation_repair)),
        ("auth", Box::new(ex::authentication_demo)),
    ];
    let mut total = 0usize;
    for (name, f) in &timed {
        let t = Instant::now();
        total += f().len();
        eprintln!("  section {name}: {:.0} ms", t.elapsed().as_secs_f64()*1e3);
    }
    total
}

/// Folds the observables that matter (weights, scan volumes, tool-path
/// lengths, UTS) into an order-sensitive digest, cheaply — full bit-identity
/// between the sweep engine and cold runs is pinned by the committed
/// `batch_determinism` test; the bench only cross-checks without paying
/// for a full `Debug` rendering inside the timed region.
fn digest_output(digest: &mut u64, result: &Result<PipelineOutput, PipelineError>) {
    let mut fold = |bits: u64| *digest = digest.rotate_left(7) ^ bits;
    match result {
        Ok(o) => {
            fold(o.printed.weight_g().to_bits());
            fold(o.scan.internal_void_volume.to_bits());
            fold(o.scan.cold_joint_area.to_bits());
            fold(o.mesh_triangles as u64);
            fold(o.toolpath.model_mm.to_bits());
            if let Some(t) = &o.tensile {
                fold(t.uts_mpa.to_bits());
            }
        }
        Err(_) => fold(0xdead),
    }
}

/// The PR 3 headline benchmark: the full 24-point [`ProcessKey::key_space`]
/// swept with seed replicates — cold per-key [`run_pipeline`] calls vs the
/// shared-prefix batch engine over one [`StageCache`]. On a single-core
/// box the win is purely algorithmic: each unique mesh prefix is computed
/// once instead of `2 orientations × replicates` times, and each
/// slice/tool-path prefix once instead of `replicates` times.
fn bench_sweep(config: &BenchConfig) -> (KernelResult, CacheStats) {
    // The sweep specimen: a sphere prism small enough that 24 keys ×
    // replicates cold runs stay in bench budget. The layer height stays
    // moderate in both modes: the print stage absorbs the per-plan seed so
    // it never dedupes, and its cost grows ~1/layer³ — a finer layer would
    // only dilute the shared-prefix win with unshareable work. The full
    // run instead adds seed replicates, which multiplies exactly the runs
    // whose mesh/slice/tool-path prefixes the cache elides.
    let layer = 0.7;
    let replicates: u64 = if config.smoke { 2 } else { 4 };
    let dims = PrismDims { size: Point3::new(18.0, 9.0, 9.0), sphere_radius: 3.0 };
    let mut base = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy);
    base.slicer = SlicerConfig {
        layer_height: layer,
        road_width: layer,
        analysis_cell: layer / 2.0,
        ..SlicerConfig::default()
    };
    let keys = ProcessKey::key_space();
    let part_for = |recipe: CadRecipe| prism_with_sphere(&dims, recipe.body, recipe.removal);

    // Baseline: every (replicate, key) pair runs the pipeline cold.
    let (baseline_ms, cold_digest) = time_best(1, || {
        let mut digest = 0u64;
        for r in 0..replicates {
            let seeded = base.clone().with_seed(100 + r);
            for key in &keys {
                let part = part_for(key.recipe).expect("sweep part");
                let plan = ProcessPlan {
                    resolution: key.resolution,
                    orientation: key.orientation,
                    ..seeded.clone()
                };
                digest_output(&mut digest, &run_pipeline(&part, &plan));
            }
        }
        digest
    });

    // Optimized: the same (replicate, key) grid through `sweep_key_space`,
    // all replicates sharing one cache — exactly how a parameter study
    // would run it.
    let cache = StageCache::default();
    let (optimized_ms, swept_digest) = time_best(1, || {
        cache.clear();
        let mut digest = 0u64;
        for r in 0..replicates {
            let seeded = base.clone().with_seed(100 + r);
            let swept = sweep_key_space(
                part_for,
                &seeded,
                &keys,
                &cache,
                Parallelism::threads(config.threads),
            );
            for (_, result) in &swept {
                digest_output(&mut digest, result);
            }
        }
        digest
    });
    assert_eq!(cold_digest, swept_digest, "sweep engine diverged from cold per-key runs");

    let stats = cache.stats();
    let kernel = KernelResult {
        name: "sweep".to_string(),
        baseline: format!(
            "cold per-key run_pipeline, {} keys x {} seeds",
            keys.len(),
            replicates
        ),
        optimized: format!(
            "shared-prefix batch sweep over one StageCache, {} thread(s)",
            config.threads
        ),
        threads: config.threads,
        baseline_ms,
        optimized_ms,
        inner_iters: 0,
        residual_evals: 0,
        spans_planned: 0,
        span_fill_voxels: 0,
    };
    (kernel, stats)
}

fn bench_end_to_end(config: &BenchConfig) -> KernelResult {
    // Both timed runs start from an empty experiment cache: each side still
    // benefits from intra-suite prefix sharing (that is the PR 3 change to
    // the suite itself), but a warm cache from a previous run — or from the
    // other kernel mode's pass, whose mesh stage is mode-independent —
    // never flatters a timing.
    set_kernel_mode(KernelMode::Reference);
    let (baseline_ms, len_ref) = time_best(1, || {
        crate::experiments::experiment_cache().clear();
        run_suite(config.smoke, config.replicates)
    });
    set_kernel_mode(KernelMode::SpanPlan);
    let before = solver_counters();
    let (optimized_ms, len_opt) = time_best(1, || {
        crate::experiments::experiment_cache().clear();
        run_suite(config.smoke, config.replicates)
    });
    let work = solver_counters().since(&before);
    // Tensile numbers drift at solver tolerance between kernel modes (see
    // `bench_fea`), so rendered reports can differ by a few characters; a
    // large delta would mean an experiment took a different branch.
    let delta = len_ref.abs_diff(len_opt);
    assert!(
        delta * 100 <= len_ref,
        "experiment suite output differs between kernel modes: {len_ref} vs {len_opt} bytes"
    );
    let suite = if config.smoke { "fig3 stages only (smoke)" } else { "all 15 experiment sections" };
    KernelResult {
        name: "all_experiments".to_string(),
        baseline: format!("{suite}, reference kernels"),
        optimized: format!("{suite}, optimized kernels"),
        threads: 1,
        baseline_ms,
        optimized_ms,
        inner_iters: work.inner_iters(),
        residual_evals: work.force_evals,
        spans_planned: 0,
        span_fill_voxels: 0,
    }
}

/// Runs the whole benchmark suite and collects the report.
pub fn run_benchmarks(config: &BenchConfig) -> BenchReport {
    run_selected_benchmarks(config, None)
}

/// [`run_benchmarks`], restricted to the kernels whose names `filter`
/// selects (`None` runs everything).
pub fn run_selected_benchmarks(config: &BenchConfig, filter: Option<&str>) -> BenchReport {
    let wants = |name: &str| filter.is_none_or(|f| f == name);
    let mut kernels = Vec::new();
    if wants("slicing") || wants("printing") || wants("fea") {
        let workload = build_workload(config.smoke);
        if wants("slicing") {
            kernels.push(bench_slicing(&workload, config));
        }
        if wants("printing") {
            kernels.push(bench_printing(&workload, config));
        }
        if wants("fea") {
            kernels.push(bench_fea(&workload, config));
        }
    }
    let mut cache = CacheStats::default();
    if wants("sweep") {
        let (kernel, stats) = bench_sweep(config);
        kernels.push(kernel);
        cache = stats;
    }
    if wants("all_experiments") {
        kernels.push(bench_end_to_end(config));
    }
    let serve = if config.serve && wants("serve") { Some(bench_serve(config)) } else { None };
    let fleet = if config.serve && wants("fleet") { Some(bench_fleet(config)) } else { None };
    let detect = if wants("detect") { Some(bench_detect(config)) } else { None };
    BenchReport { config: *config, kernels, cache, serve, fleet, detect }
}

/// Detection ROC sweep (v9): runs the `am-detect` sweep — audio, power,
/// and fused detectors × the **full 15-entry fault catalog** × capture
/// qualities × NoiseEmitter jamming amplitudes — over the default prism
/// workload, and commits the whole table plus the headline worst-case
/// fused catch rate / false-positive rate into the report's `detect`
/// section. Smoke mode shrinks the grid to one unjammed smartphone
/// setup ([`RocConfig::smoke`]); the full run sweeps lab, smartphone,
/// and room-mic captures with and without jamming.
fn bench_detect(config: &BenchConfig) -> DetectBenchResult {
    let part = prism_with_sphere(&PrismDims::default(), BodyKind::Solid, MaterialRemoval::Without)
        .expect("detect bench: default prism workload");
    let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
    let roc = if config.smoke { RocConfig::smoke() } else { RocConfig::default() };
    let cache = StageCache::with_budget(StageCache::DEFAULT_BUDGET);
    let start = Instant::now();
    let table = run_roc_sweep(&part, &plan, &roc, &cache, Deadline::none())
        .expect("detect bench: ROC sweep over the default workload");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let min_fused_catch =
        table.setups.iter().map(|s| s.fused_catch).fold(f64::INFINITY, f64::min);
    let max_fused_fpr = table.setups.iter().map(|s| s.fused_fpr).fold(0.0, f64::max);
    DetectBenchResult { min_fused_catch, max_fused_fpr, wall_ms, table }
}

/// Serving benchmark (v7): sweeps the daemon over the connection
/// backends and wire codecs — one daemon boot per backend, then a load
/// run per codec × concurrency point against it. Every response at
/// every point is byte-compared against the in-process reference run,
/// so a nonzero `mismatches` count anywhere means the wire (or a codec,
/// or a backend) broke the determinism contract. The headline quantiles
/// come from the reactor-backend binary-codec point at the sweep's top
/// concurrency; per-point rows land in `sweeps`.
fn bench_serve(config: &BenchConfig) -> ServeResult {
    use am_service::{Client, Codec, ConnBackend, Endpoint, JobSpec, RetryPolicy, Server, ServerConfig};

    // The reactor backend is epoll-only; off Linux the sweep degrades to
    // the thread backend (and full-report validation will flag the
    // missing comparison pair rather than silently passing).
    #[cfg(target_os = "linux")]
    const GRID: &[(ConnBackend, &[Codec])] = &[
        (ConnBackend::Threads, &[Codec::Json]),
        (ConnBackend::Reactor, &[Codec::Json, Codec::Binary]),
    ];
    #[cfg(not(target_os = "linux"))]
    const GRID: &[(ConnBackend, &[Codec])] = &[
        (ConnBackend::Threads, &[Codec::Json, Codec::Binary]),
    ];

    // Full mode drives the acceptance-level 1024-connection point; smoke
    // keeps the whole grid in CI-seconds territory.
    let concurrencies: &[usize] = if config.smoke { &[4, 16] } else { &[64, 1024] };
    let top = *concurrencies.last().expect("non-empty sweep");
    // Generous retry budget: a 1024-connection connect storm against a
    // default-backlog listener needs reconnect headroom, and on a
    // single-core box a request can legitimately sit behind every other
    // connection's work.
    let policy = RetryPolicy {
        attempts: 16,
        timeout: std::time::Duration::from_secs(120),
        base_backoff: std::time::Duration::from_millis(5),
        max_backoff: std::time::Duration::from_millis(100),
        ..RetryPolicy::default()
    };

    let jobs = vec![JobSpec::default()];
    let expected = am_service::expected_results_wire(&jobs)
        .expect("serve bench: in-process reference run");

    let mut sweeps = Vec::new();
    let mut headline = None;
    let mut warmup_total = 0u64;
    let (mut errors, mut dropped, mut mismatches) = (0u64, 0u64, 0u64);
    let (mut retries, mut connects) = (0u64, 0u64);
    let (mut cache_hits, mut spill_hits, mut respawns) = (0u64, 0u64, 0u64);
    let (mut frames_json, mut frames_binary) = (0u64, 0u64);
    let (mut binary_negotiated, mut backpressure_stalls) = (0u64, 0u64);

    for &(backend, codecs) in GRID {
        let server = Server::start(ServerConfig {
            workers: config.threads.clamp(2, 8),
            // Queue headroom for the top concurrency point: the sweep
            // measures transport latency, not admission-control churn.
            queue_capacity: (2 * top).max(64),
            backend,
            ..ServerConfig::default()
        })
        .expect("serve bench: daemon boots on loopback");
        let endpoint = Endpoint::Tcp(server.addr().to_string());

        for &codec in codecs {
            for &concurrency in concurrencies {
                // Untimed warmup round (v6): absorb cold-start costs —
                // lazy statics, first-touch page faults, the daemon's
                // initial stage-cache misses — before any latency is
                // recorded, so the quantiles reflect steady state.
                let warmup_requests = concurrency as u64;
                let warmup = am_service::run_load_with(
                    &endpoint, warmup_requests, concurrency, &jobs, Some(&expected), &policy, codec,
                );
                assert_eq!(warmup.errors, 0, "serve bench: warmup round hit errors");
                warmup_total += warmup_requests;

                // Enough requests per connection that the quantiles
                // reflect steady-state round trips rather than the
                // initial connect storm (every load run opens all its
                // connections up front; with too few samples the p99 is
                // just the storm's makespan).
                let total = (concurrency * if config.smoke { 2 } else { 8 }) as u64;
                let report = am_service::run_load_with(
                    &endpoint, total, concurrency, &jobs, Some(&expected), &policy, codec,
                );
                errors += report.errors;
                dropped += report.dropped_connections;
                mismatches += report.mismatches;
                retries += report.retries;
                connects += report.connects + warmup.connects;
                let point = ServeSweep {
                    backend: backend.name().to_string(),
                    codec: codec.name().to_string(),
                    concurrency,
                    requests: report.requests,
                    errors: report.errors,
                    dropped_connections: report.dropped_connections,
                    mismatches: report.mismatches,
                    connects: report.connects,
                    retries: report.retries,
                    p50_ms: report.quantile_ms(0.50),
                    p95_ms: report.quantile_ms(0.95),
                    p99_ms: report.quantile_ms(0.99),
                    throughput_rps: report.throughput_rps(),
                };
                // Headline: the binary point at top concurrency on the
                // grid's last (preferred) backend.
                if codec == Codec::Binary && concurrency == top {
                    headline = Some(point.clone());
                }
                sweeps.push(point);
            }
        }

        let mut client = Client::connect(&endpoint).expect("serve bench: stats connection");
        let stats = client.stats().ok();
        let counter = |path: &[&str]| {
            let mut node = stats.as_ref()?;
            for key in path {
                node = node.get(key)?;
            }
            node.as_u64()
        };
        cache_hits += counter(&["cache", "hits"]).unwrap_or(0);
        spill_hits += counter(&["cache", "spill_hits"]).unwrap_or(0);
        respawns += counter(&["service", "respawns"]).unwrap_or(0);
        frames_json += counter(&["service", "frames_json"]).unwrap_or(0);
        frames_binary += counter(&["service", "frames_binary"]).unwrap_or(0);
        binary_negotiated += counter(&["service", "binary_negotiated"]).unwrap_or(0);
        backpressure_stalls += counter(&["service", "backpressure_stalls"]).unwrap_or(0);
        let _ = client.shutdown();
        server.join();
    }

    let headline = headline.or_else(|| sweeps.last().cloned()).expect("non-empty sweep grid");
    ServeResult {
        backend: headline.backend.clone(),
        codec: headline.codec.clone(),
        requests: headline.requests,
        concurrency: headline.concurrency,
        errors,
        dropped_connections: dropped,
        mismatches,
        p50_ms: headline.p50_ms,
        p95_ms: headline.p95_ms,
        p99_ms: headline.p99_ms,
        throughput_rps: headline.throughput_rps,
        cache_hits,
        spill_hits,
        retries,
        respawns,
        warmup_requests: warmup_total,
        connects,
        frames_json,
        frames_binary,
        binary_negotiated,
        backpressure_stalls,
        sweeps,
    }
}

/// Routed-fleet benchmark (v8): sweeps the rendezvous router over node
/// counts × routing policies. Each grid point boots a fresh fleet of N
/// daemons plus a router in front, then drives a shared-prefix sweep —
/// four stage-key prefix families (part × orientation), each with a run
/// of seeds, prefix-major — through one serial connection, byte-verifying
/// every response against the in-process reference.
///
/// Concurrency is 1 on purpose: round-robin placement is then a pure
/// function of request order (the rotation counter advances once per
/// dispatch), so the hit-rate comparison is deterministic instead of
/// racing on dispatch interleaving. Prefix-major order makes round-robin
/// walk every family across every node in the grid, so it pays each
/// family's seed-independent prefix stages cold once per (family, node)
/// pair; affinity keys the whole family to one home and pays them once —
/// which is also why its hit rate matches single-node exactly.
fn bench_fleet(config: &BenchConfig) -> FleetResult {
    use am_router::{RoutePolicy, Router, RouterConfig};
    use am_service::{Codec, Endpoint, JobSpec, LoadRequest, RetryPolicy, Server, ServerConfig};

    let node_counts: &[usize] = if config.smoke { &[1, 2] } else { &[1, 2, 4] };
    let seeds: u64 = if config.smoke { 4 } else { 8 };
    let families: &[(&str, Orientation)] = &[
        ("prism", Orientation::Xy),
        ("prism", Orientation::Xz),
        ("bar", Orientation::Xy),
        ("bar", Orientation::Xz),
    ];

    let mut requests = Vec::new();
    for &(part, orientation) in families {
        for seed in 1..=seeds {
            let job = JobSpec {
                part: part.to_string(),
                orientation,
                seed,
                ..JobSpec::default()
            };
            let expected = am_service::expected_results_wire(std::slice::from_ref(&job))
                .expect("fleet bench: in-process reference run");
            requests.push(LoadRequest { jobs: vec![job], expected: Some(expected) });
        }
    }

    let retry = RetryPolicy {
        attempts: 4,
        timeout: std::time::Duration::from_secs(120),
        base_backoff: std::time::Duration::from_millis(5),
        max_backoff: std::time::Duration::from_millis(80),
        ..RetryPolicy::default()
    };

    let mut points = Vec::new();
    for &nodes in node_counts {
        for policy in [RoutePolicy::Affinity, RoutePolicy::RoundRobin] {
            let backends: Vec<Server> = (0..nodes)
                .map(|i| {
                    Server::start(ServerConfig {
                        workers: 2,
                        node: format!("bench-node{i}"),
                        ..ServerConfig::default()
                    })
                    .expect("fleet bench: backend boots on loopback")
                })
                .collect();
            let router = Router::start(RouterConfig {
                backends: backends
                    .iter()
                    .map(|b| Endpoint::Tcp(b.addr().to_string()))
                    .collect(),
                policy,
                retry,
                ..RouterConfig::default()
            })
            .expect("fleet bench: router boots on loopback");
            let endpoint = Endpoint::Tcp(router.addr().to_string());

            let report =
                am_service::run_load_mixed(&endpoint, &requests, 1, &retry, Codec::Binary);

            let caches: Vec<CacheStats> = backends.iter().map(|b| b.metrics().cache).collect();
            let hits: u64 = caches.iter().map(|c| c.hits).sum();
            let misses: u64 = caches.iter().map(|c| c.misses).sum();
            let lookups = hits + misses;
            points.push(FleetPoint {
                nodes,
                policy: policy.name().to_string(),
                requests: report.requests,
                errors: report.errors,
                dropped_connections: report.dropped_connections,
                mismatches: report.mismatches,
                retries: report.retries,
                connects: report.connects,
                routed: router.fleet().routed(),
                failovers: router.fleet().failovers(),
                cache_hits: hits,
                cache_misses: misses,
                hit_rate: if lookups > 0 { 100.0 * hits as f64 / lookups as f64 } else { 0.0 },
                per_node_hits: caches.iter().map(|c| c.hits).collect(),
                p50_ms: report.quantile_ms(0.50),
                p95_ms: report.quantile_ms(0.95),
                p99_ms: report.quantile_ms(0.99),
                throughput_rps: report.throughput_rps(),
            });

            router.begin_shutdown();
            router.join();
            for backend in backends {
                backend.begin_shutdown();
                backend.join();
            }
        }
    }

    let top = node_counts.last().copied().unwrap_or(1);
    let headline = points
        .iter()
        .find(|p| p.nodes == top && p.policy == "affinity")
        .cloned()
        .expect("fleet bench: affinity point at the top node count");
    FleetResult {
        nodes: headline.nodes,
        policy: headline.policy.clone(),
        concurrency: 1,
        prefixes: families.len() as u64,
        requests: headline.requests,
        hit_rate: headline.hit_rate,
        p50_ms: headline.p50_ms,
        p95_ms: headline.p95_ms,
        p99_ms: headline.p99_ms,
        throughput_rps: headline.throughput_rps,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            config: BenchConfig {
                smoke: true,
                threads: 4,
                replicates: 1,
                solver: FeaSolver::NewtonPcg,
                serve: false,
            },
            kernels: vec![KernelResult {
                name: "slicing".to_string(),
                baseline: "scan".to_string(),
                optimized: "sweep \"quoted\"".to_string(),
                threads: 4,
                baseline_ms: 120.0,
                optimized_ms: 30.0,
                inner_iters: 4321,
                residual_evals: 87,
                spans_planned: 14001,
                span_fill_voxels: 541536,
            }],
            cache: CacheStats { hits: 132, misses: 36, evictions: 2, ..CacheStats::default() },
            serve: None,
            fleet: None,
            detect: None,
        }
    }

    fn sweep_point(backend: &str, codec: &str, concurrency: usize, p99_ms: f64) -> ServeSweep {
        ServeSweep {
            backend: backend.to_string(),
            codec: codec.to_string(),
            concurrency,
            requests: (concurrency * 2) as u64,
            errors: 0,
            dropped_connections: 0,
            mismatches: 0,
            connects: concurrency as u64,
            retries: 0,
            p50_ms: p99_ms / 4.0,
            p95_ms: p99_ms / 2.0,
            p99_ms,
            throughput_rps: 250.0,
        }
    }

    fn served_report() -> BenchReport {
        BenchReport {
            serve: Some(ServeResult {
                backend: "reactor".to_string(),
                codec: "binary".to_string(),
                requests: 200,
                concurrency: 8,
                errors: 0,
                dropped_connections: 0,
                mismatches: 0,
                p50_ms: 12.5,
                p95_ms: 31.0,
                p99_ms: 44.0,
                throughput_rps: 312.5,
                cache_hits: 199,
                spill_hits: 3,
                retries: 2,
                respawns: 1,
                warmup_requests: 16,
                connects: 40,
                frames_json: 150,
                frames_binary: 64,
                binary_negotiated: 2,
                backpressure_stalls: 0,
                sweeps: vec![
                    sweep_point("threads", "json", 4, 9.0),
                    sweep_point("threads", "json", 16, 20.0),
                    sweep_point("reactor", "json", 16, 15.0),
                    sweep_point("reactor", "binary", 16, 11.0),
                ],
            }),
            ..sample_report()
        }
    }

    /// One fleet grid point with counters chosen so that `hit_rate`
    /// agrees with `cache_hits`/`cache_misses` and the per-node hits
    /// sum correctly: every point does 128 lookups.
    fn fleet_point(nodes: usize, policy: &str, hits: u64, per_node: Vec<u64>) -> FleetPoint {
        FleetPoint {
            nodes,
            policy: policy.to_string(),
            requests: 32,
            errors: 0,
            dropped_connections: 0,
            mismatches: 0,
            retries: 0,
            connects: 1,
            routed: 32,
            failovers: 0,
            cache_hits: hits,
            cache_misses: 128 - hits,
            hit_rate: 100.0 * hits as f64 / 128.0,
            per_node_hits: per_node,
            p50_ms: 8.0,
            p95_ms: 20.0,
            p99_ms: 30.0,
            throughput_rps: 120.0,
        }
    }

    fn fleet_report() -> BenchReport {
        let points = vec![
            fleet_point(1, "affinity", 56, vec![56]),
            fleet_point(1, "round-robin", 56, vec![56]),
            fleet_point(2, "affinity", 56, vec![28, 28]),
            fleet_point(2, "round-robin", 48, vec![24, 24]),
            fleet_point(4, "affinity", 56, vec![14, 14, 14, 14]),
            fleet_point(4, "round-robin", 32, vec![8, 8, 8, 8]),
        ];
        let headline = points[4].clone();
        BenchReport {
            fleet: Some(FleetResult {
                nodes: 4,
                policy: "affinity".to_string(),
                concurrency: 1,
                prefixes: 4,
                requests: headline.requests,
                hit_rate: headline.hit_rate,
                p50_ms: headline.p50_ms,
                p95_ms: headline.p95_ms,
                p99_ms: headline.p99_ms,
                throughput_rps: headline.throughput_rps,
                points,
            }),
            ..served_report()
        }
    }

    /// A detect section whose ROC table covers 15 synthetic catalog
    /// faults over two capture setups (one jammed, two qualities — the
    /// minimum a full-mode report needs), with the fused detector
    /// beating each single channel everywhere and headline fields that
    /// restate the table's worst setup.
    fn detect_report() -> BenchReport {
        use am_detect::{RocCell, RocSetup};
        let setups = vec![
            RocSetup {
                quality: "smartphone".to_string(),
                jam_amplitude: 0.0,
                audio_fpr: 0.05,
                power_fpr: 0.05,
                fused_fpr: 0.08,
                audio_catch: 0.8,
                power_catch: 0.7,
                fused_catch: 0.9,
            },
            RocSetup {
                quality: "lab".to_string(),
                jam_amplitude: 2.5,
                audio_fpr: 0.02,
                power_fpr: 0.04,
                fused_fpr: 0.05,
                audio_catch: 0.85,
                power_catch: 0.75,
                fused_catch: 0.92,
            },
        ];
        let mut cells = Vec::new();
        for s in &setups {
            for i in 0..15 {
                cells.push(RocCell {
                    fault: format!("fault-{i}"),
                    quality: s.quality.clone(),
                    jam_amplitude: s.jam_amplitude,
                    blocked: i == 3,
                    audio_catch: s.audio_catch,
                    power_catch: s.power_catch,
                    fused_catch: s.fused_catch,
                });
            }
        }
        BenchReport {
            detect: Some(DetectBenchResult {
                min_fused_catch: 0.9,
                max_fused_fpr: 0.08,
                wall_ms: 1234.5,
                table: RocTable { cells, setups, faults_covered: 15 },
            }),
            ..fleet_report()
        }
    }

    #[test]
    fn json_round_trips_through_validator() {
        let report = sample_report();
        let speedups = validate_report_json(&report.to_json()).expect("valid");
        assert_eq!(speedups.len(), 1);
        assert_eq!(speedups[0].0, "slicing");
        assert!((speedups[0].1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_report_json("not json").is_err());
        assert!(validate_report_json("{}").is_err());
        assert!(validate_report_json("{\"schema\": \"wrong\"}").is_err());
        // Tampered speedup: inconsistent with the stored timings.
        let tampered = sample_report().to_json().replace("\"speedup\": 4.000", "\"speedup\": 9.000");
        assert!(validate_report_json(&tampered).is_err());
        // Trailing garbage after a valid document.
        let garbage = format!("{} x", sample_report().to_json());
        assert!(validate_report_json(&garbage).is_err());
        // v2: a v1-style document without cache counters must be rejected.
        let v1 = sample_report().to_json().replace("  \"cache_hits\": 132,\n", "");
        assert!(validate_report_json(&v1).is_err());
        // v3: a v2-style document — no top-level solver, no per-kernel work
        // counters — must be rejected, as must an unknown solver name.
        let no_solver =
            sample_report().to_json().replace("  \"solver\": \"newton-pcg\",\n", "");
        assert!(validate_report_json(&no_solver).is_err());
        let bad_solver = sample_report().to_json().replace("newton-pcg", "gradient-descent");
        assert!(validate_report_json(&bad_solver).is_err());
        let no_iters =
            sample_report().to_json().replace("      \"inner_iters\": 4321,\n", "");
        assert!(validate_report_json(&no_iters).is_err());
        let frac_iters =
            sample_report().to_json().replace("\"residual_evals\": 87", "\"residual_evals\": 8.7");
        assert!(validate_report_json(&frac_iters).is_err());
        // v6: a v5-style document — no per-kernel span-plan counters —
        // must be rejected, as must fractional counts.
        let no_spans =
            sample_report().to_json().replace("      \"spans_planned\": 14001,\n", "");
        assert!(validate_report_json(&no_spans).is_err());
        let frac_spans = sample_report()
            .to_json()
            .replace("\"span_fill_voxels\": 541536", "\"span_fill_voxels\": 5.4");
        assert!(validate_report_json(&frac_spans).is_err());
        // Counters must be non-negative integers.
        let frac = sample_report().to_json().replace("\"evictions\": 2", "\"evictions\": 2.5");
        assert!(validate_report_json(&frac).is_err());
        let neg = sample_report().to_json().replace("\"evictions\": 2", "\"evictions\": -1");
        assert!(validate_report_json(&neg).is_err());
    }

    #[test]
    fn optimized_ms_lookup_finds_the_named_row() {
        let json = sample_report().to_json();
        let ms = report_kernel_optimized_ms(&json, "slicing").expect("present");
        assert!((ms - 30.0).abs() < 1e-9);
        assert!(report_kernel_optimized_ms(&json, "fea").is_err());
    }

    #[test]
    fn validator_enforces_the_serve_section() {
        // v4: the field itself is mandatory, even as an explicit null.
        let no_serve = sample_report().to_json().replace("  \"serve\": null,\n", "");
        assert!(validate_report_json(&no_serve).is_err());
        assert!(report_has_serve(&no_serve).is_err());
        assert!(!report_has_serve(&sample_report().to_json()).expect("valid"));

        // A clean served report validates and reports itself as served —
        // including nonzero v5 robustness counters (retries/respawns are
        // informational, not failures).
        let served = served_report().to_json();
        assert!(validate_report_json(&served).is_ok());
        assert!(report_has_serve(&served).expect("valid"));

        // v5: a v4-style served report without the robustness counters
        // is rejected, as are fractional ones.
        let v4 = served_report().to_json().replace("    \"spill_hits\": 3,\n", "");
        assert!(validate_report_json(&v4).is_err());
        let frac = served_report().to_json().replace("\"retries\": 2", "\"retries\": 2.5");
        assert!(validate_report_json(&frac).is_err());
        // v6: a served report must record its untimed warmup round.
        let v5 = served_report().to_json().replace("    \"warmup_requests\": 16,\n", "");
        assert!(validate_report_json(&v5).is_err());

        // A served report may stand alone, without kernel rows.
        let serve_only = BenchReport { kernels: Vec::new(), ..served_report() };
        assert!(validate_report_json(&serve_only.to_json()).is_ok());
        let empty_unserved = BenchReport { kernels: Vec::new(), ..sample_report() };
        assert!(validate_report_json(&empty_unserved.to_json()).is_err());

        // Dirty load runs are rejected: transport errors, dropped
        // connections, determinism mismatches, a cold cache, or a
        // zero-request run all invalidate the document.
        for (field, dirty) in [
            ("\"errors\": 0", "\"errors\": 3"),
            ("\"dropped_connections\": 0", "\"dropped_connections\": 1"),
            ("\"mismatches\": 0", "\"mismatches\": 2"),
            ("\"cache_hits\": 199", "\"cache_hits\": 0"),
            ("\"requests\": 200", "\"requests\": 0"),
        ] {
            let doc = served_report().to_json().replace(field, dirty);
            assert!(validate_report_json(&doc).is_err(), "accepted dirty serve: {dirty}");
        }
        // Non-monotone latency quantiles are impossible in a real run.
        let warped = served_report().to_json().replace("\"p95_ms\": 31.000", "\"p95_ms\": 3.000");
        assert!(validate_report_json(&warped).is_err());
    }

    #[test]
    fn validator_enforces_the_v7_serve_sweep_grid() {
        // v7: a v6-style served report — no backend/codec identity, no
        // codec counters, no sweep grid — is rejected.
        let no_backend =
            served_report().to_json().replace("    \"backend\": \"reactor\",\n", "");
        assert!(validate_report_json(&no_backend).is_err());
        let no_frames =
            served_report().to_json().replace("    \"frames_binary\": 64,\n", "");
        assert!(validate_report_json(&no_frames).is_err());
        let mut gridless = served_report();
        if let Some(s) = gridless.serve.as_mut() {
            s.sweeps.clear();
        }
        assert!(validate_report_json(&gridless.to_json()).is_err());

        // Binary sweep points must be backed by decoded binary frames on
        // negotiated connections.
        let unbacked = served_report()
            .to_json()
            .replace("\"frames_binary\": 64", "\"frames_binary\": 0");
        assert!(validate_report_json(&unbacked).is_err());

        // A sweep point reporting fewer connects than connections is
        // impossible (each worker holds at least one connection).
        let starved = served_report().to_json().replace("\"connects\": 16", "\"connects\": 7");
        assert!(validate_report_json(&starved).is_err());

        // Full (non-smoke) reports must carry the comparison pair at top
        // concurrency with the binary p99 strictly below threads+json.
        let mut full = served_report();
        full.config.smoke = false;
        assert!(validate_report_json(&full.to_json()).is_ok());
        let slow_binary =
            full.to_json().replace("\"p99_ms\": 11.000", "\"p99_ms\": 25.000");
        let err = validate_report_json(&slow_binary).expect_err("binary p99 above baseline");
        assert!(err.contains("not below"), "{err}");
        let mut missing_pair = full.clone();
        if let Some(s) = missing_pair.serve.as_mut() {
            s.sweeps.retain(|p| !(p.backend == "threads" && p.concurrency == 16));
        }
        assert!(validate_report_json(&missing_pair.to_json()).is_err());
        // Smoke reports keep the cleanliness checks but skip the strict
        // latency ordering (single-core noise).
        let smoke_slow = served_report()
            .to_json()
            .replace("\"p99_ms\": 11.000", "\"p99_ms\": 25.000");
        assert!(validate_report_json(&smoke_slow).is_ok());

        // The headline gate helper reads the committed numbers back.
        let json = served_report().to_json();
        let p99 = report_serve_number(&json, "p99_ms").expect("p99 present");
        assert!((p99 - 44.0).abs() < 1e-9);
        let rps = report_serve_number(&json, "throughput_rps").expect("rps present");
        assert!((rps - 312.5).abs() < 1e-9);
        assert!(report_serve_number(&sample_report().to_json(), "p99_ms").is_err());
    }

    #[test]
    fn validator_enforces_the_v8_fleet_grid() {
        // v8: the field itself is mandatory, even as an explicit null.
        let no_fleet = sample_report().to_json().replace("  \"fleet\": null,\n", "");
        assert!(validate_report_json(&no_fleet).is_err());
        assert!(validate_report_json(&sample_report().to_json()).is_ok());

        // A clean fleet grid validates, in smoke and full mode alike.
        let report = fleet_report();
        assert!(validate_report_json(&report.to_json()).is_ok());
        let mut full = fleet_report();
        full.config.smoke = false;
        assert!(validate_report_json(&full.to_json()).is_ok());

        // The affinity-beats-round-robin ordering is the headline claim:
        // a grid where round-robin matches affinity at N=4 is rejected.
        let mut tied = fleet_report();
        if let Some(f) = tied.fleet.as_mut() {
            f.points[5] = fleet_point(4, "round-robin", 56, vec![14, 14, 14, 14]);
        }
        let err = validate_report_json(&tied.to_json()).expect_err("tied hit rates");
        assert!(err.contains("does not beat"), "{err}");

        // Full mode additionally pins affinity to single-node locality:
        // a top affinity rate more than 5 points below N=1 is rejected,
        // as is a grid that never reaches 4 nodes or lacks the baseline.
        let mut lossy = fleet_report();
        lossy.config.smoke = false;
        if let Some(f) = lossy.fleet.as_mut() {
            f.points[4] = fleet_point(4, "affinity", 40, vec![10, 10, 10, 10]);
            f.hit_rate = f.points[4].hit_rate;
        }
        let err = validate_report_json(&lossy.to_json()).expect_err("locality lost");
        assert!(err.contains("below single-node"), "{err}");
        let mut shallow = fleet_report();
        shallow.config.smoke = false;
        if let Some(f) = shallow.fleet.as_mut() {
            f.points.truncate(4);
            f.nodes = 2;
            f.hit_rate = f.points[2].hit_rate;
        }
        assert!(validate_report_json(&shallow.to_json()).is_err());
        let mut baseless = fleet_report();
        baseless.config.smoke = false;
        if let Some(f) = baseless.fleet.as_mut() {
            f.points.remove(1);
            f.points.remove(0);
        }
        assert!(validate_report_json(&baseless.to_json()).is_err());

        // Every node count needs both policies, even in smoke mode.
        let mut unpaired = fleet_report();
        if let Some(f) = unpaired.fleet.as_mut() {
            f.points.remove(5);
        }
        assert!(validate_report_json(&unpaired.to_json()).is_err());

        // Dirty runs, inconsistent accounting and tampered rates are
        // rejected.
        for (clean, dirty) in [
            ("\"mismatches\": 0", "\"mismatches\": 2"),
            ("\"per_node_hits\": [8, 8, 8, 8]", "\"per_node_hits\": [8, 8, 8, 9]"),
            ("\"per_node_hits\": [8, 8, 8, 8]", "\"per_node_hits\": [8, 8, 16]"),
            ("\"hit_rate\": 25.000", "\"hit_rate\": 52.000"),
            ("\"routed\": 32", "\"routed\": 30"),
        ] {
            let doc = fleet_report().to_json().replace(clean, dirty);
            assert!(validate_report_json(&doc).is_err(), "accepted tampered fleet: {dirty}");
        }

        // The headline must restate the top affinity point.
        let inflated = fleet_report()
            .to_json()
            .replacen("\"hit_rate\": 43.750", "\"hit_rate\": 99.000", 1);
        let err = validate_report_json(&inflated).expect_err("inflated headline");
        assert!(err.contains("restate"), "{err}");

        // The gate helper reads the committed headline numbers back.
        let json = fleet_report().to_json();
        let rate = report_fleet_number(&json, "hit_rate").expect("hit rate present");
        assert!((rate - 43.75).abs() < 1e-9);
        let rps = report_fleet_number(&json, "throughput_rps").expect("rps present");
        assert!((rps - 120.0).abs() < 1e-9);
        assert!(report_fleet_number(&sample_report().to_json(), "hit_rate").is_err());

        // The human-readable render mentions the fleet grid.
        let text = fleet_report().render();
        assert!(text.contains("fleet (4 nodes, affinity routing)"), "{text}");
        assert!(text.contains("round-robin"), "{text}");
    }

    #[test]
    fn validator_enforces_the_v9_detect_section() {
        // v9: the field itself is mandatory, even as an explicit null.
        let no_detect = sample_report().to_json().replace("  \"detect\": null,\n", "");
        assert!(validate_report_json(&no_detect).is_err());
        assert!(validate_report_json(&sample_report().to_json()).is_ok());

        // A clean detect section validates, in smoke and full mode alike.
        let report = detect_report();
        assert!(validate_report_json(&report.to_json()).is_ok());
        let mut full = detect_report();
        full.config.smoke = false;
        assert!(validate_report_json(&full.to_json()).is_ok());

        // The ROC table must cover the complete 15-entry fault catalog.
        let mut partial = detect_report();
        if let Some(d) = partial.detect.as_mut() {
            d.table.cells.retain(|c| c.fault != "fault-7");
            d.table.faults_covered = 14;
        }
        let err = validate_report_json(&partial.to_json()).expect_err("14 faults");
        assert!(err.contains("full 15"), "{err}");
        // ...and the claimed coverage must agree with the named cells.
        let mut lying = detect_report();
        if let Some(d) = lying.detect.as_mut() {
            d.table.cells.retain(|c| c.fault != "fault-7");
        }
        assert!(validate_report_json(&lying.to_json()).is_err());

        // Per setup, the fused detector may never fall below the best
        // single channel — fusion that loses to a component is a bug.
        let mut useless = detect_report();
        if let Some(d) = useless.detect.as_mut() {
            d.table.setups[1].fused_catch = 0.5;
            d.min_fused_catch = 0.5;
        }
        let err = validate_report_json(&useless.to_json()).expect_err("fusion lost");
        assert!(err.contains("fusion bought nothing"), "{err}");

        // Rates must be probabilities and the headline must restate the
        // table's worst setup.
        let bad_rate =
            detect_report().to_json().replace("\"fused_fpr\":0.08", "\"fused_fpr\":1.4");
        assert!(validate_report_json(&bad_rate).is_err());
        let inflated = detect_report()
            .to_json()
            .replace("\"min_fused_catch\":0.9,", "\"min_fused_catch\":0.99,");
        let err = validate_report_json(&inflated).expect_err("inflated headline");
        assert!(err.contains("restate"), "{err}");

        // Full mode demands the jamming axis and a second quality;
        // smoke accepts the reduced grid.
        let mut unjammed = detect_report();
        for setup in &mut unjammed.detect.as_mut().expect("detect").table.setups {
            setup.jam_amplitude = 0.0;
        }
        for cell in &mut unjammed.detect.as_mut().expect("detect").table.cells {
            cell.jam_amplitude = 0.0;
        }
        assert!(validate_report_json(&unjammed.to_json()).is_ok());
        unjammed.config.smoke = false;
        let err = validate_report_json(&unjammed.to_json()).expect_err("no jam sweep");
        assert!(err.contains("jamming"), "{err}");

        // The gate helper reads the committed headline numbers back.
        let json = detect_report().to_json();
        let catch = report_detect_number(&json, "min_fused_catch").expect("catch present");
        assert!((catch - 0.9).abs() < 1e-9);
        let fpr = report_detect_number(&json, "max_fused_fpr").expect("fpr present");
        assert!((fpr - 0.08).abs() < 1e-9);
        assert!(report_detect_number(&sample_report().to_json(), "min_fused_catch").is_err());

        // The human-readable render summarizes the sweep.
        let text = detect_report().render();
        assert!(text.contains("detect (ROC sweep)"), "{text}");
        assert!(text.contains("smartphone"), "{text}");
    }

    #[test]
    fn render_mentions_every_kernel() {
        let text = sample_report().render();
        assert!(text.contains("slicing"));
        assert!(text.contains("speedup"));
        assert!(text.contains("stage cache"), "cache counters missing from render");
    }
}
