//! The feature history of a CAD part.

use std::fmt;

use am_geom::{CatmullRom, Point3};

use crate::{Profile, SolidShape};

/// Whether an embedded feature body is a **solid** or a **surface** body.
///
/// The paper's §3.2 experiment turns on this distinction: a solid and a
/// surface sphere look identical in both the CAD viewport and the exported
/// STL, yet (combined with the material-removal choice) print differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BodyKind {
    /// A solid body: encloses material.
    Solid,
    /// A surface body: infinitely thin shell, encloses nothing.
    Surface,
}

impl fmt::Display for BodyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyKind::Solid => write!(f, "solid"),
            BodyKind::Surface => write!(f, "surface"),
        }
    }
}

/// Whether the embedding operation first removed material (cut a cavity)
/// before placing the embedded body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaterialRemoval {
    /// A cavity of the feature's size is cut first, then the body placed in
    /// it.
    With,
    /// The body is embedded directly inside the solid, with no cut.
    Without,
}

impl fmt::Display for MaterialRemoval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaterialRemoval::With => write!(f, "with material removal"),
            MaterialRemoval::Without => write!(f, "without material removal"),
        }
    }
}

/// One step in a part's ordered feature history.
#[derive(Debug, Clone, PartialEq)]
pub enum Feature {
    /// The base solid every later feature modifies.
    Base(SolidShape),
    /// A spline split: a massless separation across the base extrusion
    /// (§3.1). The spline is drawn on the xy profile plane and swept through
    /// the full extrusion thickness.
    SplineSplit {
        /// The split curve; endpoints must lie on the profile boundary.
        spline: CatmullRom,
    },
    /// A sphere embedded inside the base solid (§3.2).
    EmbedSphere {
        /// Sphere centre.
        center: Point3,
        /// Sphere radius (mm).
        radius: f64,
        /// Solid or surface body.
        kind: BodyKind,
        /// Whether material was removed first.
        removal: MaterialRemoval,
    },
    /// A through-hole cut through the full height of the base extrusion —
    /// ordinary design geometry (bolt holes, lightening holes). The paper
    /// notes industrial parts are full of such features, which is exactly
    /// where ObfusCADe features hide best.
    CutHole {
        /// Hole cross-section in the xy plane (must lie inside the base
        /// profile).
        profile: Profile,
    },
}

impl Feature {
    /// A short human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            Feature::Base(SolidShape::Extrusion { .. }) => "base extrusion".to_string(),
            Feature::Base(SolidShape::Cuboid(_)) => "base cuboid".to_string(),
            Feature::Base(SolidShape::Sphere { .. }) => "base sphere".to_string(),
            Feature::SplineSplit { .. } => "spline split".to_string(),
            Feature::EmbedSphere { kind, removal, .. } => {
                format!("embedded {kind} sphere {removal}")
            }
            Feature::CutHole { .. } => "through hole".to_string(),
        }
    }

    /// `true` for features that ObfusCADe plants for protection (ordinary
    /// design geometry — the base and plain holes — is not).
    pub fn is_security_feature(&self) -> bool {
        !matches!(self, Feature::Base(_) | Feature::CutHole { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_geom::Point2;

    #[test]
    fn labels_are_descriptive() {
        let f = Feature::EmbedSphere {
            center: Point3::ZERO,
            radius: 1.0,
            kind: BodyKind::Surface,
            removal: MaterialRemoval::With,
        };
        assert_eq!(f.label(), "embedded surface sphere with material removal");
    }

    #[test]
    fn base_is_not_a_security_feature() {
        let base = Feature::Base(SolidShape::sphere(Point3::ZERO, 1.0).unwrap());
        assert!(!base.is_security_feature());
        let split = Feature::SplineSplit {
            spline: CatmullRom::new(vec![Point2::ZERO, Point2::new(1.0, 0.0)]).unwrap(),
        };
        assert!(split.is_security_feature());
    }

    #[test]
    fn display_of_enums() {
        assert_eq!(BodyKind::Solid.to_string(), "solid");
        assert_eq!(MaterialRemoval::Without.to_string(), "without material removal");
    }
}
