//! Parts: named feature histories, and their resolution into shells.

use am_geom::{Aabb3, SubdivisionParams, Tolerance, Vec3};

use crate::{
    split_profile, BodyKind, CadError, Feature, MaterialRemoval, ShellOrientation, SolidShape,
};

/// A CAD part: a name plus an ordered feature history, SolidWorks-style.
///
/// Build a part with [`Part::new`] and [`Part::add_feature`] (or the
/// convenience constructors in [`crate::parts`]), then [resolve](Part::resolve)
/// it into the [shells](Shell) the STL exporter tessellates.
///
/// # Examples
///
/// ```
/// use am_cad::{Part, Profile, SolidShape};
/// use am_geom::Point2;
///
/// let profile = Profile::rectangle(Point2::new(0.0, 0.0), Point2::new(25.4, 12.7))?;
/// let base = SolidShape::extrusion(profile, 0.0, 12.7)?;
/// let part = Part::new("prism").with_feature(am_cad::Feature::Base(base))?;
/// let resolved = part.resolve()?;
/// assert_eq!(resolved.shells().len(), 1);
/// # Ok::<(), am_cad::CadError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Part {
    name: String,
    features: Vec<Feature>,
}

impl Part {
    /// Creates an empty part with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Part { name: name.into(), features: Vec::new() }
    }

    /// The part name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered feature history.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Appends a feature, validating ordering rules.
    ///
    /// # Errors
    ///
    /// * [`CadError::BaseAlreadySet`] on a second base feature.
    /// * [`CadError::MissingBase`] if a non-base feature precedes the base.
    pub fn add_feature(&mut self, feature: Feature) -> Result<(), CadError> {
        match (&feature, self.features.first()) {
            (Feature::Base(_), Some(_)) => return Err(CadError::BaseAlreadySet),
            (Feature::Base(_), None) => {}
            (_, None) => return Err(CadError::MissingBase),
            _ => {}
        }
        self.features.push(feature);
        Ok(())
    }

    /// Builder-style [`add_feature`](Part::add_feature).
    ///
    /// # Errors
    ///
    /// Same as [`add_feature`](Part::add_feature).
    pub fn with_feature(mut self, feature: Feature) -> Result<Self, CadError> {
        self.add_feature(feature)?;
        Ok(self)
    }

    /// Number of security features (everything except the base).
    pub fn security_feature_count(&self) -> usize {
        self.features.iter().filter(|f| f.is_security_feature()).count()
    }

    /// Resolves the feature history into tessellation-ready [shells](Shell).
    ///
    /// This is where ObfusCADe's embedded-feature semantics live (see
    /// DESIGN.md §4 and the paper's Table 3):
    ///
    /// * A **spline split** replaces the base extrusion with two extrusions
    ///   whose shared boundary is the spline, traversed in opposite
    ///   directions.
    /// * An embedded sphere **without removal** exports one interior shell
    ///   oriented as a separation (inward) — the enclosed region reads as
    ///   outside the model.
    /// * **With removal**, the cavity cut exports an inward shell; a
    ///   re-embedded **solid** body adds an outward shell that cancels it,
    ///   while a **surface** body adds a second inward shell.
    ///
    /// # Errors
    ///
    /// Returns [`CadError::MissingBase`], [`CadError::SplitRequiresExtrusion`],
    /// [`CadError::FeatureOutsideBase`], or any profile-splitting error.
    pub fn resolve(&self) -> Result<ResolvedPart, CadError> {
        let tol = Tolerance::new(1e-6);
        let mut features = self.features.iter();
        let base = match features.next() {
            Some(Feature::Base(s)) => s.clone(),
            _ => return Err(CadError::MissingBase),
        };
        let coarse = SubdivisionParams::default();
        let base_bounds = base.aabb(&coarse);
        let mut body_shells: Vec<Shell> = vec![Shell {
            shape: base.clone(),
            orientation: ShellOrientation::Outward,
        }];
        let mut seams: Vec<am_geom::CatmullRom> = Vec::new();

        for feature in features {
            match feature {
                Feature::Base(_) => return Err(CadError::BaseAlreadySet),
                Feature::SplineSplit { spline } => {
                    // Find the (single) outward extrusion to split.
                    let idx = body_shells
                        .iter()
                        .position(|s| {
                            s.orientation == ShellOrientation::Outward
                                && matches!(s.shape, SolidShape::Extrusion { .. })
                        })
                        .ok_or(CadError::SplitRequiresExtrusion)?;
                    let (profile, z_min, z_max) = match &body_shells[idx].shape {
                        SolidShape::Extrusion { profile, z_min, z_max } => {
                            (profile.clone(), *z_min, *z_max)
                        }
                        _ => unreachable!("position() matched an extrusion"),
                    };
                    let (left, right) = split_profile(&profile, spline, tol)?;
                    body_shells.remove(idx);
                    body_shells.push(Shell {
                        shape: SolidShape::extrusion(left, z_min, z_max)?,
                        orientation: ShellOrientation::Outward,
                    });
                    body_shells.push(Shell {
                        shape: SolidShape::extrusion(right, z_min, z_max)?,
                        orientation: ShellOrientation::Outward,
                    });
                    seams.push(spline.clone());
                }
                Feature::CutHole { profile } => {
                    // Validate the hole sits inside the base footprint and
                    // cut it through the full base height as a cavity shell.
                    let (z_min, z_max) = match &base {
                        SolidShape::Extrusion { z_min, z_max, .. } => (*z_min, *z_max),
                        SolidShape::Cuboid(b) => (b.min.z, b.max.z),
                        SolidShape::Sphere { .. } => {
                            return Err(CadError::HoleRequiresPrismaticBase)
                        }
                    };
                    let hole_bounds = profile.aabb(&coarse);
                    let base2 = am_geom::Aabb2::new(
                        am_geom::Point2::new(base_bounds.min.x, base_bounds.min.y),
                        am_geom::Point2::new(base_bounds.max.x, base_bounds.max.y),
                    );
                    if !(base2.contains(hole_bounds.min) && base2.contains(hole_bounds.max)) {
                        return Err(CadError::FeatureOutsideBase);
                    }
                    body_shells.push(Shell {
                        shape: SolidShape::extrusion(profile.clone(), z_min, z_max)?,
                        orientation: ShellOrientation::Inward,
                    });
                }
                Feature::EmbedSphere { center, radius, kind, removal } => {
                    let sphere = SolidShape::sphere(*center, *radius)?;
                    let sphere_bounds = sphere.aabb(&coarse);
                    if !(base_bounds.contains(sphere_bounds.min)
                        && base_bounds.contains(sphere_bounds.max))
                    {
                        return Err(CadError::FeatureOutsideBase);
                    }
                    match removal {
                        MaterialRemoval::Without => {
                            // The embedded boundary exports as a separation
                            // surface regardless of body kind.
                            body_shells.push(Shell {
                                shape: sphere,
                                orientation: ShellOrientation::Inward,
                            });
                        }
                        MaterialRemoval::With => {
                            // Cavity cut…
                            body_shells.push(Shell {
                                shape: sphere.clone(),
                                orientation: ShellOrientation::Inward,
                            });
                            // …then the re-embedded body.
                            let orientation = match kind {
                                BodyKind::Solid => ShellOrientation::Outward,
                                BodyKind::Surface => ShellOrientation::Inward,
                            };
                            body_shells.push(Shell { shape: sphere, orientation });
                        }
                    }
                }
            }
        }

        Ok(ResolvedPart { name: self.name.clone(), shells: body_shells, seams })
    }
}

/// One tessellation-ready shell: a closed surface plus a normal orientation.
#[derive(Debug, Clone, PartialEq)]
pub struct Shell {
    /// The shell geometry.
    pub shape: SolidShape,
    /// Facet-normal orientation the tessellator must emit.
    pub orientation: ShellOrientation,
}

/// The result of resolving a [`Part`]'s feature history.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPart {
    name: String,
    shells: Vec<Shell>,
    seams: Vec<am_geom::CatmullRom>,
}

impl ResolvedPart {
    /// The part name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shells to tessellate.
    pub fn shells(&self) -> &[Shell] {
        &self.shells
    }

    /// Split seams planted in the part (one spline per spline-split
    /// feature) — used by downstream inspection and authentication.
    pub fn seams(&self) -> &[am_geom::CatmullRom] {
        &self.seams
    }

    /// Bounding box over all shells at the given resolution.
    pub fn aabb(&self, params: &SubdivisionParams) -> Option<Aabb3> {
        let mut it = self.shells.iter().map(|s| s.shape.aabb(params));
        let first = it.next()?;
        Some(it.fold(first, |acc, b| acc.union(&b)))
    }

    /// Net material volume: outward shells add, inward shells subtract,
    /// except that exactly-cancelling shell pairs contribute zero.
    pub fn net_volume(&self, params: &SubdivisionParams) -> f64 {
        self.shells
            .iter()
            .map(|s| s.orientation.winding_sign() as f64 * s.shape.volume(params))
            .sum::<f64>()
            .max(0.0)
    }

    /// Moves every shell by `offset` (placement on the build plate is done
    /// by the slicer; this helper exists for scene composition).
    pub fn translated(&self, offset: Vec3) -> ResolvedPart {
        let shells = self
            .shells
            .iter()
            .map(|s| Shell {
                shape: match &s.shape {
                    SolidShape::Extrusion { profile, z_min, z_max } => {
                        // Translating a profile solid in x/y would require
                        // rebuilding the profile; only z offsets are exact.
                        // For general offsets downstream code transforms the
                        // tessellated mesh instead, so restrict to z here.
                        assert!(
                            offset.x == 0.0 && offset.y == 0.0,
                            "extrusion shells only support z translation; transform the mesh instead"
                        );
                        SolidShape::Extrusion {
                            profile: profile.clone(),
                            z_min: z_min + offset.z,
                            z_max: z_max + offset.z,
                        }
                    }
                    SolidShape::Cuboid(b) => {
                        SolidShape::Cuboid(Aabb3::new(b.min + offset, b.max + offset))
                    }
                    SolidShape::Sphere { center, radius } => {
                        SolidShape::Sphere { center: *center + offset, radius: *radius }
                    }
                },
                orientation: s.orientation,
            })
            .collect();
        ResolvedPart { name: self.name.clone(), shells, seams: self.seams.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profile;
    use am_geom::{CatmullRom, Point2, Point3};

    fn base_extrusion() -> SolidShape {
        let profile = Profile::rectangle(Point2::new(0.0, 0.0), Point2::new(10.0, 4.0)).unwrap();
        SolidShape::extrusion(profile, 0.0, 3.0).unwrap()
    }

    fn base_cuboid() -> SolidShape {
        SolidShape::Cuboid(Aabb3::new(Point3::ZERO, Point3::new(25.4, 12.7, 12.7)))
    }

    #[test]
    fn feature_ordering_enforced() {
        let mut p = Part::new("t");
        let split = Feature::SplineSplit {
            spline: CatmullRom::new(vec![Point2::ZERO, Point2::new(1.0, 0.0)]).unwrap(),
        };
        assert_eq!(p.add_feature(split).unwrap_err(), CadError::MissingBase);
        p.add_feature(Feature::Base(base_extrusion())).unwrap();
        assert_eq!(
            p.add_feature(Feature::Base(base_extrusion())).unwrap_err(),
            CadError::BaseAlreadySet
        );
    }

    #[test]
    fn resolve_plain_base() {
        let p = Part::new("bar").with_feature(Feature::Base(base_extrusion())).unwrap();
        let r = p.resolve().unwrap();
        assert_eq!(r.shells().len(), 1);
        assert_eq!(r.shells()[0].orientation, ShellOrientation::Outward);
        assert!(r.seams().is_empty());
    }

    #[test]
    fn resolve_spline_split_gives_two_bodies() {
        let spline = CatmullRom::new(vec![
            Point2::new(3.0, 4.0),
            Point2::new(5.0, 2.0),
            Point2::new(7.0, 0.0),
        ])
        .unwrap();
        let p = Part::new("bar")
            .with_feature(Feature::Base(base_extrusion()))
            .unwrap()
            .with_feature(Feature::SplineSplit { spline })
            .unwrap();
        let r = p.resolve().unwrap();
        assert_eq!(r.shells().len(), 2);
        assert_eq!(r.seams().len(), 1);
        // Volume is conserved by the massless split.
        let params = SubdivisionParams::new(0.05, 0.005);
        assert!((r.net_volume(&params) - 120.0).abs() < 0.2);
    }

    #[test]
    fn embed_without_removal_gives_inward_shell() {
        for kind in [BodyKind::Solid, BodyKind::Surface] {
            let p = Part::new("prism")
                .with_feature(Feature::Base(base_cuboid()))
                .unwrap()
                .with_feature(Feature::EmbedSphere {
                    center: Point3::new(12.7, 6.35, 6.35),
                    radius: 3.175,
                    kind,
                    removal: MaterialRemoval::Without,
                })
                .unwrap();
            let r = p.resolve().unwrap();
            assert_eq!(r.shells().len(), 2);
            assert_eq!(r.shells()[1].orientation, ShellOrientation::Inward);
        }
    }

    #[test]
    fn embed_with_removal_orientation_depends_on_kind() {
        let resolve = |kind| {
            Part::new("prism")
                .with_feature(Feature::Base(base_cuboid()))
                .unwrap()
                .with_feature(Feature::EmbedSphere {
                    center: Point3::new(12.7, 6.35, 6.35),
                    radius: 3.175,
                    kind,
                    removal: MaterialRemoval::With,
                })
                .unwrap()
                .resolve()
                .unwrap()
        };
        let solid = resolve(BodyKind::Solid);
        assert_eq!(solid.shells().len(), 3);
        assert_eq!(solid.shells()[1].orientation, ShellOrientation::Inward);
        assert_eq!(solid.shells()[2].orientation, ShellOrientation::Outward);

        let surface = resolve(BodyKind::Surface);
        assert_eq!(surface.shells().len(), 3);
        assert_eq!(surface.shells()[2].orientation, ShellOrientation::Inward);
    }

    #[test]
    fn net_volume_reflects_winding() {
        // Without removal: sphere subtracts (reads as void).
        let p = Part::new("prism")
            .with_feature(Feature::Base(base_cuboid()))
            .unwrap()
            .with_feature(Feature::EmbedSphere {
                center: Point3::new(12.7, 6.35, 6.35),
                radius: 3.0,
                kind: BodyKind::Solid,
                removal: MaterialRemoval::Without,
            })
            .unwrap()
            .resolve()
            .unwrap();
        let params = SubdivisionParams::default();
        let prism_vol = 25.4 * 12.7 * 12.7;
        let sphere_vol = 4.0 / 3.0 * std::f64::consts::PI * 27.0;
        assert!((p.net_volume(&params) - (prism_vol - sphere_vol)).abs() < 1e-6);

        // With removal + solid: cancels, full prism volume.
        let q = Part::new("prism")
            .with_feature(Feature::Base(base_cuboid()))
            .unwrap()
            .with_feature(Feature::EmbedSphere {
                center: Point3::new(12.7, 6.35, 6.35),
                radius: 3.0,
                kind: BodyKind::Solid,
                removal: MaterialRemoval::With,
            })
            .unwrap()
            .resolve()
            .unwrap();
        assert!((q.net_volume(&params) - prism_vol).abs() < 1e-6);
    }

    #[test]
    fn feature_outside_base_rejected() {
        let err = Part::new("prism")
            .with_feature(Feature::Base(base_cuboid()))
            .unwrap()
            .with_feature(Feature::EmbedSphere {
                center: Point3::new(0.0, 0.0, 0.0),
                radius: 3.0,
                kind: BodyKind::Solid,
                removal: MaterialRemoval::Without,
            })
            .unwrap()
            .resolve()
            .unwrap_err();
        assert_eq!(err, CadError::FeatureOutsideBase);
    }

    #[test]
    fn split_on_cuboid_base_rejected() {
        let err = Part::new("prism")
            .with_feature(Feature::Base(base_cuboid()))
            .unwrap()
            .with_feature(Feature::SplineSplit {
                spline: CatmullRom::new(vec![Point2::ZERO, Point2::new(1.0, 0.0)]).unwrap(),
            })
            .unwrap()
            .resolve()
            .unwrap_err();
        assert_eq!(err, CadError::SplitRequiresExtrusion);
    }

    #[test]
    fn security_feature_count() {
        let p = Part::new("prism")
            .with_feature(Feature::Base(base_cuboid()))
            .unwrap()
            .with_feature(Feature::EmbedSphere {
                center: Point3::new(12.7, 6.35, 6.35),
                radius: 3.0,
                kind: BodyKind::Solid,
                removal: MaterialRemoval::Without,
            })
            .unwrap();
        assert_eq!(p.security_feature_count(), 1);
    }
}
