//! The spline-split operation (§3.1 of the paper).
//!
//! A spline split creates a **massless separation** inside a single solid:
//! two bodies that together occupy exactly the original volume, separated by
//! zero distance along the shared spline boundary. Each resulting body owns
//! the spline as one of its profile edges — traversed in *opposite
//! directions*, the way CAD kernels parameterize the two opposed face loops
//! of a split surface. Because STL tessellation walks each body's boundary
//! independently, the chord breakpoints along the spline disagree between
//! the two bodies, producing the tessellation-induced gaps of Fig. 4.

use am_geom::{CatmullRom, Point2, Tolerance};

use crate::{CadError, Profile, ProfileEdge};
use am_geom::Segment2;

/// Splits a straight-edged, counter-clockwise profile along `spline`.
///
/// The spline's endpoints must lie on the profile boundary (within `tol`).
/// Returns the two resulting profiles `(left, right)`:
///
/// * `left` — boundary from the spline's **end** point forward (CCW) to its
///   **start** point, closed by the spline traversed *forward*;
/// * `right` — boundary from the spline's start forward (CCW) to its end,
///   closed by the spline traversed *in reverse*.
///
/// Both outputs wind counter-clockwise and share the spline geometry
/// exactly; only the traversal direction differs.
///
/// # Errors
///
/// * [`CadError::CurvedEdgeUnsupported`] if the profile has spline edges.
/// * [`CadError::SplineEndpointOffBoundary`] if an endpoint misses the
///   boundary by more than `tol`.
/// * [`CadError::SplineEndpointsCoincide`] if both endpoints land on the
///   same boundary point.
///
/// # Examples
///
/// ```
/// use am_cad::{split_profile, Profile};
/// use am_geom::{CatmullRom, Point2, SubdivisionParams, Tolerance};
///
/// let bar = Profile::rectangle(Point2::new(0.0, 0.0), Point2::new(10.0, 4.0))?;
/// let spline = CatmullRom::new(vec![
///     Point2::new(3.0, 4.0),  // on the top edge
///     Point2::new(5.0, 2.0),
///     Point2::new(7.0, 0.0),  // on the bottom edge
/// ]).unwrap();
/// let (a, b) = split_profile(&bar, &spline, Tolerance::new(1e-6))?;
/// let params = SubdivisionParams::default();
/// let total = a.signed_area(&params) + b.signed_area(&params);
/// assert!((total - 40.0).abs() < 1e-6); // areas sum to the original
/// # Ok::<(), am_cad::CadError>(())
/// ```
pub fn split_profile(
    profile: &Profile,
    spline: &CatmullRom,
    tol: Tolerance,
) -> Result<(Profile, Profile), CadError> {
    // Collect the straight-edge vertex loop.
    let mut verts: Vec<Point2> = Vec::with_capacity(profile.edge_count());
    for (i, e) in profile.edges().iter().enumerate() {
        match e {
            ProfileEdge::Line(s) => verts.push(s.start),
            ProfileEdge::Spline(_) => return Err(CadError::CurvedEdgeUnsupported { edge: i }),
        }
    }

    let e_start = spline.through_points()[0];
    let e_end = *spline.through_points().last().expect("spline has points");

    let loc_start = locate_on_loop(&verts, e_start, tol)?;
    let loc_end = locate_on_loop(&verts, e_end, tol)?;
    if e_start.approx_eq(e_end, tol) {
        return Err(CadError::SplineEndpointsCoincide);
    }

    // Boundary chains: start→end (CCW) and end→start (CCW).
    let chain_se = walk(&verts, loc_start, loc_end, e_start, e_end);
    let chain_es = walk(&verts, loc_end, loc_start, e_end, e_start);

    // right: boundary start→end, closed by the spline reversed (end→start).
    let right = assemble(chain_se, ProfileEdge::Spline(spline.reversed()))?;
    // left: boundary end→start, closed by the spline forward (start→end).
    let left = assemble(chain_es, ProfileEdge::Spline(spline.clone()))?;
    Ok((left, right))
}

/// Location of a point on a vertex loop: the edge index and parameter.
#[derive(Debug, Clone, Copy)]
struct LoopLocation {
    edge: usize,
    t: f64,
}

fn locate_on_loop(verts: &[Point2], p: Point2, tol: Tolerance) -> Result<LoopLocation, CadError> {
    let n = verts.len();
    let mut best = (f64::INFINITY, LoopLocation { edge: 0, t: 0.0 });
    for i in 0..n {
        let seg = Segment2::new(verts[i], verts[(i + 1) % n]);
        let d = seg.direction();
        let len2 = d.length_squared();
        let t = if len2 == 0.0 { 0.0 } else { ((p - seg.start).dot(d) / len2).clamp(0.0, 1.0) };
        let dist = seg.point_at(t).distance(p);
        if dist < best.0 {
            best = (dist, LoopLocation { edge: i, t });
        }
    }
    if best.0 > tol.value() {
        return Err(CadError::SplineEndpointOffBoundary { distance: best.0 });
    }
    Ok(best.1)
}

/// Walks the loop CCW from `from` to `to`, returning the chain of points
/// including both endpoints.
fn walk(
    verts: &[Point2],
    from: LoopLocation,
    to: LoopLocation,
    p_from: Point2,
    p_to: Point2,
) -> Vec<Point2> {
    let n = verts.len();
    let mut chain = vec![p_from];
    if from.edge == to.edge && to.t > from.t {
        chain.push(p_to);
        return chain;
    }
    // Advance to the end vertex of the starting edge, then vertex by vertex.
    let mut k = (from.edge + 1) % n;
    loop {
        push_if_distinct(&mut chain, verts[k]);
        if k == to.edge {
            break;
        }
        k = (k + 1) % n;
        // The loop is finite: `k` returns to `to.edge` within n steps.
    }
    push_if_distinct(&mut chain, p_to);
    chain
}

fn push_if_distinct(chain: &mut Vec<Point2>, p: Point2) {
    let tol = Tolerance::new(1e-9);
    if chain.last().is_none_or(|q| !q.approx_eq(p, tol)) {
        chain.push(p);
    }
}

/// Builds a profile from a straight chain plus a closing edge.
fn assemble(chain: Vec<Point2>, closing: ProfileEdge) -> Result<Profile, CadError> {
    let mut edges: Vec<ProfileEdge> = chain
        .windows(2)
        .map(|w| ProfileEdge::Line(Segment2::new(w[0], w[1])))
        .collect();
    edges.push(closing);
    Profile::new(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_geom::SubdivisionParams;

    fn rect() -> Profile {
        Profile::rectangle(Point2::new(0.0, 0.0), Point2::new(10.0, 4.0)).unwrap()
    }

    fn diagonal_spline() -> CatmullRom {
        CatmullRom::new(vec![
            Point2::new(3.0, 4.0),
            Point2::new(5.0, 2.0),
            Point2::new(7.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn split_areas_sum_to_original() {
        let (a, b) = split_profile(&rect(), &diagonal_spline(), Tolerance::new(1e-6)).unwrap();
        let params = SubdivisionParams::new(0.05, 0.005);
        let sum = a.signed_area(&params) + b.signed_area(&params);
        assert!((sum - 40.0).abs() < 0.05, "sum = {sum}");
    }

    #[test]
    fn both_halves_are_ccw() {
        let (a, b) = split_profile(&rect(), &diagonal_spline(), Tolerance::new(1e-6)).unwrap();
        assert!(a.is_ccw(), "left half should be CCW");
        assert!(b.is_ccw(), "right half should be CCW");
    }

    #[test]
    fn halves_traverse_spline_in_opposite_directions() {
        let (a, b) = split_profile(&rect(), &diagonal_spline(), Tolerance::new(1e-6)).unwrap();
        let spline_edge = |p: &Profile| {
            p.edges()
                .iter()
                .find_map(|e| match e {
                    ProfileEdge::Spline(c) => Some(c.clone()),
                    _ => None,
                })
                .expect("half has a spline edge")
        };
        let sa = spline_edge(&a);
        let sb = spline_edge(&b);
        assert_eq!(sa.through_points()[0], sb.through_points()[sb.through_points().len() - 1]);
        assert_eq!(sb.through_points()[0], sa.through_points()[sa.through_points().len() - 1]);
    }

    #[test]
    fn endpoint_off_boundary_rejected() {
        let bad = CatmullRom::new(vec![
            Point2::new(3.0, 5.0), // 1 mm above the top edge
            Point2::new(7.0, 0.0),
        ])
        .unwrap();
        let err = split_profile(&rect(), &bad, Tolerance::new(1e-6)).unwrap_err();
        assert!(matches!(err, CadError::SplineEndpointOffBoundary { .. }));
    }

    #[test]
    fn coincident_endpoints_rejected() {
        let degenerate = CatmullRom::new(vec![
            Point2::new(3.0, 4.0),
            Point2::new(5.0, 2.0),
            Point2::new(3.0, 4.0),
        ])
        .unwrap();
        let err = split_profile(&rect(), &degenerate, Tolerance::new(1e-6)).unwrap_err();
        assert_eq!(err, CadError::SplineEndpointsCoincide);
    }

    #[test]
    fn curved_profile_rejected() {
        let spline = CatmullRom::new(vec![
            Point2::new(4.0, 0.0),
            Point2::new(2.0, 2.0),
            Point2::new(0.0, 0.0),
        ])
        .unwrap();
        let curved = Profile::new(vec![
            ProfileEdge::Line(Segment2::new(Point2::ZERO, Point2::new(4.0, 0.0))),
            ProfileEdge::Spline(spline.clone()),
        ])
        .unwrap();
        let err = split_profile(&curved, &spline, Tolerance::new(1e-6)).unwrap_err();
        assert!(matches!(err, CadError::CurvedEdgeUnsupported { .. }));
    }

    #[test]
    fn split_across_same_edge() {
        // Spline entering and leaving through the same (bottom) edge.
        let u_spline = CatmullRom::new(vec![
            Point2::new(2.0, 0.0),
            Point2::new(5.0, 3.0),
            Point2::new(8.0, 0.0),
        ])
        .unwrap();
        let (a, b) = split_profile(&rect(), &u_spline, Tolerance::new(1e-6)).unwrap();
        let params = SubdivisionParams::new(0.05, 0.005);
        let sum = a.signed_area(&params) + b.signed_area(&params);
        assert!((sum - 40.0).abs() < 0.05, "sum = {sum}");
        assert!(a.is_ccw() && b.is_ccw());
    }

    #[test]
    fn vertical_split_line() {
        // A straight "spline" down the middle.
        let line = CatmullRom::new(vec![Point2::new(5.0, 4.0), Point2::new(5.0, 0.0)]).unwrap();
        let (a, b) = split_profile(&rect(), &line, Tolerance::new(1e-6)).unwrap();
        let params = SubdivisionParams::default();
        assert!((a.signed_area(&params) - 20.0).abs() < 1e-6);
        assert!((b.signed_area(&params) - 20.0).abs() < 1e-6);
    }
}
