//! A feature-based CAD kernel for the ObfusCADe toolchain.
//!
//! This crate is the SolidWorks stand-in of the reproduction: it models
//! parts as ordered **feature histories** ([`Part`]) over a small solid
//! vocabulary ([`SolidShape`]: extrusions, cuboids, spheres) and resolves
//! them into normal-oriented [shells](Shell) that `am-mesh` tessellates to
//! STL.
//!
//! The two ObfusCADe protection features live here:
//!
//! * [`Feature::SplineSplit`] — a massless separation across a tensile bar
//!   (§3.1 of the paper), implemented by [`split_profile`]: the two
//!   resulting bodies share the spline boundary but traverse it in opposite
//!   directions, which is what makes their tessellations mismatch.
//! * [`Feature::EmbedSphere`] — a solid or surface sphere embedded in a
//!   prism with or without material removal (§3.2), whose resolved shell
//!   orientations reproduce the paper's Table 3 print outcomes.
//!
//! Standard experiment parts are in [`parts`]; the CAD file-size model used
//! by the §3.2 file observations is in [`cad_file_size`].
//!
//! # Examples
//!
//! ```
//! use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
//!
//! let part = tensile_bar_with_spline(&TensileBarDims::default())?;
//! let resolved = part.resolve()?;
//! assert_eq!(resolved.shells().len(), 2); // split into two bodies
//! # Ok::<(), am_cad::CadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod feature;
mod filesize;
mod part;
pub mod parts;
mod profile;
mod solid;
mod split;

pub use error::CadError;
pub use feature::{BodyKind, Feature, MaterialRemoval};
pub use filesize::{cad_file_size, feature_size, CAD_CONTAINER_OVERHEAD};
pub use part::{Part, ResolvedPart, Shell};
pub use profile::{Profile, ProfileEdge};
pub use solid::{ShellOrientation, SolidShape};
pub use split::split_profile;
