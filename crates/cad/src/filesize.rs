//! A deterministic CAD file-size model.
//!
//! §3.2 of the paper leans on file-size observations: embedding a sphere
//! grows both the CAD and STL files; the CAD file sizes of the solid-sphere
//! and surface-sphere variants *differ* while their STL sizes are
//! *identical*; and embedding with material removal produces a larger file
//! than embedding without. STL sizes are exact in this workspace
//! (`am-mesh::stl`), but native CAD formats are proprietary, so this module
//! provides a documented size model: a fixed container overhead plus a
//! per-feature cost reflecting how much parametric history each operation
//! stores. The *orderings* among variants are what the experiments check,
//! and those are faithful to the paper.

use crate::{BodyKind, Feature, MaterialRemoval, Part, ProfileEdge, SolidShape};

/// Fixed container overhead of a native CAD part file, bytes.
pub const CAD_CONTAINER_OVERHEAD: u64 = 120_000;

/// Estimated native CAD file size of a part, in bytes.
///
/// The model is deterministic: container overhead + a cost per feature (see
/// [`feature_size`]).
///
/// # Examples
///
/// ```
/// use am_cad::parts::{intact_prism, prism_with_sphere, PrismDims};
/// use am_cad::{cad_file_size, BodyKind, MaterialRemoval};
///
/// let dims = PrismDims::default();
/// let intact = cad_file_size(&intact_prism(&dims));
/// let solid = cad_file_size(
///     &prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)?,
/// );
/// let surface = cad_file_size(
///     &prism_with_sphere(&dims, BodyKind::Surface, MaterialRemoval::Without)?,
/// );
/// assert!(solid > intact);        // embedding grows the CAD file
/// assert_ne!(solid, surface);     // solid vs surface CAD sizes differ
/// # Ok::<(), am_cad::CadError>(())
/// ```
pub fn cad_file_size(part: &Part) -> u64 {
    CAD_CONTAINER_OVERHEAD + part.features().iter().map(feature_size).sum::<u64>()
}

/// Size contribution of a single feature, bytes.
pub fn feature_size(feature: &Feature) -> u64 {
    match feature {
        Feature::Base(shape) => base_size(shape),
        // A split stores the sketch spline plus two face-loop records.
        Feature::SplineSplit { spline } => 8_192 + 512 * spline.through_points().len() as u64,
        // A hole stores a sketch loop plus one cut-extrude record.
        Feature::CutHole { profile } => 3_072 + 64 * profile.edge_count() as u64,
        Feature::EmbedSphere { kind, removal, .. } => {
            // A solid body stores a closed B-rep lump; a surface body stores
            // an open face set with trim records, which is slightly larger
            // in most native formats.
            let body = match kind {
                BodyKind::Solid => 6_144,
                BodyKind::Surface => 7_168,
            };
            let cut = match removal {
                MaterialRemoval::With => 4_096, // the cavity-cut feature
                MaterialRemoval::Without => 0,
            };
            body + cut
        }
    }
}

fn base_size(shape: &SolidShape) -> u64 {
    match shape {
        SolidShape::Extrusion { profile, .. } => {
            let edge_cost: u64 = profile
                .edges()
                .iter()
                .map(|e| match e {
                    ProfileEdge::Line(_) => 128,
                    ProfileEdge::Spline(c) => 512 + 256 * c.through_points().len() as u64,
                })
                .sum();
            4_096 + edge_cost
        }
        SolidShape::Cuboid(_) => 2_048,
        SolidShape::Sphere { .. } => 2_048,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parts::{
        intact_prism, prism_with_sphere, tensile_bar, tensile_bar_with_spline, PrismDims,
        TensileBarDims,
    };

    #[test]
    fn embedding_grows_cad_file() {
        let dims = PrismDims::default();
        let intact = cad_file_size(&intact_prism(&dims));
        for kind in [BodyKind::Solid, BodyKind::Surface] {
            for removal in [MaterialRemoval::With, MaterialRemoval::Without] {
                let p = prism_with_sphere(&dims, kind, removal).unwrap();
                assert!(cad_file_size(&p) > intact, "{}", p.name());
            }
        }
    }

    #[test]
    fn solid_and_surface_cad_sizes_differ() {
        let dims = PrismDims::default();
        for removal in [MaterialRemoval::With, MaterialRemoval::Without] {
            let solid =
                cad_file_size(&prism_with_sphere(&dims, BodyKind::Solid, removal).unwrap());
            let surface =
                cad_file_size(&prism_with_sphere(&dims, BodyKind::Surface, removal).unwrap());
            assert_ne!(solid, surface);
        }
    }

    #[test]
    fn removal_grows_cad_file() {
        let dims = PrismDims::default();
        for kind in [BodyKind::Solid, BodyKind::Surface] {
            let with =
                cad_file_size(&prism_with_sphere(&dims, kind, MaterialRemoval::With).unwrap());
            let without =
                cad_file_size(&prism_with_sphere(&dims, kind, MaterialRemoval::Without).unwrap());
            assert!(with > without);
        }
    }

    #[test]
    fn spline_split_grows_tensile_bar_file() {
        let dims = TensileBarDims::default();
        let intact = cad_file_size(&tensile_bar(&dims).unwrap());
        let split = cad_file_size(&tensile_bar_with_spline(&dims).unwrap());
        assert!(split > intact);
    }

    #[test]
    fn size_model_is_deterministic() {
        let dims = PrismDims::default();
        let a = cad_file_size(&prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::With).unwrap());
        let b = cad_file_size(&prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::With).unwrap());
        assert_eq!(a, b);
    }
}
