//! Standard parts used by the paper's experiments.
//!
//! * A tensile test specimen (ASTM D638 Type-IV-like dogbone with the
//!   paper's 6 mm gauge width), intact or with the §3.1 spline-split
//!   feature whose spline is ~3.5× the gauge width in arc length.
//! * The §3.2 rectangular prism (1 × 0.5 × 0.5 in³ = 25.4 × 12.7 × 12.7 mm³)
//!   with an embedded sphere of radius 0.3175 cm = 3.175 mm.

use am_geom::{Aabb3, CatmullRom, Point2, Point3};

use crate::{BodyKind, CadError, Feature, MaterialRemoval, Part, Profile, SolidShape};

/// Dimensions of the dogbone tensile specimen (millimetres).
///
/// Defaults follow ASTM D638 Type IV, which matches the paper's 6 mm gauge
/// width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensileBarDims {
    /// Overall specimen length.
    pub overall_length: f64,
    /// Width of the grip ends.
    pub grip_width: f64,
    /// Width of the gauge (narrow) section — 6 mm in the paper.
    pub gauge_width: f64,
    /// Length of the straight gauge section.
    pub gauge_length: f64,
    /// Length of each linear taper between grip and gauge.
    pub taper_length: f64,
    /// Specimen thickness (extrusion height).
    pub thickness: f64,
}

impl Default for TensileBarDims {
    fn default() -> Self {
        TensileBarDims {
            overall_length: 115.0,
            grip_width: 19.0,
            gauge_width: 6.0,
            gauge_length: 33.0,
            taper_length: 25.0,
            thickness: 3.2,
        }
    }
}

impl TensileBarDims {
    /// Validates that all dimensions are positive and mutually consistent.
    ///
    /// # Errors
    ///
    /// Returns [`CadError::InvalidDimension`] naming the offending value.
    pub fn validate(&self) -> Result<(), CadError> {
        let checks = [
            ("overall_length", self.overall_length),
            ("grip_width", self.grip_width),
            ("gauge_width", self.gauge_width),
            ("gauge_length", self.gauge_length),
            ("taper_length", self.taper_length),
            ("thickness", self.thickness),
        ];
        for (name, value) in checks {
            if !(value.is_finite() && value > 0.0) {
                return Err(CadError::InvalidDimension { name, value });
            }
        }
        if self.gauge_width >= self.grip_width {
            return Err(CadError::InvalidDimension {
                name: "gauge_width (must be below grip_width)",
                value: self.gauge_width,
            });
        }
        if self.grip_length() <= 0.0 {
            return Err(CadError::InvalidDimension {
                name: "overall_length (too short for gauge + tapers)",
                value: self.overall_length,
            });
        }
        Ok(())
    }

    /// Length of each grip end.
    pub fn grip_length(&self) -> f64 {
        (self.overall_length - self.gauge_length - 2.0 * self.taper_length) / 2.0
    }

    /// The dogbone outline, counter-clockwise, centred on the origin.
    ///
    /// # Errors
    ///
    /// Propagates [`CadError::InvalidDimension`] from validation.
    pub fn profile(&self) -> Result<Profile, CadError> {
        self.validate()?;
        let xl = self.overall_length / 2.0;
        let xt = self.gauge_length / 2.0 + self.taper_length;
        let xg = self.gauge_length / 2.0;
        let yg = self.grip_width / 2.0;
        let yn = self.gauge_width / 2.0;
        Profile::polygon(vec![
            Point2::new(-xl, -yg),
            Point2::new(-xt, -yg),
            Point2::new(-xg, -yn),
            Point2::new(xg, -yn),
            Point2::new(xt, -yg),
            Point2::new(xl, -yg),
            Point2::new(xl, yg),
            Point2::new(xt, yg),
            Point2::new(xg, yn),
            Point2::new(-xg, yn),
            Point2::new(-xt, yg),
            Point2::new(-xl, yg),
        ])
    }
}

/// The paper's spline split curve for a given bar: a wavy S-curve crossing
/// the gauge section diagonally, entering on the top edge and exiting on the
/// bottom edge, with arc length ≈ 3.5 × the gauge width (21 mm for the
/// default 6 mm gauge).
///
/// # Errors
///
/// Propagates [`CadError::InvalidDimension`] from validation.
pub fn standard_split_spline(dims: &TensileBarDims) -> Result<CatmullRom, CadError> {
    dims.validate()?;
    // Scale the canonical control polygon (half-width 3, x span ±9 for the
    // default bar) to this bar's gauge section.
    let x_span = (9.0 * dims.gauge_width / 6.0).min(dims.gauge_length / 2.0 * 0.6);
    let y = dims.gauge_width / 2.0;
    let pts = vec![
        Point2::new(-x_span, y),
        Point2::new(-x_span * 5.0 / 9.0, y * 0.5 / 3.0),
        Point2::new(-x_span * 1.0 / 9.0, y * 1.5 / 3.0),
        Point2::new(x_span * 1.0 / 9.0, -y * 1.5 / 3.0),
        Point2::new(x_span * 5.0 / 9.0, -y * 0.5 / 3.0),
        Point2::new(x_span, -y),
    ];
    Ok(CatmullRom::new(pts).expect("six points"))
}

/// An intact tensile bar (no security features).
///
/// # Errors
///
/// Propagates dimension-validation errors.
pub fn tensile_bar(dims: &TensileBarDims) -> Result<Part, CadError> {
    let profile = dims.profile()?;
    let base = SolidShape::extrusion(profile, 0.0, dims.thickness)?;
    Part::new("tensile-bar-intact").with_feature(Feature::Base(base))
}

/// A tensile bar protected with the §3.1 spline split feature.
///
/// # Errors
///
/// Propagates dimension-validation errors.
pub fn tensile_bar_with_spline(dims: &TensileBarDims) -> Result<Part, CadError> {
    let profile = dims.profile()?;
    let base = SolidShape::extrusion(profile, 0.0, dims.thickness)?;
    Part::new("tensile-bar-spline")
        .with_feature(Feature::Base(base))?
        .with_feature(Feature::SplineSplit { spline: standard_split_spline(dims)? })
}

/// Dimensions of the §3.2 rectangular prism experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrismDims {
    /// Prism edge lengths (mm). Paper: 25.4 × 12.7 × 12.7.
    pub size: Point3,
    /// Embedded sphere radius (mm). Paper: 3.175.
    pub sphere_radius: f64,
}

impl Default for PrismDims {
    fn default() -> Self {
        PrismDims { size: Point3::new(25.4, 12.7, 12.7), sphere_radius: 3.175 }
    }
}

impl PrismDims {
    fn cuboid(&self) -> SolidShape {
        SolidShape::Cuboid(Aabb3::new(Point3::ZERO, self.size))
    }

    fn center(&self) -> Point3 {
        self.size * 0.5
    }
}

/// The intact rectangular prism (reference model of §3.2).
pub fn intact_prism(dims: &PrismDims) -> Part {
    Part::new("prism-intact")
        .with_feature(Feature::Base(dims.cuboid()))
        .expect("base feature on empty part")
}

/// The rectangular prism with an embedded sphere, in any of the four §3.2
/// configurations (solid/surface × with/without material removal).
///
/// # Errors
///
/// Returns [`CadError::InvalidDimension`] if the sphere does not fit.
pub fn prism_with_sphere(
    dims: &PrismDims,
    kind: BodyKind,
    removal: MaterialRemoval,
) -> Result<Part, CadError> {
    let min_half = dims.size.x.min(dims.size.y).min(dims.size.z) / 2.0;
    if !(dims.sphere_radius > 0.0 && dims.sphere_radius < min_half) {
        return Err(CadError::InvalidDimension {
            name: "sphere_radius",
            value: dims.sphere_radius,
        });
    }
    let name = format!(
        "prism-sphere-{}-{}",
        match kind {
            BodyKind::Solid => "solid",
            BodyKind::Surface => "surface",
        },
        match removal {
            MaterialRemoval::With => "removal",
            MaterialRemoval::Without => "noremoval",
        }
    );
    let mut part = Part::new(name);
    part.add_feature(Feature::Base(dims.cuboid()))?;
    part.add_feature(Feature::EmbedSphere {
        center: dims.center(),
        radius: dims.sphere_radius,
        kind,
        removal,
    })?;
    Ok(part)
}

/// Dimensions of the mounting-bracket demo part: a plate with bolt holes
/// and a large centre cut-out — the "complex engineering design" setting
/// the paper argues ObfusCADe features hide in best.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BracketDims {
    /// Plate length (x, mm).
    pub length: f64,
    /// Plate width (y, mm).
    pub width: f64,
    /// Plate thickness (mm).
    pub thickness: f64,
    /// Corner bolt-hole radius (mm).
    pub bolt_radius: f64,
    /// Centre lightening-hole radius (mm).
    pub center_radius: f64,
}

impl Default for BracketDims {
    fn default() -> Self {
        BracketDims {
            length: 60.0,
            width: 40.0,
            thickness: 4.0,
            bolt_radius: 3.0,
            center_radius: 8.0,
        }
    }
}

impl BracketDims {
    fn hole_centers(&self) -> [Point2; 4] {
        let inset = 4.0 * self.bolt_radius / 1.5;
        [
            Point2::new(inset, inset),
            Point2::new(self.length - inset, inset),
            Point2::new(self.length - inset, self.width - inset),
            Point2::new(inset, self.width - inset),
        ]
    }
}

/// An intact mounting bracket: plate + four bolt holes + a centre cut-out.
///
/// # Errors
///
/// Returns [`CadError::InvalidDimension`] for inconsistent dimensions.
pub fn bracket(dims: &BracketDims) -> Result<Part, CadError> {
    if !(dims.length > 4.0 * dims.bolt_radius && dims.width > 4.0 * dims.bolt_radius) {
        return Err(CadError::InvalidDimension { name: "bolt_radius", value: dims.bolt_radius });
    }
    if dims.center_radius * 2.5 >= dims.width.min(dims.length) {
        return Err(CadError::InvalidDimension {
            name: "center_radius",
            value: dims.center_radius,
        });
    }
    let plate = Profile::rectangle(Point2::ZERO, Point2::new(dims.length, dims.width))?;
    let mut part = Part::new("bracket-intact");
    part.add_feature(Feature::Base(SolidShape::extrusion(plate, 0.0, dims.thickness)?))?;
    for center in dims.hole_centers() {
        let circle = am_geom::Polygon2::circle(center, dims.bolt_radius, 24);
        part.add_feature(Feature::CutHole {
            profile: Profile::polygon(circle.vertices().to_vec())?,
        })?;
    }
    let center_hole = am_geom::Polygon2::circle(
        Point2::new(dims.length / 2.0, dims.width / 2.0),
        dims.center_radius,
        48,
    );
    part.add_feature(Feature::CutHole {
        profile: Profile::polygon(center_hole.vertices().to_vec())?,
    })?;
    Ok(part)
}

/// The bracket protected with a spline split weaving between the centre
/// cut-out and a bolt hole — the kind of feature "overlap" the paper says
/// makes detection in complex models unlikely.
///
/// # Errors
///
/// Propagates dimension and geometry errors.
pub fn bracket_with_spline(dims: &BracketDims) -> Result<Part, CadError> {
    let mut part = bracket(dims)?;
    // A wavy split from the bottom edge to the top edge, passing between
    // the centre hole and the right bolt holes.
    let x0 = dims.length * 0.62;
    let spline = CatmullRom::new(vec![
        Point2::new(x0, dims.width),
        Point2::new(x0 + dims.length * 0.06, dims.width * 0.7),
        Point2::new(x0 - dims.length * 0.05, dims.width * 0.42),
        Point2::new(x0 + dims.length * 0.03, 0.0),
    ])
    .expect("four points");
    part.add_feature(Feature::SplineSplit { spline })?;
    // Renaming keeps reports readable.
    let mut renamed = Part::new("bracket-spline");
    for f in part.features() {
        renamed.add_feature(f.clone())?;
    }
    Ok(renamed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_geom::SubdivisionParams;

    #[test]
    fn default_dims_validate() {
        TensileBarDims::default().validate().unwrap();
    }

    #[test]
    fn dogbone_profile_is_ccw_with_correct_area() {
        let dims = TensileBarDims::default();
        let p = dims.profile().unwrap();
        assert!(p.is_ccw());
        let area = p.signed_area(&SubdivisionParams::default());
        // grips: 2 × 16 × 19; gauge: 33 × 6; tapers: 2 × trapezoid 25 × (19+6)/2
        let expected = 2.0 * 16.0 * 19.0 + 33.0 * 6.0 + 2.0 * 25.0 * 12.5;
        assert!((area - expected).abs() < 1e-9, "area = {area}, expected {expected}");
    }

    #[test]
    fn spline_arc_length_matches_paper() {
        // Paper: spline length 21 mm = 3.5 × the 6 mm gauge width.
        let spline = standard_split_spline(&TensileBarDims::default()).unwrap();
        let len = spline.arc_length();
        assert!((len - 21.0).abs() < 2.5, "arc length = {len}");
    }

    #[test]
    fn spline_endpoints_on_gauge_edges() {
        let dims = TensileBarDims::default();
        let spline = standard_split_spline(&dims).unwrap();
        let first = spline.through_points()[0];
        let last = *spline.through_points().last().unwrap();
        assert_eq!(first.y, dims.gauge_width / 2.0);
        assert_eq!(last.y, -dims.gauge_width / 2.0);
        assert!(first.x.abs() <= dims.gauge_length / 2.0);
        assert!(last.x.abs() <= dims.gauge_length / 2.0);
    }

    #[test]
    fn split_bar_resolves_to_two_bodies() {
        let part = tensile_bar_with_spline(&TensileBarDims::default()).unwrap();
        let r = part.resolve().unwrap();
        assert_eq!(r.shells().len(), 2);
        assert_eq!(r.seams().len(), 1);
    }

    #[test]
    fn split_conserves_volume() {
        let dims = TensileBarDims::default();
        let intact = tensile_bar(&dims).unwrap().resolve().unwrap();
        let split = tensile_bar_with_spline(&dims).unwrap().resolve().unwrap();
        let params = SubdivisionParams::new(0.02, 0.002);
        let vi = intact.net_volume(&params);
        let vs = split.net_volume(&params);
        assert!((vi - vs).abs() / vi < 1e-3, "intact {vi} vs split {vs}");
    }

    #[test]
    fn prism_variants_resolve() {
        let dims = PrismDims::default();
        for kind in [BodyKind::Solid, BodyKind::Surface] {
            for removal in [MaterialRemoval::With, MaterialRemoval::Without] {
                let part = prism_with_sphere(&dims, kind, removal).unwrap();
                let r = part.resolve().unwrap();
                let expected_shells = match removal {
                    MaterialRemoval::With => 3,
                    MaterialRemoval::Without => 2,
                };
                assert_eq!(r.shells().len(), expected_shells, "{}", part.name());
            }
        }
    }

    #[test]
    fn oversized_sphere_rejected() {
        let dims = PrismDims { sphere_radius: 7.0, ..PrismDims::default() };
        assert!(prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without).is_err());
    }

    #[test]
    fn bracket_resolves_with_holes_as_cavity_shells() {
        let part = bracket(&BracketDims::default()).unwrap();
        let r = part.resolve().unwrap();
        // 1 plate + 4 bolt holes + 1 centre hole.
        assert_eq!(r.shells().len(), 6);
        assert_eq!(
            r.shells().iter().filter(|s| s.orientation == crate::ShellOrientation::Inward).count(),
            5
        );
        assert_eq!(part.security_feature_count(), 0, "holes are ordinary geometry");
        // Net volume = plate − holes.
        let dims = BracketDims::default();
        let params = SubdivisionParams::default();
        let plate = dims.length * dims.width * dims.thickness;
        let holes = (4.0 * std::f64::consts::PI * dims.bolt_radius.powi(2)
            + std::f64::consts::PI * dims.center_radius.powi(2))
            * dims.thickness;
        let v = r.net_volume(&params);
        assert!((v - (plate - holes)).abs() / plate < 0.02, "v = {v}");
    }

    #[test]
    fn protected_bracket_splits_cleanly_around_holes() {
        let part = bracket_with_spline(&BracketDims::default()).unwrap();
        assert_eq!(part.security_feature_count(), 1);
        let r = part.resolve().unwrap();
        // Two plate halves + 5 hole shells.
        assert_eq!(r.shells().len(), 7);
        assert_eq!(r.seams().len(), 1);
        // Volume conserved by the massless split.
        let intact = bracket(&BracketDims::default()).unwrap().resolve().unwrap();
        let params = SubdivisionParams::new(0.05, 0.01);
        let (vi, vs) = (intact.net_volume(&params), r.net_volume(&params));
        assert!((vi - vs).abs() / vi < 0.01, "{vi} vs {vs}");
    }

    #[test]
    fn oversized_bracket_holes_rejected() {
        let dims = BracketDims { center_radius: 30.0, ..BracketDims::default() };
        assert!(bracket(&dims).is_err());
    }

    #[test]
    fn invalid_dims_rejected() {
        let dims = TensileBarDims { gauge_width: 25.0, ..TensileBarDims::default() };
        assert!(matches!(dims.validate(), Err(CadError::InvalidDimension { .. })));
        let dims2 = TensileBarDims { overall_length: 50.0, ..TensileBarDims::default() };
        assert!(dims2.validate().is_err());
    }
}
