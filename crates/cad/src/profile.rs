//! Planar profiles: closed loops of straight and spline edges.

use am_geom::{Aabb2, CatmullRom, Point2, Polygon2, Segment2, SubdivisionParams, Tolerance};

use crate::CadError;

/// One edge of a [`Profile`] boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileEdge {
    /// A straight edge.
    Line(Segment2),
    /// A free-form spline edge, traversed from its first through-point to
    /// its last. Traversal direction matters: it decides which way the STL
    /// tessellator walks the curve, which is the root of the ObfusCADe
    /// vertex-mismatch exploit (Fig. 4 of the paper).
    Spline(CatmullRom),
}

impl ProfileEdge {
    /// Start point of the edge.
    pub fn start(&self) -> Point2 {
        match self {
            ProfileEdge::Line(s) => s.start,
            ProfileEdge::Spline(c) => c.through_points()[0],
        }
    }

    /// End point of the edge.
    pub fn end(&self) -> Point2 {
        match self {
            ProfileEdge::Line(s) => s.end,
            ProfileEdge::Spline(c) => *c.through_points().last().expect("spline has points"),
        }
    }

    /// `true` if the edge is curved.
    pub fn is_curved(&self) -> bool {
        matches!(self, ProfileEdge::Spline(_))
    }

    /// Polygonizes the edge into a chain including both endpoints.
    pub fn polygonize(&self, params: &SubdivisionParams) -> Vec<Point2> {
        match self {
            ProfileEdge::Line(s) => vec![s.start, s.end],
            ProfileEdge::Spline(c) => c.subdivide(params),
        }
    }

    /// Arc length of the edge (exact for lines, numeric for splines).
    pub fn length(&self) -> f64 {
        match self {
            ProfileEdge::Line(s) => s.length(),
            ProfileEdge::Spline(c) => c.arc_length(),
        }
    }
}

/// A closed planar profile: an ordered loop of [`ProfileEdge`]s, wound
/// counter-clockwise around material.
///
/// # Examples
///
/// ```
/// use am_cad::Profile;
/// use am_geom::Point2;
///
/// let p = Profile::polygon(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(4.0, 0.0),
///     Point2::new(4.0, 2.0),
///     Point2::new(0.0, 2.0),
/// ])?;
/// assert_eq!(p.edge_count(), 4);
/// # Ok::<(), am_cad::CadError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    edges: Vec<ProfileEdge>,
}

impl Profile {
    /// Creates a profile from an edge loop.
    ///
    /// # Errors
    ///
    /// Returns [`CadError::OpenProfile`] if consecutive edges (including
    /// last→first) do not meet within the default [`Tolerance`], or
    /// [`CadError::DegenerateProfile`] for fewer than three distinct
    /// vertices.
    pub fn new(edges: Vec<ProfileEdge>) -> Result<Self, CadError> {
        let tol = Tolerance::new(1e-6);
        if edges.len() < 2 {
            return Err(CadError::DegenerateProfile);
        }
        for i in 0..edges.len() {
            let next = (i + 1) % edges.len();
            let gap = edges[i].end().distance(edges[next].start());
            if gap > tol.value() {
                return Err(CadError::OpenProfile { edge: i, gap });
            }
        }
        let profile = Profile { edges };
        // A loop of two straight edges is degenerate; a loop containing a
        // spline can be valid with two edges.
        let poly = profile.polygonize(&SubdivisionParams::default());
        if poly.len() < 3 {
            return Err(CadError::DegenerateProfile);
        }
        Ok(profile)
    }

    /// Creates a straight-edged profile from a vertex loop.
    ///
    /// # Errors
    ///
    /// Returns [`CadError::DegenerateProfile`] for fewer than three vertices.
    pub fn polygon(vertices: Vec<Point2>) -> Result<Self, CadError> {
        if vertices.len() < 3 {
            return Err(CadError::DegenerateProfile);
        }
        let n = vertices.len();
        let edges = (0..n)
            .map(|i| ProfileEdge::Line(Segment2::new(vertices[i], vertices[(i + 1) % n])))
            .collect();
        Profile::new(edges)
    }

    /// Axis-aligned rectangle profile (counter-clockwise).
    ///
    /// # Errors
    ///
    /// Returns [`CadError::InvalidDimension`] if the rectangle is empty.
    pub fn rectangle(min: Point2, max: Point2) -> Result<Self, CadError> {
        if max.x.partial_cmp(&min.x) != Some(std::cmp::Ordering::Greater) {
            return Err(CadError::InvalidDimension { name: "rectangle width", value: max.x - min.x });
        }
        if max.y.partial_cmp(&min.y) != Some(std::cmp::Ordering::Greater) {
            return Err(CadError::InvalidDimension { name: "rectangle height", value: max.y - min.y });
        }
        Profile::polygon(vec![
            min,
            Point2::new(max.x, min.y),
            max,
            Point2::new(min.x, max.y),
        ])
    }

    /// The edges of the profile.
    pub fn edges(&self) -> &[ProfileEdge] {
        &self.edges
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` if any edge is a spline.
    pub fn has_curved_edges(&self) -> bool {
        self.edges.iter().any(ProfileEdge::is_curved)
    }

    /// Polygonizes the boundary at the given resolution into a vertex loop
    /// (no repeated closing vertex).
    pub fn polygonize(&self, params: &SubdivisionParams) -> Vec<Point2> {
        let tol = Tolerance::new(1e-9);
        let mut out: Vec<Point2> = Vec::new();
        for edge in &self.edges {
            let pts = edge.polygonize(params);
            for p in pts {
                if out.last().is_none_or(|q| !q.approx_eq(p, tol)) {
                    out.push(p);
                }
            }
        }
        // Drop the closing duplicate of the first vertex, if present.
        if out.len() > 1 && out[0].approx_eq(*out.last().expect("non-empty"), tol) {
            out.pop();
        }
        out
    }

    /// The profile as a [`Polygon2`] at the given resolution.
    ///
    /// # Panics
    ///
    /// Panics if polygonization yields fewer than three vertices (prevented
    /// by construction-time validation).
    pub fn to_polygon(&self, params: &SubdivisionParams) -> Polygon2 {
        Polygon2::new(self.polygonize(params))
    }

    /// Enclosed area at the given resolution (positive for CCW profiles).
    pub fn signed_area(&self, params: &SubdivisionParams) -> f64 {
        self.to_polygon(params).signed_area()
    }

    /// `true` if the profile winds counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area(&SubdivisionParams::default()) > 0.0
    }

    /// Bounding box at the given resolution.
    pub fn aabb(&self, params: &SubdivisionParams) -> Aabb2 {
        self.to_polygon(params).aabb()
    }

    /// Total boundary length.
    pub fn perimeter(&self) -> f64 {
        self.edges.iter().map(ProfileEdge::length).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangle_round_trip() {
        let p = Profile::rectangle(Point2::ZERO, Point2::new(4.0, 2.0)).unwrap();
        assert_eq!(p.edge_count(), 4);
        assert!(p.is_ccw());
        assert!((p.signed_area(&SubdivisionParams::default()) - 8.0).abs() < 1e-12);
        assert!(!p.has_curved_edges());
        assert_eq!(p.perimeter(), 12.0);
    }

    #[test]
    fn open_loop_rejected() {
        let e = Profile::new(vec![
            ProfileEdge::Line(Segment2::new(Point2::ZERO, Point2::new(1.0, 0.0))),
            ProfileEdge::Line(Segment2::new(Point2::new(1.0, 0.0), Point2::new(1.0, 1.0))),
            ProfileEdge::Line(Segment2::new(Point2::new(1.0, 1.0), Point2::new(0.5, 0.5))),
        ])
        .unwrap_err();
        assert!(matches!(e, CadError::OpenProfile { edge: 2, .. }));
    }

    #[test]
    fn degenerate_profile_rejected() {
        assert_eq!(
            Profile::polygon(vec![Point2::ZERO, Point2::X]).unwrap_err(),
            CadError::DegenerateProfile
        );
    }

    #[test]
    fn empty_rectangle_rejected() {
        assert!(matches!(
            Profile::rectangle(Point2::ZERO, Point2::new(0.0, 1.0)),
            Err(CadError::InvalidDimension { .. })
        ));
    }

    #[test]
    fn profile_with_spline_edge() {
        // A half-disc-ish shape: straight base + arced spline back.
        let spline = CatmullRom::new(vec![
            Point2::new(4.0, 0.0),
            Point2::new(2.0, 2.0),
            Point2::new(0.0, 0.0),
        ])
        .unwrap();
        let p = Profile::new(vec![
            ProfileEdge::Line(Segment2::new(Point2::ZERO, Point2::new(4.0, 0.0))),
            ProfileEdge::Spline(spline),
        ])
        .unwrap();
        assert!(p.has_curved_edges());
        let area = p.signed_area(&SubdivisionParams::default());
        assert!(area > 2.0 && area < 8.0, "area = {area}");
    }

    #[test]
    fn finer_resolution_gives_more_vertices_with_curves() {
        let spline = CatmullRom::new(vec![
            Point2::new(4.0, 0.0),
            Point2::new(2.0, 2.0),
            Point2::new(0.0, 0.0),
        ])
        .unwrap();
        let p = Profile::new(vec![
            ProfileEdge::Line(Segment2::new(Point2::ZERO, Point2::new(4.0, 0.0))),
            ProfileEdge::Spline(spline),
        ])
        .unwrap();
        let coarse = p.polygonize(&SubdivisionParams::new(0.6, 0.5)).len();
        let fine = p.polygonize(&SubdivisionParams::new(0.02, 0.002)).len();
        assert!(fine > coarse);
    }

    #[test]
    fn polygonize_has_no_duplicate_joint_points() {
        let p = Profile::rectangle(Point2::ZERO, Point2::new(1.0, 1.0)).unwrap();
        let pts = p.polygonize(&SubdivisionParams::default());
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[0].distance(w[1]) > 1e-9);
        }
    }
}
