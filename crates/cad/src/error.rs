//! Error types for the CAD kernel.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or resolving CAD models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CadError {
    /// A profile's edges do not form a closed loop.
    OpenProfile {
        /// Index of the edge whose end does not meet the next edge's start.
        edge: usize,
        /// Gap distance between the mismatched endpoints.
        gap: f64,
    },
    /// A profile has fewer than three distinct vertices.
    DegenerateProfile,
    /// An operation that requires straight profile edges met a curved one.
    CurvedEdgeUnsupported {
        /// Index of the offending edge.
        edge: usize,
    },
    /// A split spline endpoint does not lie on the profile boundary.
    SplineEndpointOffBoundary {
        /// Distance from the endpoint to the nearest boundary point.
        distance: f64,
    },
    /// A split spline must have distinct endpoints on the boundary.
    SplineEndpointsCoincide,
    /// A part was resolved without a base feature.
    MissingBase,
    /// A second base feature was added to a part.
    BaseAlreadySet,
    /// A spline-split feature was applied to a non-extrusion base.
    SplitRequiresExtrusion,
    /// A through-hole was applied to a base with no prismatic height.
    HoleRequiresPrismaticBase,
    /// An embedded feature lies (partly) outside the base solid's bounds.
    FeatureOutsideBase,
    /// An invalid dimension (non-positive or non-finite) was supplied.
    InvalidDimension {
        /// Name of the offending dimension.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for CadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CadError::OpenProfile { edge, gap } => {
                write!(f, "profile is not closed: edge {edge} ends {gap} mm from the next edge")
            }
            CadError::DegenerateProfile => write!(f, "profile has fewer than three distinct vertices"),
            CadError::CurvedEdgeUnsupported { edge } => {
                write!(f, "operation requires straight profile edges but edge {edge} is curved")
            }
            CadError::SplineEndpointOffBoundary { distance } => {
                write!(f, "split spline endpoint is {distance} mm off the profile boundary")
            }
            CadError::SplineEndpointsCoincide => {
                write!(f, "split spline endpoints coincide on the boundary")
            }
            CadError::MissingBase => write!(f, "part has no base feature"),
            CadError::BaseAlreadySet => write!(f, "part already has a base feature"),
            CadError::SplitRequiresExtrusion => {
                write!(f, "spline split requires an extrusion base")
            }
            CadError::HoleRequiresPrismaticBase => {
                write!(f, "through holes require an extrusion or cuboid base")
            }
            CadError::FeatureOutsideBase => {
                write!(f, "embedded feature extends outside the base solid")
            }
            CadError::InvalidDimension { name, value } => {
                write!(f, "invalid dimension {name} = {value}")
            }
        }
    }
}

impl Error for CadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CadError::SplineEndpointOffBoundary { distance: 0.5 };
        let msg = e.to_string();
        assert!(msg.contains("0.5"));
        assert!(msg.starts_with("split spline"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>(_: &E) {}
        assert_error(&CadError::MissingBase);
    }
}
