//! Solid shapes: the geometry a resolved CAD body can take.

use am_geom::{Aabb3, Point3, SubdivisionParams, Vec3};

use crate::{CadError, Profile};

/// The geometry of a resolved CAD body.
///
/// The kernel is deliberately small: the ObfusCADe experiments need
/// extrusions (tensile bars and their spline-split halves), cuboids
/// (the §3.2 rectangular prism) and spheres (the embedded feature). A
/// general B-rep is out of scope, but the semantics — per-body tessellation
/// and normal-oriented shells — are faithful to how production CAD behaves.
#[derive(Debug, Clone, PartialEq)]
pub enum SolidShape {
    /// A planar [`Profile`] extruded along +z from `z_min` to `z_max`.
    Extrusion {
        /// Cross-section profile in the xy-plane.
        profile: Profile,
        /// Bottom of the extrusion.
        z_min: f64,
        /// Top of the extrusion.
        z_max: f64,
    },
    /// An axis-aligned rectangular prism.
    Cuboid(Aabb3),
    /// A sphere.
    Sphere {
        /// Centre point.
        center: Point3,
        /// Radius (mm).
        radius: f64,
    },
}

impl SolidShape {
    /// Creates an extrusion, validating the height.
    ///
    /// # Errors
    ///
    /// Returns [`CadError::InvalidDimension`] if `z_max <= z_min`.
    pub fn extrusion(profile: Profile, z_min: f64, z_max: f64) -> Result<Self, CadError> {
        if z_max.partial_cmp(&z_min) != Some(std::cmp::Ordering::Greater) {
            return Err(CadError::InvalidDimension { name: "extrusion height", value: z_max - z_min });
        }
        Ok(SolidShape::Extrusion { profile, z_min, z_max })
    }

    /// Creates a sphere, validating the radius.
    ///
    /// # Errors
    ///
    /// Returns [`CadError::InvalidDimension`] if `radius` is not positive
    /// and finite.
    pub fn sphere(center: Point3, radius: f64) -> Result<Self, CadError> {
        if !(radius.is_finite() && radius > 0.0) {
            return Err(CadError::InvalidDimension { name: "sphere radius", value: radius });
        }
        Ok(SolidShape::Sphere { center, radius })
    }

    /// Bounding box of the shape at the given tessellation resolution
    /// (the resolution only matters for curved extrusion profiles).
    pub fn aabb(&self, params: &SubdivisionParams) -> Aabb3 {
        match self {
            SolidShape::Extrusion { profile, z_min, z_max } => {
                let b2 = profile.aabb(params);
                Aabb3::new(b2.min.to_3d(*z_min), b2.max.to_3d(*z_max))
            }
            SolidShape::Cuboid(b) => *b,
            SolidShape::Sphere { center, radius } => Aabb3::new(
                *center - Vec3::new(*radius, *radius, *radius),
                *center + Vec3::new(*radius, *radius, *radius),
            ),
        }
    }

    /// Volume of the shape (numeric for curved profiles, exact otherwise).
    pub fn volume(&self, params: &SubdivisionParams) -> f64 {
        match self {
            SolidShape::Extrusion { profile, z_min, z_max } => {
                profile.signed_area(params).abs() * (z_max - z_min)
            }
            SolidShape::Cuboid(b) => b.volume(),
            SolidShape::Sphere { radius, .. } => {
                4.0 / 3.0 * std::f64::consts::PI * radius.powi(3)
            }
        }
    }
}

/// Orientation of a tessellated shell's facet normals.
///
/// This single bit is what the paper's Table 3 turns on: an STL file
/// "stores a normal direction for each triangle to determine the boundary
/// between the outside and inside of the model", and the printer lays
/// material accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShellOrientation {
    /// Normals point away from enclosed material (a solid boundary).
    Outward,
    /// Normals point toward the enclosed region (a cavity or separation
    /// boundary: the enclosed region reads as *outside* the model).
    Inward,
}

impl ShellOrientation {
    /// The opposite orientation.
    pub fn flipped(self) -> Self {
        match self {
            ShellOrientation::Outward => ShellOrientation::Inward,
            ShellOrientation::Inward => ShellOrientation::Outward,
        }
    }

    /// Winding contribution of a shell with this orientation: `+1` for
    /// outward (adds material), `-1` for inward (subtracts).
    pub fn winding_sign(self) -> i32 {
        match self {
            ShellOrientation::Outward => 1,
            ShellOrientation::Inward => -1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_geom::Point2;

    #[test]
    fn extrusion_volume_is_area_times_height() {
        let profile = Profile::rectangle(Point2::ZERO, Point2::new(4.0, 2.0)).unwrap();
        let solid = SolidShape::extrusion(profile, 0.0, 3.0).unwrap();
        assert!((solid.volume(&SubdivisionParams::default()) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn extrusion_flat_height_rejected() {
        let profile = Profile::rectangle(Point2::ZERO, Point2::new(1.0, 1.0)).unwrap();
        assert!(SolidShape::extrusion(profile, 1.0, 1.0).is_err());
    }

    #[test]
    fn sphere_volume() {
        let s = SolidShape::sphere(Point3::ZERO, 2.0).unwrap();
        let expected = 4.0 / 3.0 * std::f64::consts::PI * 8.0;
        assert!((s.volume(&SubdivisionParams::default()) - expected).abs() < 1e-9);
    }

    #[test]
    fn sphere_bad_radius_rejected() {
        assert!(SolidShape::sphere(Point3::ZERO, 0.0).is_err());
        assert!(SolidShape::sphere(Point3::ZERO, f64::NAN).is_err());
    }

    #[test]
    fn sphere_aabb_centered() {
        let s = SolidShape::sphere(Point3::new(1.0, 2.0, 3.0), 0.5).unwrap();
        let b = s.aabb(&SubdivisionParams::default());
        assert_eq!(b.center(), Point3::new(1.0, 2.0, 3.0));
        assert_eq!(b.size(), Vec3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn orientation_flip_and_sign() {
        assert_eq!(ShellOrientation::Outward.flipped(), ShellOrientation::Inward);
        assert_eq!(ShellOrientation::Outward.winding_sign(), 1);
        assert_eq!(ShellOrientation::Inward.winding_sign(), -1);
    }
}
