//! Command implementations and flag parsing for the `obfuscade` CLI.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};

use am_cad::parts::{
    bracket, bracket_with_spline, intact_prism, prism_with_sphere, tensile_bar,
    tensile_bar_with_spline, BracketDims, PrismDims, TensileBarDims,
};
use am_cad::{BodyKind, MaterialRemoval};
use am_mesh::{
    analyze_topology, read_stl, t_junction_count, tessellate_part, write_binary_stl, Resolution,
};
use am_cad::Part;
use am_printer::{check_limits, BuildEnvelope, PrintedPart, PrinterProfile};
use am_slicer::{
    orient_shells, parse_gcode, to_gcode, try_generate_toolpath, try_slice_shells, Orientation,
    SlicerConfig,
};
use obfuscade::{run_pipeline_with_faults, FaultPlan, FeaSolver, ProcessPlan};

/// CLI usage text.
pub const USAGE: &str = "\
obfuscade — CAD-model obfuscation against AM counterfeiting (DAC'17 reproduction)

USAGE:
    obfuscade <command> [options]

COMMANDS:
    protect        build a (protected) demo part and export it as binary STL
                     --part bar|bracket|prism   (default bar)
                     --out FILE.stl             (required)
                     --resolution coarse|fine|custom   (default fine)
                     --intact                   export without the security feature
    inspect        geometry review of an STL file (Table 1, STL stage)
                     <FILE.stl>
    slice          slice an STL into a G-code part program
                     <FILE.stl> --orientation xy|xz --out FILE.gcode [--layer MM]
    print          simulate printing a G-code file and scan the artifact
                     <FILE.gcode> [--machine fdm|polyjet] [--seed N]
    authenticate   print a G-code file and classify the artifact genuine/counterfeit
                     <FILE.gcode> [--reference GENUINE.gcode]
                     (absolute thresholds without --reference; with it, the
                      verdict uses the *excess* defect signature)
    preview        render one sliced layer as ASCII art (the CatalystEX
                   preview of Fig. 7a; seam gaps highlighted with '!')
                     <FILE.stl> --orientation xy|xz [--layer-index N] [--layer MM]
    faults         inject supply-chain faults (Table 1 attacks) into a pipeline run
                     --list                     show the documented fault catalog
                     [PLAN | CATALOG-NAME]      e.g. \"stl.degenerate=3 firmware.feed=50\"
                     --part bar|bracket|prism   (default prism)
                     --resolution coarse|fine|custom   (default coarse)
                     --orientation xy|xz        (default xy)
                     --seed N                   fault-plan seed override
    audit          print the AM supply-chain risk table (paper Table 1 / Fig. 2)
    report         regenerate a paper artifact:
                     table1|fig3|fig4|fig5|fig7|fig8|fig9|table2|table3|
                     sidechannel|detect|keyspace|multikey|sparse|repair|auth|all
                     (detect is the §16 ROC sweep; it runs on demand and
                      is not part of `all`)
    sweep          evaluate the full process-key space (Table 3 recipes ×
                   resolutions × orientations) through the shared-prefix
                   batch engine and report each key's printed outcome
                     [--threads N]              thread budget (default: all cores)
                     [--seed N]                 process seed (default 1)
                     [--tensile]                also run the virtual tensile test per key
                     [--solver SOLVER]          tensile equilibrium solver:
                                                newton-pcg (default) | relaxation
                     [--cache-stats]            print the unified metrics snapshot
                                                (stage cache, solver pool, solver work)
    serve          run the obfuscation daemon: a length-prefixed JSON protocol
                   over TCP (and a Unix socket with --uds), jobs dispatched onto
                   the batch engine behind a bounded queue and one shared cache
                     [--addr HOST:PORT]         listen address (default 127.0.0.1:7777;
                                                port 0 picks a free port)
                     [--uds PATH]               also listen on a Unix-domain socket
                     [--workers N]              pipeline workers (default 2)
                     [--queue N]                job-queue capacity (default 64)
                     [--cache-mb MB]            stage-cache budget (default 64)
                     [--allow-remote-shutdown]  honor wire shutdown from non-local
                                                peers (default: loopback/uds only —
                                                shutdown is unauthenticated)
                     [--port-file FILE]         write the bound address to FILE
                                                once listening (for scripts)
                     [--spill-dir DIR]          persist cache evictions to CRC-checked
                                                segment files in DIR; entries rehydrate
                                                on miss and survive restarts
                     [--chaos-seed N]           deterministic fault injection (testing):
                                                seeded connection drops, slow/short
                                                reads, worker panics, spill-write
                                                failures
                     [--backend B]              connection layer: reactor (epoll
                                                event loop, Linux default) | threads
                                                (one thread per connection)
                     [--json-only]              refuse binary codec negotiation:
                                                binary hellos get a typed bad_codec
                                                error and the connection stays JSON
                     [--idle-timeout-s S]       reactor: drop connections idle for S
                                                seconds (default 60; also the
                                                slow-loris partial-frame bound)
                     [--node NAME]              node name surfaced in stats snapshots
                                                (fleet tooling names each backend)
    route          run the cache-affinity router: a daemon speaking the same wire
                   protocol whose jobs are forwarded to N backend daemons, the
                   backend chosen by rendezvous-hashing each job's stage-key
                   prefix (shared prefixes ride one backend's warm cache)
                     --to EP1,EP2,...           backend endpoints (required);
                                                HOST:PORT or unix:PATH each
                     [--addr HOST:PORT]         front listen address (default
                                                127.0.0.1:7878; port 0 = ephemeral)
                     [--uds PATH]               also listen on a Unix socket
                     [--policy P]               affinity (default) | round-robin
                     [--conns N]                pipelined connections per backend
                                                (default 2)
                     [--fail-threshold N]       consecutive failures that eject a
                                                backend (default 3)
                     [--probe-every N]          probe an ejected backend every Nth
                                                skipped decision (default 8; 0 never)
                     [--retries N]              attempts per backend before failing
                                                over (default 4)
                     [--workers N]              forwarding workers (default 8)
                     [--queue N]                front queue capacity (default 64)
                     [--backend B]              front connection layer (reactor|threads)
                     [--json-only]              refuse binary negotiation on the front
                     [--port-file FILE]         write the bound front address to FILE
                     [--node NAME]              stats node name (default \"router\")
    submit         send one request to a running daemon and print the reply
                     [--addr HOST:PORT]         daemon address (default 127.0.0.1:7777)
                     [--uds PATH]               connect over a Unix socket instead
                     [--port-file FILE]         read the daemon address from FILE,
                                                polling up to 10 s for it to appear
                                                (pairs with serve --port-file)
                     [--retries N]              total attempts per request (default 4):
                                                transient failures reconnect and retry
                                                with exponential backoff
                     [--kind KIND]              ping|stats|run|authenticate|detect|
                                                sanitize|shutdown (default run)
                     [--codec json|binary]      wire codec (default json); binary is
                                                negotiated per connection and falls
                                                to an error if the daemon refuses
                     job flags for run/authenticate:
                       [--part bar|bracket|prism] [--intact] [--seed N]
                       [--resolution coarse|fine|custom] [--orientation xy|xz]
                       [--tensile] [--solver SOLVER] [--layer MM]
                       [--faults PLAN] [--fault-seed N] [--deadline-ms MS]
                     flags for --kind detect:
                       [--quality lab|smartphone|room]  capture preset (default
                                                smartphone)
                       [--jam A]                NoiseEmitter jamming amplitude over
                                                the acoustic capture (default 0 = off)
                       [--trace-seed N]         capture-noise seed (default 1)
                     flags for --kind sanitize:
                       [--payload-seed N]       embed a seeded stego payload first
                                                (default 0 = scan the clean path)
                       [--payload-bits N]       channel width in bits (default 2)
                     [--verify]                 with detect/sanitize: byte-compare the
                                                served reports against an in-process
                                                am-detect run of the same job
                     [--load N]                 load-generator mode: N run requests…
                     [--concurrency C]          …over C connections (default 4),
                                                verified byte-for-byte against an
                                                in-process run; prints p50/p95/p99
    detect-roc     run the side-channel detection ROC sweep in-process: audio,
                   power, and fused detectors × the full 15-entry fault catalog
                   × capture qualities × NoiseEmitter jamming amplitudes
                     [--quality LIST]           comma-separated capture presets
                                                (default lab,smartphone,room)
                     [--jam LIST]               comma-separated jamming amplitudes
                                                (default 0,2.5; nonzero turns the
                                                countermeasure on)
                     [--replicates N]           seeded captures per cell (default 5)
                     [--part bar|bracket|prism] (default prism)
                     [--resolution coarse|fine|custom]  (default coarse)
                     [--orientation xy|xz]      (default xy)
                     [--json]                   print the full table as JSON instead
                                                of the rendered summary
    bench          benchmark the reference kernels against the optimized ones
                   and write a BENCH_*.json report
                     [--smoke]                  tiny workloads (CI smoke stage)
                     [--threads N]              parallel-path thread budget (default: all cores)
                     [--replicates N]           end-to-end replicates (default 2)
                     [--solver SOLVER]          tensile solver for the optimized fea row:
                                                newton-pcg (default) | relaxation
                     [--serve]                  also bench the daemon end to end: a
                                                backend (reactor|threads) × codec
                                                (json|binary) × concurrency sweep,
                                                byte-verified, with p50/p95/p99 + rps
                                                per point — plus the routed-fleet grid
                                                (nodes × affinity|round-robin behind a
                                                router, per-node cache hits + warm hit
                                                rate per point)
                     [--only KERNEL]            slicing|printing|fea|sweep|
                                                all_experiments|serve|fleet|detect
                     [--out FILE.json]          (default BENCH_PR10.json)
                     [--check FILE.json]        validate an existing report instead of
                                                benchmarking; fail on any speedup < 1.0
                     [--fea-budget-ms MS]       with --check: also fail if the fea row's
                                                optimized time exceeds MS milliseconds
                     [--min-speedup LIST]       with --check: per-kernel speedup floors,
                                                e.g. printing=3.5,slicing=5.7
                     [--require-serve]          with --check: also fail unless the
                                                report carries a daemon (serve) result
                     [--serve-p99-ms MS]        with --check: fail if the headline serve
                                                p99 exceeds MS milliseconds
                     [--serve-min-rps R]        with --check: fail if the headline serve
                                                throughput is below R req/s
                     [--fleet-min-hit-rate P]   with --check: fail if the routed fleet's
                                                headline warm hit rate is below P percent
                     [--fleet-min-rps R]        with --check: fail if the routed fleet's
                                                headline throughput is below R req/s
                     [--detect-min-catch F]     with --check: fail if the ROC sweep's
                                                worst-setup fused catch rate is below F
                     [--detect-max-fpr F]       with --check: fail if the ROC sweep's
                                                worst-setup fused FPR exceeds F
    help           show this text
";

type CliResult = Result<(), String>;

/// Parses `--flag value` pairs and positionals.
fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().cloned().unwrap_or_default(),
                _ => String::from("true"),
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(arg.clone());
        }
    }
    (positional, flags)
}

fn resolution_flag(flags: &HashMap<String, String>) -> Result<Resolution, String> {
    match flags.get("resolution").map(String::as_str).unwrap_or("fine") {
        "coarse" => Ok(Resolution::Coarse),
        "fine" => Ok(Resolution::Fine),
        "custom" => Ok(Resolution::Custom),
        other => Err(format!("unknown resolution `{other}` (coarse|fine|custom)")),
    }
}

fn solver_flag(flags: &HashMap<String, String>) -> Result<FeaSolver, String> {
    match flags.get("solver") {
        Some(v) => v.parse(),
        None => Ok(FeaSolver::default()),
    }
}

fn orientation_flag(flags: &HashMap<String, String>) -> Result<Orientation, String> {
    match flags.get("orientation").map(String::as_str).unwrap_or("xy") {
        "xy" | "x-y" => Ok(Orientation::Xy),
        "xz" | "x-z" => Ok(Orientation::Xz),
        other => Err(format!("unknown orientation `{other}` (xy|xz)")),
    }
}

/// Builds one of the built-in demo parts by name, protected or intact.
fn demo_part(kind: &str, intact: bool) -> Result<Part, String> {
    match kind {
        "bar" => {
            let dims = TensileBarDims::default();
            if intact { tensile_bar(&dims) } else { tensile_bar_with_spline(&dims) }
        }
        "bracket" => {
            let dims = BracketDims::default();
            if intact { bracket(&dims) } else { bracket_with_spline(&dims) }
        }
        "prism" => {
            let dims = PrismDims::default();
            if intact {
                Ok(intact_prism(&dims))
            } else {
                prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
            }
        }
        other => return Err(format!("unknown part `{other}` (bar|bracket|prism)")),
    }
    .map_err(|e| e.to_string())
}

/// `obfuscade protect` — build and export a demo part.
pub fn protect(args: &[String]) -> CliResult {
    let (_, flags) = parse_flags(args);
    let out = flags.get("out").ok_or("protect requires --out FILE.stl")?;
    let resolution = resolution_flag(&flags)?;
    let intact = flags.contains_key("intact");
    let part = demo_part(flags.get("part").map(String::as_str).unwrap_or("bar"), intact)?;

    let resolved = part.resolve().map_err(|e| e.to_string())?;
    let mesh = tessellate_part(&resolved, &resolution.params());
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut writer = BufWriter::new(file);
    write_binary_stl(&mesh, &mut writer).map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} ({} security features), {} triangles at {resolution} resolution",
        part.name(),
        part.security_feature_count(),
        mesh.triangle_count()
    );
    Ok(())
}

/// `obfuscade inspect` — geometry review of an STL file.
pub fn inspect(args: &[String]) -> CliResult {
    let (positional, _) = parse_flags(args);
    let path = positional.first().ok_or("inspect requires an STL file argument")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mesh = read_stl(BufReader::new(file)).map_err(|e| e.to_string())?;
    let topo = analyze_topology(&mesh);
    println!("file            : {path}");
    println!("triangles       : {}", mesh.triangle_count());
    println!("vertices        : {}", mesh.vertex_count());
    println!("edges           : {}", topo.edges);
    println!("watertight      : {}", topo.is_watertight());
    println!("boundary edges  : {}", topo.boundary_edges);
    println!("non-manifold    : {}", topo.non_manifold_edges);
    println!("misoriented     : {}", topo.misoriented_edges);
    println!("T-junctions     : {}", t_junction_count(&mesh, am_geom::Tolerance::new(1e-6)));
    println!("enclosed volume : {:.1} mm³", mesh.signed_volume());
    println!("surface area    : {:.1} mm²", mesh.surface_area());
    let fp = am_mesh::fingerprint(&mesh);
    println!("fingerprint     : {:016x} ({} bytes)", fp.hash, fp.bytes);
    println!("bodies          : {}", mesh.connected_components().len());
    Ok(())
}

/// `obfuscade slice` — slice an STL into G-code.
pub fn slice(args: &[String]) -> CliResult {
    let (positional, flags) = parse_flags(args);
    let path = positional.first().ok_or("slice requires an STL file argument")?;
    let out = flags.get("out").ok_or("slice requires --out FILE.gcode")?;
    let orientation = orientation_flag(&flags)?;
    let layer: f64 = flags
        .get("layer")
        .map(|v| v.parse().map_err(|_| format!("bad --layer value `{v}`")))
        .transpose()?
        .unwrap_or(0.1778);

    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mesh = read_stl(BufReader::new(file)).map_err(|e| e.to_string())?;
    // Recover the bodies of a multi-body STL (disjoint shells slice as
    // separate bodies, exactly like CatalystEX) before slicing.
    let shells = mesh.connected_components();
    let oriented = orient_shells(&shells, orientation);
    // Place the part away from the bed corner (perimeter insets may
    // overshoot the footprint by a fraction of a road width).
    let margin = am_geom::Transform3::translation(am_geom::Vec3::new(5.0, 5.0, 0.0));
    let placed: Vec<_> = oriented.iter().map(|m| m.transformed(&margin)).collect();
    let config = SlicerConfig { layer_height: layer, ..SlicerConfig::default() };
    config.validate().map_err(|e| e.to_string())?;
    let sliced = try_slice_shells(&placed, layer).map_err(|e| e.to_string())?;
    let toolpath = try_generate_toolpath(&sliced, &config).map_err(|e| e.to_string())?;
    let gcode = to_gcode(&toolpath);
    std::fs::write(out, &gcode).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: {} bodies, {} layers, {} roads, {:.0} mm of extrusion ({orientation} orientation)",
        shells.len(),
        sliced.layer_count(),
        toolpath.roads.len(),
        toolpath.roads.iter().map(|r| r.length()).sum::<f64>()
    );
    Ok(())
}

fn print_gcode(path: &str, flags: &HashMap<String, String>) -> Result<PrintedPart, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let toolpath = parse_gcode(&text).map_err(|e| e.to_string())?;
    let (profile, envelope) = match flags.get("machine").map(String::as_str).unwrap_or("fdm") {
        "fdm" => (PrinterProfile::dimension_elite(), BuildEnvelope::dimension_elite()),
        "polyjet" => (PrinterProfile::objet30_pro(), BuildEnvelope::objet30_pro()),
        other => return Err(format!("unknown machine `{other}` (fdm|polyjet)")),
    };
    let violations = check_limits(&toolpath, &envelope);
    if !violations.is_empty() {
        return Err(format!(
            "firmware rejected the part program: {} (and {} more)",
            violations[0],
            violations.len().saturating_sub(1)
        ));
    }
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().map_err(|_| format!("bad --seed value `{v}`")))
        .transpose()?
        .unwrap_or(1);
    let mut printed =
        PrintedPart::try_from_toolpath(&toolpath, &profile, am_geom::Transform3::identity(), seed)
            .map_err(|e| e.to_string())?;
    printed.dissolve_support();
    Ok(printed)
}

/// `obfuscade print` — simulate a print and report the artifact scan.
pub fn print(args: &[String]) -> CliResult {
    let (positional, flags) = parse_flags(args);
    let path = positional.first().ok_or("print requires a G-code file argument")?;
    let printed = print_gcode(path, &flags)?;
    let scan = am_printer::scan(&printed);
    let (nx, ny, nz) = printed.dims();
    println!("machine         : {}", printed.profile().name);
    println!("voxel grid      : {nx} × {ny} × {nz}");
    println!("part weight     : {:.2} g", printed.weight_g());
    println!("internal voids  : {:.1} mm³", scan.internal_void_volume);
    println!("trapped support : {} voxels", scan.internal_support_voxels);
    println!("cold joints     : {:.1} mm²", scan.cold_joint_area);
    Ok(())
}

/// `obfuscade authenticate` — classify a printed artifact.
///
/// Without `--reference`, absolute thresholds are used (fine for simple
/// solids); with `--reference GENUINE.gcode`, the verdict is based on the
/// defect signature *in excess of* the genuine part's — which is what a
/// real inspection lab does, since legitimate geometry (through-holes,
/// lattices) also scans as internal structure.
pub fn authenticate(args: &[String]) -> CliResult {
    let (positional, flags) = parse_flags(args);
    let path = positional.first().ok_or("authenticate requires a G-code file argument")?;
    let printed = print_gcode(path, &flags)?;
    let scan = am_printer::scan(&printed);
    let (ref_joints, ref_voids) = match flags.get("reference") {
        Some(ref_path) => {
            let reference = print_gcode(ref_path, &flags)?;
            let ref_scan = am_printer::scan(&reference);
            (ref_scan.cold_joint_area, ref_scan.internal_void_volume)
        }
        None => (0.0, 0.0),
    };
    let joints = (scan.cold_joint_area - ref_joints).max(0.0);
    let voids = (scan.internal_void_volume - ref_voids).max(0.0);
    println!("cold-joint area : {:.1} mm² (excess {joints:.1})", scan.cold_joint_area);
    println!("internal voids  : {:.1} mm³ (excess {voids:.1})", scan.internal_void_volume);
    let verdict = if joints > 10.0 || voids > 20.0 {
        "COUNTERFEIT — planted-feature signature present"
    } else {
        "genuine — no planted-feature signature beyond the reference design"
    };
    println!("verdict         : {verdict}");
    Ok(())
}

/// `obfuscade preview` — ASCII rendering of one sliced layer.
pub fn preview(args: &[String]) -> CliResult {
    let (positional, flags) = parse_flags(args);
    let path = positional.first().ok_or("preview requires an STL file argument")?;
    let orientation = orientation_flag(&flags)?;
    let layer_height: f64 = flags
        .get("layer")
        .map(|v| v.parse().map_err(|_| format!("bad --layer value `{v}`")))
        .transpose()?
        .unwrap_or(0.1778);

    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mesh = read_stl(BufReader::new(file)).map_err(|e| e.to_string())?;
    let shells = mesh.connected_components();
    let oriented = orient_shells(&shells, orientation);
    let sliced = try_slice_shells(&oriented, layer_height).map_err(|e| e.to_string())?;
    if sliced.layers.is_empty() {
        return Err("the model sliced to zero layers".into());
    }
    let index: usize = flags
        .get("layer-index")
        .map(|v| v.parse().map_err(|_| format!("bad --layer-index value `{v}`")))
        .transpose()?
        .unwrap_or(sliced.layers.len() / 2)
        .min(sliced.layers.len() - 1);
    let layer = &sliced.layers[index];
    let bounds = am_geom::Aabb2::new(
        am_geom::Point2::new(sliced.bounds.min.x, sliced.bounds.min.y),
        am_geom::Point2::new(sliced.bounds.max.x, sliced.bounds.max.y),
    )
    .inflated(0.5);
    let raster = am_slicer::rasterize_layer(layer, bounds, 0.1, true);
    println!(
        "layer {index}/{} at z = {:.3} mm ({} contours) — '#' model, '.' support, '!' seam gap",
        sliced.layers.len() - 1,
        layer.z,
        layer.loops.len()
    );
    print!("{}", am_slicer::render_layer_with_seam(&raster, 110, 1.0));
    Ok(())
}

/// `obfuscade faults` — run the pipeline under a deterministic fault plan.
///
/// With `--list`, prints the documented single-fault catalog (the Table 1
/// attack classes). Otherwise the positional arguments form a fault-plan
/// spec (`stl.degenerate=3 firmware.feed=50 …`) or name a catalog entry,
/// and the demo part is driven through [`run_pipeline_with_faults`]: a
/// degraded-but-completed run prints its stage outcomes and diagnostics,
/// an aborted run reports the typed error and the stage that raised it.
pub fn faults(args: &[String]) -> CliResult {
    let (positional, flags) = parse_flags(args);
    if flags.contains_key("list") {
        println!("{:<20} PLAN", "NAME");
        for (name, plan) in FaultPlan::catalog() {
            println!("{name:<20} {plan}");
        }
        return Ok(());
    }

    let spec = positional.join(" ");
    let mut fault_plan = match FaultPlan::catalog().into_iter().find(|(name, _)| *name == spec) {
        Some((_, plan)) => plan,
        None => spec.parse::<FaultPlan>().map_err(|e| e.to_string())?,
    };
    if let Some(seed) = flags.get("seed") {
        let seed: u64 = seed.parse().map_err(|_| format!("bad --seed value `{seed}`"))?;
        fault_plan = fault_plan.with_seed(seed);
    }

    let part = demo_part(flags.get("part").map(String::as_str).unwrap_or("prism"), false)?;
    let resolution = match flags.get("resolution") {
        Some(_) => resolution_flag(&flags)?,
        None => Resolution::Coarse,
    };
    let orientation = orientation_flag(&flags)?;
    let plan = ProcessPlan::fdm(resolution, orientation);
    println!("part            : {}", part.name());
    println!("process         : {resolution} resolution, {orientation} orientation");
    println!("fault plan      : {fault_plan}");
    match run_pipeline_with_faults(&part, &plan, &fault_plan) {
        Ok(out) => {
            println!("stages:");
            for outcome in &out.stages {
                println!("  {:<10} {:?}", outcome.stage.to_string(), outcome.status);
            }
            if out.diagnostics.is_empty() {
                println!("diagnostics     : none (clean run)");
            } else {
                println!("diagnostics:");
                for d in &out.diagnostics {
                    println!("  {d}");
                }
            }
            println!(
                "toolpath        : {} layers, {:.0} mm extruded, {:.0} s estimated",
                out.toolpath.layers, out.toolpath.model_mm, out.toolpath.time_s
            );
            println!("internal voids  : {:.1} mm³", out.scan.internal_void_volume);
            println!("cold joints     : {:.1} mm²", out.scan.cold_joint_area);
            Ok(())
        }
        Err(e) => Err(format!("pipeline aborted in the {} stage: {e}", e.stage())),
    }
}

/// `obfuscade audit` — the paper's Table 1 / Fig. 2.
pub fn audit(_args: &[String]) -> CliResult {
    print!("{}", obfuscade::risk::render_risk_table());
    println!();
    for a in obfuscade::risk::attack_taxonomy() {
        println!("  [{:<17}] {:<45} → {}", a.level.to_string(), a.name, a.goal);
    }
    Ok(())
}

/// `obfuscade report` — regenerate paper artifacts.
pub fn report(args: &[String]) -> CliResult {
    use obfuscade_bench::experiments as e;
    let (positional, flags) = parse_flags(args);
    let which = positional.first().map(String::as_str).unwrap_or("all");
    let replicates: usize = flags
        .get("replicates")
        .map(|v| v.parse().map_err(|_| format!("bad --replicates value `{v}`")))
        .transpose()?
        .unwrap_or(3);
    let sections: Vec<String> = match which {
        "table1" => vec![e::table1_risks()],
        "fig3" => vec![e::fig3_stages()],
        "fig4" => vec![e::fig4_gaps()],
        "fig5" => vec![e::fig5_resolution()],
        "fig7" => vec![e::fig7_slicing()],
        "fig8" => vec![e::fig8_surface()],
        "fig9" => vec![e::fig9_fracture()],
        "table2" => vec![e::table2_tensile(replicates)],
        "table3" => vec![e::table3_printing()],
        "sidechannel" => vec![e::sidechannel_recon()],
        // Not part of `all`: the full ROC sweep is deliberately outside
        // the timed 15-section suite (see `bench_end_to_end`).
        "detect" => vec![e::detection_roc()],
        "keyspace" => vec![e::ablation_keyspace()],
        "multikey" => vec![e::ablation_multikey()],
        "sparse" => vec![e::ablation_sparse_infill()],
        "repair" => vec![e::ablation_repair()],
        "auth" => vec![e::authentication_demo()],
        "all" => vec![
            e::table1_risks(),
            e::fig3_stages(),
            e::fig4_gaps(),
            e::fig5_resolution(),
            e::fig7_slicing(),
            e::fig8_surface(),
            e::table2_tensile(replicates),
            e::fig9_fracture(),
            e::table3_printing(),
            e::sidechannel_recon(),
            e::ablation_keyspace(),
            e::ablation_multikey(),
            e::ablation_sparse_infill(),
            e::ablation_repair(),
            e::authentication_demo(),
        ],
        other => return Err(format!("unknown report `{other}`")),
    };
    for (i, s) in sections.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(100));
        }
        print!("{s}");
    }
    Ok(())
}

/// `obfuscade sweep` — evaluate the full process-key space through the
/// shared-prefix batch engine.
///
/// This is the defender's parameter study: every Table 3 CAD recipe at
/// every resolution × orientation, one pipeline evaluation per key, with
/// shared stage prefixes (the same recipe meshed at the same resolution)
/// computed exactly once via the content-addressed stage cache. With
/// `--tensile` each key's artifact also goes through the virtual tensile
/// test under the `--solver` of choice, replicates drawing their solver
/// scratch from the process-wide pool. With `--cache-stats` the cache
/// (and, under `--tensile`, solver-pool) counters are printed so the
/// prefix sharing and state reuse are observable.
pub fn sweep(args: &[String]) -> CliResult {
    use obfuscade::{sweep_key_space, EmbeddedSphereScheme, ProcessKey, StageCache};
    let (positional, flags) = parse_flags(args);
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let threads: usize = flags
        .get("threads")
        .map(|v| v.parse().map_err(|_| format!("bad --threads value `{v}`")))
        .transpose()?
        .unwrap_or_else(|| obfuscade_bench::perf::BenchConfig::default().threads)
        .max(1);
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().map_err(|_| format!("bad --seed value `{v}`")))
        .transpose()?
        .unwrap_or(1);
    let tensile = flags.contains_key("tensile");
    let solver = solver_flag(&flags)?;

    let scheme = EmbeddedSphereScheme::default();
    let base = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy)
        .with_seed(seed)
        .with_tensile(tensile)
        .with_fea_solver(solver);
    let keys = ProcessKey::key_space();
    let cache = StageCache::default();
    let start = std::time::Instant::now();
    let results = sweep_key_space(
        |recipe| scheme.part_for_recipe(recipe),
        &base,
        &keys,
        &cache,
        am_par::Parallelism::threads(threads),
    );
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    println!(
        "{:<55} {:>10} {:>12} {:>14}{}",
        "process key",
        "weight g",
        "voids mm³",
        "authenticity",
        if tensile { format!("{:>10}", "UTS MPa") } else { String::new() }
    );
    for (key, result) in &results {
        match result {
            Ok(output) => println!(
                "{:<55} {:>10.2} {:>12.1} {:>14}{}",
                key.to_string(),
                output.printed.weight_g(),
                output.scan.internal_void_volume,
                format!("{:?}", scheme.authenticate(&output.scan)),
                match &output.tensile {
                    Some(t) => format!("{:>10.2}", t.uts_mpa),
                    None => String::new(),
                }
            ),
            Err(e) => println!("{:<55} failed: {e}", key.to_string()),
        }
    }
    println!(
        "\n{} keys evaluated in {elapsed_ms:.0} ms ({threads} thread(s){})",
        results.len(),
        if tensile { format!(", {solver} tensile solver") } else { String::new() }
    );
    if flags.contains_key("cache-stats") {
        // One snapshot, one renderer: the same unified metrics surface
        // the daemon's `stats` request serializes.
        print!("{}", obfuscade::metrics::MetricsSnapshot::gather(&cache).render());
    }
    Ok(())
}

/// `obfuscade bench` — time the reference kernels against the optimized
/// kernels and emit a validated JSON report.
pub fn bench(args: &[String]) -> CliResult {
    use obfuscade_bench::perf::{run_selected_benchmarks, validate_report_json, BenchConfig};
    let (positional, flags) = parse_flags(args);
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    // `--check FILE` is the CI regression gate: validate an existing report
    // against the schema and fail if any kernel regressed below 1.0× — or,
    // with `--fea-budget-ms`, if the fea row's optimized wall clock blew
    // its budget (the PR 4 gate: ≤ half of PR 3's committed 1157.7 ms).
    if let Some(path) = flags.get("check") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let speedups = validate_report_json(&text).map_err(|e| format!("{path}: {e}"))?;
        let mut regressions = Vec::new();
        for (name, speedup) in &speedups {
            let ok = *speedup >= 1.0;
            println!("  {name:<16} {speedup:>6.2}x  {}", if ok { "ok" } else { "REGRESSION" });
            if !ok {
                regressions.push(name.clone());
            }
        }
        if !regressions.is_empty() {
            return Err(format!(
                "{path}: kernel speedup below 1.0x: {}",
                regressions.join(", ")
            ));
        }
        // PR 7: `--min-speedup printing=3.5,slicing=5.7` raises the floor
        // above the blanket 1.0× for named kernels, so a kernel that a PR
        // specifically optimized cannot silently decay back toward parity.
        if let Some(list) = flags.get("min-speedup") {
            for entry in list.split(',').filter(|e| !e.is_empty()) {
                let (name, min) = entry
                    .split_once('=')
                    .ok_or_else(|| format!("bad --min-speedup entry `{entry}` (want name=X)"))?;
                let min: f64 = min
                    .parse()
                    .map_err(|_| format!("bad --min-speedup floor in `{entry}`"))?;
                let speedup = speedups
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, s)| s)
                    .ok_or_else(|| format!("{path}: no '{name}' kernel row for --min-speedup"))?;
                if speedup < min {
                    return Err(format!(
                        "{path}: {name} speedup {speedup:.2}x below the {min:.2}x floor"
                    ));
                }
                println!("  {name:<16} {speedup:>6.2}x  >= {min:.2}x floor");
            }
        }
        if let Some(budget) = flags.get("fea-budget-ms") {
            let budget: f64 =
                budget.parse().map_err(|_| format!("bad --fea-budget-ms value `{budget}`"))?;
            let fea_ms = obfuscade_bench::perf::report_kernel_optimized_ms(&text, "fea")
                .map_err(|e| format!("{path}: {e}"))?;
            if fea_ms > budget {
                return Err(format!(
                    "{path}: fea optimized time {fea_ms:.1} ms exceeds the {budget:.1} ms budget"
                ));
            }
            println!("  fea optimized    {fea_ms:>6.1} ms  within the {budget:.1} ms budget");
        }
        // PR 5: `--require-serve` additionally insists the report carries
        // a daemon load-test result (its cleanliness was already enforced
        // by the schema validation above).
        if flags.contains_key("require-serve") {
            let served = obfuscade_bench::perf::report_has_serve(&text)
                .map_err(|e| format!("{path}: {e}"))?;
            if !served {
                return Err(format!("{path}: no serve section (daemon bench did not run)"));
            }
            println!("  serve            present  clean daemon load run");
        }
        // PR 8: absolute floors on the committed headline serve numbers
        // (the reactor-backend binary-codec point at top concurrency), so
        // a daemon-latency regression cannot hide behind the relative
        // kernel speedups.
        if let Some(ceiling) = flags.get("serve-p99-ms") {
            let ceiling: f64 = ceiling
                .parse()
                .map_err(|_| format!("bad --serve-p99-ms value `{ceiling}`"))?;
            let p99 = obfuscade_bench::perf::report_serve_number(&text, "p99_ms")
                .map_err(|e| format!("{path}: {e}"))?;
            if p99 > ceiling {
                return Err(format!(
                    "{path}: serve p99 {p99:.2} ms exceeds the {ceiling:.2} ms ceiling"
                ));
            }
            println!("  serve p99        {p99:>6.2} ms  within the {ceiling:.2} ms ceiling");
        }
        if let Some(floor) = flags.get("serve-min-rps") {
            let floor: f64 =
                floor.parse().map_err(|_| format!("bad --serve-min-rps value `{floor}`"))?;
            let rps = obfuscade_bench::perf::report_serve_number(&text, "throughput_rps")
                .map_err(|e| format!("{path}: {e}"))?;
            if rps < floor {
                return Err(format!(
                    "{path}: serve throughput {rps:.1} req/s below the {floor:.1} req/s floor"
                ));
            }
            println!("  serve rps        {rps:>6.1}     >= {floor:.1} req/s floor");
        }
        // PR 9: absolute floors on the committed routed-fleet headline
        // (the affinity point at the grid's largest node count). The
        // affinity-beats-round-robin ordering was already enforced by the
        // schema validation; these pin the absolute numbers so the warm
        // hit rate cannot erode inside the relative ordering.
        if let Some(floor) = flags.get("fleet-min-hit-rate") {
            let floor: f64 = floor
                .parse()
                .map_err(|_| format!("bad --fleet-min-hit-rate value `{floor}`"))?;
            let rate = obfuscade_bench::perf::report_fleet_number(&text, "hit_rate")
                .map_err(|e| format!("{path}: {e}"))?;
            if rate < floor {
                return Err(format!(
                    "{path}: fleet warm hit rate {rate:.1}% below the {floor:.1}% floor"
                ));
            }
            println!("  fleet hit rate   {rate:>6.1}%    >= {floor:.1}% floor");
        }
        if let Some(floor) = flags.get("fleet-min-rps") {
            let floor: f64 =
                floor.parse().map_err(|_| format!("bad --fleet-min-rps value `{floor}`"))?;
            let rps = obfuscade_bench::perf::report_fleet_number(&text, "throughput_rps")
                .map_err(|e| format!("{path}: {e}"))?;
            if rps < floor {
                return Err(format!(
                    "{path}: routed throughput {rps:.1} req/s below the {floor:.1} req/s floor"
                ));
            }
            println!("  fleet rps        {rps:>6.1}     >= {floor:.1} req/s floor");
        }
        // PR 10: absolute gates on the committed detection-sweep headline
        // (worst setup across the ROC grid). The fused-beats-each-channel
        // ordering and full fault-catalog coverage were already enforced
        // by the schema validation; these pin the absolute rates.
        if let Some(floor) = flags.get("detect-min-catch") {
            let floor: f64 = floor
                .parse()
                .map_err(|_| format!("bad --detect-min-catch value `{floor}`"))?;
            let catch = obfuscade_bench::perf::report_detect_number(&text, "min_fused_catch")
                .map_err(|e| format!("{path}: {e}"))?;
            if catch < floor {
                return Err(format!(
                    "{path}: worst-setup fused catch rate {catch:.3} below the {floor:.3} floor"
                ));
            }
            println!("  detect catch     {catch:>6.3}    >= {floor:.3} floor");
        }
        if let Some(ceiling) = flags.get("detect-max-fpr") {
            let ceiling: f64 = ceiling
                .parse()
                .map_err(|_| format!("bad --detect-max-fpr value `{ceiling}`"))?;
            let fpr = obfuscade_bench::perf::report_detect_number(&text, "max_fused_fpr")
                .map_err(|e| format!("{path}: {e}"))?;
            if fpr > ceiling {
                return Err(format!(
                    "{path}: worst-setup fused false-positive rate {fpr:.3} exceeds the \
                     {ceiling:.3} ceiling"
                ));
            }
            println!("  detect fpr       {fpr:>6.3}    <= {ceiling:.3} ceiling");
        }
        println!("{path}: schema valid, {} kernels, all speedups >= 1.0x", speedups.len());
        return Ok(());
    }
    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        flags
            .get(name)
            .map(|v| v.parse().map_err(|_| format!("bad --{name} value `{v}`")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let defaults = BenchConfig::default();
    let config = BenchConfig {
        smoke: flags.contains_key("smoke"),
        threads: parse_usize("threads", defaults.threads)?.max(1),
        replicates: parse_usize("replicates", defaults.replicates)?.max(1),
        solver: solver_flag(&flags)?,
        serve: flags.contains_key("serve"),
    };
    let out_path = flags.get("out").map(String::as_str).unwrap_or("BENCH_PR10.json");
    let only = flags.get("only").map(String::as_str);
    if let Some(name) = only {
        if !["slicing", "printing", "fea", "sweep", "all_experiments", "serve", "fleet", "detect"]
            .contains(&name)
        {
            return Err(format!("unknown kernel `{name}` for --only"));
        }
        if (name == "serve" || name == "fleet") && !config.serve {
            return Err(format!("--only {name} requires --serve"));
        }
    }

    eprintln!(
        "benchmarking {} (threads={}, replicates={}, solver={})…",
        if config.smoke { "smoke workloads" } else { "full workloads" },
        config.threads,
        config.replicates,
        config.solver
    );
    let report = run_selected_benchmarks(&config, only);
    print!("{}", report.render());

    let json = report.to_json();
    std::fs::write(out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
    // Parse the file we just wrote back in, so a malformed report fails
    // loudly here (and in the CI smoke stage) rather than downstream.
    let written = std::fs::read_to_string(out_path).map_err(|e| format!("reading back: {e}"))?;
    let speedups = validate_report_json(&written)?;
    println!(
        "\nwrote {out_path} ({} kernels, schema validated): {}",
        speedups.len(),
        speedups
            .iter()
            .map(|(name, s)| format!("{name} {s:.2}x"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

/// Resolves the daemon endpoint from `--uds PATH` / `--addr HOST:PORT`.
fn endpoint_flag(flags: &HashMap<String, String>) -> am_service::Endpoint {
    match flags.get("uds") {
        Some(path) => am_service::Endpoint::Unix(std::path::PathBuf::from(path)),
        None => am_service::Endpoint::Tcp(
            flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7777".to_string()),
        ),
    }
}

/// How long `submit --port-file` waits for the daemon to write its
/// bound address before giving up.
const PORT_FILE_DEADLINE: std::time::Duration = std::time::Duration::from_secs(10);

/// Resolves `submit`'s endpoint: an explicit `--uds` wins, then
/// `--port-file` (polled with a bounded deadline — `serve --port-file`
/// writes the file only once its listener is bound, so a script that
/// boots the daemon and immediately submits would otherwise race the
/// daemon's startup), then `--addr`.
fn submit_endpoint(flags: &HashMap<String, String>) -> Result<am_service::Endpoint, String> {
    submit_endpoint_within(flags, PORT_FILE_DEADLINE)
}

fn submit_endpoint_within(
    flags: &HashMap<String, String>,
    wait: std::time::Duration,
) -> Result<am_service::Endpoint, String> {
    if flags.contains_key("uds") {
        return Ok(endpoint_flag(flags));
    }
    let Some(path) = flags.get("port-file") else {
        return Ok(endpoint_flag(flags));
    };
    let deadline = std::time::Instant::now() + wait;
    loop {
        if let Ok(addr) = std::fs::read_to_string(path) {
            let addr = addr.trim();
            if !addr.is_empty() {
                return Ok(am_service::Endpoint::Tcp(addr.to_string()));
            }
        }
        if std::time::Instant::now() >= deadline {
            return Err(format!(
                "--port-file {path}: no daemon address appeared within {:.1} s \
                 (is `obfuscade serve --port-file {path}` running?)",
                wait.as_secs_f64()
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

fn usize_flag(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, String> {
    flags
        .get(name)
        .map(|v| v.parse().map_err(|_| format!("bad --{name} value `{v}`")))
        .transpose()
        .map(|v| v.unwrap_or(default))
}

fn u64_flag(
    flags: &HashMap<String, String>,
    name: &str,
) -> Result<Option<u64>, String> {
    flags
        .get(name)
        .map(|v| v.parse().map_err(|_| format!("bad --{name} value `{v}`")))
        .transpose()
}

fn f64_flag(
    flags: &HashMap<String, String>,
    name: &str,
) -> Result<Option<f64>, String> {
    flags
        .get(name)
        .map(|v| v.parse().map_err(|_| format!("bad --{name} value `{v}`")))
        .transpose()
}

/// `obfuscade serve` — run the obfuscation daemon until a client sends
/// `shutdown` (which drains the queue and in-flight jobs first).
pub fn serve(args: &[String]) -> CliResult {
    use am_service::{Server, ServerConfig};
    let (positional, flags) = parse_flags(args);
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7777".to_string()),
        unix_socket: flags.get("uds").map(std::path::PathBuf::from),
        workers: usize_flag(&flags, "workers", defaults.workers)?.max(1),
        queue_capacity: usize_flag(&flags, "queue", defaults.queue_capacity)?.max(1),
        cache_budget: match flags.get("cache-mb") {
            Some(v) => {
                let mb: usize =
                    v.parse().map_err(|_| format!("bad --cache-mb value `{v}`"))?;
                mb.max(1) << 20
            }
            None => defaults.cache_budget,
        },
        allow_remote_shutdown: flags.contains_key("allow-remote-shutdown"),
        spill_dir: flags.get("spill-dir").map(std::path::PathBuf::from),
        chaos: u64_flag(&flags, "chaos-seed")?.map(am_service::ChaosPlan::from_seed),
        backend: match flags.get("backend") {
            Some(name) => am_service::ConnBackend::from_name(name)?,
            None => defaults.backend,
        },
        json_only: flags.contains_key("json-only"),
        idle_timeout: match u64_flag(&flags, "idle-timeout-s")? {
            Some(secs) => std::time::Duration::from_secs(secs.max(1)),
            None => defaults.idle_timeout,
        },
        node: flags.get("node").cloned().unwrap_or_default(),
        ..defaults
    };
    let workers = config.workers;
    let queue = config.queue_capacity;
    let backend = config.backend.name();
    let uds = config.unix_socket.clone();
    let server = Server::start(config).map_err(|e| format!("serve: {e}"))?;
    let addr = server.addr().to_string();
    println!(
        "obfuscade daemon listening on {addr}{} ({workers} workers, queue {queue}, \
         {backend} backend)",
        match &uds {
            Some(path) => format!(" and {}", path.display()),
            None => String::new(),
        }
    );
    // Scripts poll for this file instead of parsing stdout (port 0 binds
    // an ephemeral port only the daemon knows).
    if let Some(path) = flags.get("port-file") {
        std::fs::write(path, &addr).map_err(|e| format!("writing {path}: {e}"))?;
    }
    server.join();
    println!("daemon drained and stopped");
    Ok(())
}

/// Parses one `--to` element: `unix:PATH` is a Unix-socket backend,
/// anything else a TCP `HOST:PORT`.
fn backend_endpoint(spec: &str) -> Result<am_service::Endpoint, String> {
    if let Some(path) = spec.strip_prefix("unix:") {
        if path.is_empty() {
            return Err("empty unix: backend path in --to".to_string());
        }
        return Ok(am_service::Endpoint::Unix(std::path::PathBuf::from(path)));
    }
    if !spec.contains(':') {
        return Err(format!("backend `{spec}` is neither HOST:PORT nor unix:PATH"));
    }
    Ok(am_service::Endpoint::Tcp(spec.to_string()))
}

/// `obfuscade route` — run the cache-affinity router in front of a fleet
/// of backend daemons until a client sends `shutdown`.
pub fn route(args: &[String]) -> CliResult {
    use am_router::{RoutePolicy, Router, RouterConfig};
    use am_service::ServerConfig;
    let (positional, flags) = parse_flags(args);
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let to = flags.get("to").ok_or("route requires --to EP1,EP2,... (backend endpoints)")?;
    let backends = to
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| backend_endpoint(s.trim()))
        .collect::<Result<Vec<_>, _>>()?;
    if backends.is_empty() {
        return Err("route requires at least one backend in --to".to_string());
    }
    let front_defaults = ServerConfig::default();
    let defaults = RouterConfig::default();
    let config = RouterConfig {
        front: ServerConfig {
            addr: flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7878".to_string()),
            unix_socket: flags.get("uds").map(std::path::PathBuf::from),
            // Forwarding workers block on backend round trips, so the
            // front pool defaults wider than a compute daemon's.
            workers: usize_flag(&flags, "workers", 8)?.max(1),
            queue_capacity: usize_flag(&flags, "queue", front_defaults.queue_capacity)?.max(1),
            allow_remote_shutdown: flags.contains_key("allow-remote-shutdown"),
            backend: match flags.get("backend") {
                Some(name) => am_service::ConnBackend::from_name(name)?,
                None => front_defaults.backend,
            },
            json_only: flags.contains_key("json-only"),
            node: flags.get("node").cloned().unwrap_or_default(),
            ..front_defaults
        },
        backends,
        conns_per_backend: usize_flag(&flags, "conns", defaults.conns_per_backend)?.max(1),
        policy: match flags.get("policy") {
            Some(name) => RoutePolicy::from_name(name)?,
            None => defaults.policy,
        },
        fail_threshold: u64_flag(&flags, "fail-threshold")?
            .map_or(defaults.fail_threshold, |n| n.clamp(1, u32::MAX as u64) as u32),
        probe_every: u64_flag(&flags, "probe-every")?.unwrap_or(defaults.probe_every),
        retry: am_service::RetryPolicy {
            attempts: u64_flag(&flags, "retries")?
                .map_or(defaults.retry.attempts, |n| n.min(64) as u32)
                .max(1),
            ..defaults.retry
        },
    };
    let policy = config.policy.name();
    let n = config.backends.len();
    let workers = config.front.workers;
    let uds = config.front.unix_socket.clone();
    let router = Router::start(config).map_err(|e| format!("route: {e}"))?;
    let addr = router.addr().to_string();
    println!(
        "obfuscade router listening on {addr}{} ({policy} routing over {n} backends, \
         {workers} forwarding workers)",
        match &uds {
            Some(path) => format!(" and {}", path.display()),
            None => String::new(),
        }
    );
    if let Some(path) = flags.get("port-file") {
        std::fs::write(path, &addr).map_err(|e| format!("writing {path}: {e}"))?;
    }
    router.join();
    println!("router drained and stopped");
    Ok(())
}

/// Builds a [`am_service::JobSpec`] from `submit`'s job flags, starting
/// from the service defaults and overriding only what was given.
fn job_spec_flags(flags: &HashMap<String, String>) -> Result<am_service::JobSpec, String> {
    let mut job = am_service::JobSpec::default();
    if let Some(part) = flags.get("part") {
        job.part = part.clone();
    }
    job.intact = flags.contains_key("intact");
    if flags.contains_key("resolution") {
        job.resolution = resolution_flag(flags)?;
    }
    if flags.contains_key("orientation") {
        job.orientation = orientation_flag(flags)?;
    }
    if let Some(seed) = u64_flag(flags, "seed")? {
        job.seed = seed;
    }
    job.tensile = flags.contains_key("tensile");
    if flags.contains_key("solver") {
        job.solver = solver_flag(flags)?;
    }
    if let Some(layer) = flags.get("layer") {
        let mm: f64 = layer.parse().map_err(|_| format!("bad --layer value `{layer}`"))?;
        job.layer = Some(mm);
    }
    if let Some(spec) = flags.get("faults") {
        job.faults = spec.clone();
    }
    if let Some(seed) = u64_flag(flags, "fault-seed")? {
        job.fault_seed = seed;
    }
    // Round-trip through the wire encoding so bad part names or fault
    // specs fail here, client-side, with the same message the daemon
    // would produce.
    job.build_part()?;
    job.fault_plan()?;
    Ok(job)
}

/// `obfuscade submit` — one request to a running daemon, or a whole
/// verified load run with `--load N`.
pub fn submit(args: &[String]) -> CliResult {
    use am_service::{expected_results_wire, run_load_with, Client, Response, RetryingClient};
    use obfuscade::json::Json;
    let (positional, flags) = parse_flags(args);
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let endpoint = submit_endpoint(&flags)?;
    let job = job_spec_flags(&flags)?;
    let deadline_ms = u64_flag(&flags, "deadline-ms")?;
    let codec = match flags.get("codec") {
        Some(name) => am_service::Codec::from_name(name)?,
        None => am_service::Codec::Json,
    };
    let policy = am_service::RetryPolicy {
        attempts: u64_flag(&flags, "retries")?
            .map_or(am_service::RetryPolicy::default().attempts, |n| n.min(64) as u32)
            .max(1),
        ..am_service::RetryPolicy::default()
    };

    // Load-generator mode: `--load N [--concurrency C]` fires N identical
    // run requests over C connections and byte-compares every response
    // against an in-process reference run of the same job.
    if let Some(total) = u64_flag(&flags, "load")? {
        let concurrency = usize_flag(&flags, "concurrency", 4)?.max(1);
        let jobs = vec![job];
        let expected = expected_results_wire(&jobs)?;
        let report =
            run_load_with(&endpoint, total, concurrency, &jobs, Some(&expected), &policy, codec);
        println!(
            "{} requests over {} workers / {} connects ({}) in {:.2} s: p50 {:.1} ms, \
             p95 {:.1} ms, p99 {:.1} ms, {:.1} req/s{}",
            report.requests,
            report.concurrency,
            report.connects,
            codec.name(),
            report.wall_s,
            report.quantile_ms(0.50),
            report.quantile_ms(0.95),
            report.quantile_ms(0.99),
            report.throughput_rps(),
            if report.retries > 0 {
                format!(" ({} retries)", report.retries)
            } else {
                String::new()
            }
        );
        if !report.clean() {
            return Err(format!(
                "load run was not clean: {} errors, {} dropped connections, {} result mismatches",
                report.errors, report.dropped_connections, report.mismatches
            ));
        }
        println!("all responses byte-identical to the in-process run");
        return Ok(());
    }

    // `ping` and `shutdown` stay on the plain client: ping is the
    // liveness probe (retrying would mask exactly what it measures) and
    // shutdown must never be resent.
    let mut retrying = RetryingClient::new_with_codec(&endpoint, policy, codec);
    match flags.get("kind").map(String::as_str).unwrap_or("run") {
        "ping" => {
            let mut client = Client::connect_with_codec(&endpoint, None, codec)
                .map_err(|e| format!("connect: {e}"))?;
            client.ping()?;
            println!("pong");
        }
        "stats" => {
            println!("{}", retrying.stats()?.render());
        }
        "shutdown" => {
            let mut client = Client::connect_with_codec(&endpoint, None, codec)
                .map_err(|e| format!("connect: {e}"))?;
            let completed = client.shutdown()?;
            println!("daemon drained and stopped ({completed} jobs completed over its lifetime)");
        }
        "run" => match retrying.run(&[job], deadline_ms)? {
            Response::Results { results, .. } => println!("{}", Json::Array(results).render()),
            Response::Error { error, message, .. } => {
                return Err(format!("{}: {message}", error.name()))
            }
            other => return Err(format!("unexpected response {other:?}")),
        },
        "authenticate" => match retrying.authenticate(&job, deadline_ms)? {
            Response::Verdict { verdict, cold_joint_mm2, void_mm3, .. } => println!(
                "{verdict} (cold joints {cold_joint_mm2:.1} mm², voids {void_mm3:.1} mm³)"
            ),
            Response::Error { error, message, .. } => {
                return Err(format!("{}: {message}", error.name()))
            }
            other => return Err(format!("unexpected response {other:?}")),
        },
        // PR 10: side-channel detection and stego sanitization, served as
        // batch jobs. `--verify` re-runs the job in-process through
        // `am-detect` and byte-compares the served reports against it —
        // the CI detect stage's contract check.
        "detect" => {
            let spec = am_service::DetectSpec {
                job,
                quality: flags
                    .get("quality")
                    .cloned()
                    .unwrap_or_else(|| am_service::DetectSpec::default().quality),
                jam_amplitude: f64_flag(&flags, "jam")?.unwrap_or(0.0),
                trace_seed: u64_flag(&flags, "trace-seed")?.unwrap_or(1),
            };
            let jobs = vec![spec];
            let expected = flags
                .contains_key("verify")
                .then(|| am_service::expected_detections_wire(&jobs))
                .transpose()?;
            match retrying.detect(&jobs, deadline_ms)? {
                Response::Detections { reports, .. } => {
                    let rendered = Json::Array(reports).render();
                    verify_wire(&expected, &rendered, "detection reports")?;
                    println!("{rendered}");
                }
                Response::Error { error, message, .. } => {
                    return Err(format!("{}: {message}", error.name()))
                }
                other => return Err(format!("unexpected response {other:?}")),
            }
        }
        "sanitize" => {
            let defaults = am_service::SanitizeSpec::default();
            let spec = am_service::SanitizeSpec {
                job,
                payload_seed: u64_flag(&flags, "payload-seed")?.unwrap_or(defaults.payload_seed),
                payload_bits: u64_flag(&flags, "payload-bits")?.unwrap_or(defaults.payload_bits),
            };
            let jobs = vec![spec];
            let expected = flags
                .contains_key("verify")
                .then(|| am_service::expected_sanitize_wire(&jobs))
                .transpose()?;
            match retrying.sanitize(&jobs, deadline_ms)? {
                Response::Sanitized { reports, .. } => {
                    let rendered = Json::Array(reports).render();
                    verify_wire(&expected, &rendered, "sanitize reports")?;
                    println!("{rendered}");
                }
                Response::Error { error, message, .. } => {
                    return Err(format!("{}: {message}", error.name()))
                }
                other => return Err(format!("unexpected response {other:?}")),
            }
        }
        other => {
            return Err(format!(
                "unknown request kind `{other}` \
                 (ping|stats|run|authenticate|detect|sanitize|shutdown)"
            ))
        }
    }
    Ok(())
}

/// Byte-compares a served wire rendering against the in-process
/// reference (`None` when `--verify` wasn't requested).
fn verify_wire(expected: &Option<String>, served: &str, what: &str) -> Result<(), String> {
    match expected {
        None => Ok(()),
        Some(reference) if reference == served => {
            eprintln!("verified: served {what} byte-identical to the in-process run");
            Ok(())
        }
        Some(_) => Err(format!(
            "served {what} diverged from the in-process reference run \
             (the wire broke the determinism contract)"
        )),
    }
}

/// `obfuscade detect-roc` — the in-process detection ROC sweep: every
/// detector × the full fault catalog × capture qualities × NoiseEmitter
/// jamming amplitudes (the `--jam` axis is the countermeasure study:
/// nonzero amplitudes turn the defender's acoustic jammer on).
pub fn detect_roc(args: &[String]) -> CliResult {
    use am_detect::{run_roc_sweep, RocConfig};
    use obfuscade::{Deadline, StageCache};
    let (positional, flags) = parse_flags(args);
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let job = am_service::JobSpec {
        part: flags.get("part").cloned().unwrap_or_else(|| "prism".to_string()),
        resolution: match flags.contains_key("resolution") {
            true => resolution_flag(&flags)?,
            false => Resolution::Coarse,
        },
        orientation: orientation_flag(&flags)?,
        ..am_service::JobSpec::default()
    };
    let part = job.build_part()?;
    let plan = job.plan();

    let mut config = RocConfig::default();
    if let Some(list) = flags.get("quality") {
        config.qualities = list.split(',').map(str::to_string).collect();
        for q in &config.qualities {
            am_detect::capture_quality(q)?;
        }
    }
    if let Some(list) = flags.get("jam") {
        config.jam_amplitudes = list
            .split(',')
            .map(|v| v.parse().map_err(|_| format!("bad --jam amplitude `{v}`")))
            .collect::<Result<_, String>>()?;
    }
    if let Some(n) = u64_flag(&flags, "replicates")? {
        config.replicates = (n as usize).max(1);
    }

    let cache = StageCache::with_budget(StageCache::DEFAULT_BUDGET);
    let table = run_roc_sweep(&part, &plan, &config, &cache, Deadline::none())
        .map_err(|e| e.to_string())?;
    if flags.contains_key("json") {
        println!("{}", table.to_json().render());
        return Ok(());
    }

    println!(
        "detection ROC sweep — {} faults × {} capture setups, {} replicates each",
        table.faults_covered,
        table.setups.len(),
        config.replicates
    );
    println!(
        "{:<12} {:>5}  {:>11} {:>11} {:>11}  {:>9} {:>9} {:>9}",
        "quality", "jam", "audio catch", "power catch", "fused catch", "audio fpr", "power fpr",
        "fused fpr"
    );
    for s in &table.setups {
        println!(
            "{:<12} {:>5.2}  {:>11.3} {:>11.3} {:>11.3}  {:>9.3} {:>9.3} {:>9.3}",
            s.quality,
            s.jam_amplitude,
            s.audio_catch,
            s.power_catch,
            s.fused_catch,
            s.audio_fpr,
            s.power_fpr,
            s.fused_fpr
        );
    }
    // Per-fault worst case across all setups: which catalog attacks
    // survive the fused detector under the least favorable capture.
    println!("\nper-fault worst-case fused catch (min over setups):");
    let mut faults: Vec<&str> = Vec::new();
    for c in &table.cells {
        if !faults.contains(&c.fault.as_str()) {
            faults.push(&c.fault);
        }
    }
    for fault in faults {
        let worst = table
            .cells
            .iter()
            .filter(|c| c.fault == fault)
            .map(|c| c.fused_catch)
            .fold(f64::INFINITY, f64::min);
        let blocked = table.cells.iter().any(|c| c.fault == fault && c.blocked);
        println!(
            "  {fault:<24} {worst:>6.3}{}",
            if blocked { "  (blocked upstream of the printer)" } else { "" }
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parser_splits_positionals_and_flags() {
        let args: Vec<String> =
            ["file.stl", "--out", "x.gcode", "--intact"].iter().map(|s| s.to_string()).collect();
        let (pos, flags) = parse_flags(&args);
        assert_eq!(pos, vec!["file.stl"]);
        assert_eq!(flags.get("out").map(String::as_str), Some("x.gcode"));
        assert_eq!(flags.get("intact").map(String::as_str), Some("true"));
    }

    #[test]
    fn resolution_and_orientation_flags_validate() {
        let mut flags = HashMap::new();
        assert_eq!(resolution_flag(&flags).unwrap(), Resolution::Fine);
        assert_eq!(orientation_flag(&flags).unwrap(), Orientation::Xy);
        flags.insert("resolution".into(), "bogus".into());
        assert!(resolution_flag(&flags).is_err());
        flags.insert("orientation".into(), "xz".into());
        assert_eq!(orientation_flag(&flags).unwrap(), Orientation::Xz);
    }

    #[test]
    fn protect_inspect_slice_print_round_trip() {
        let dir = std::env::temp_dir().join(format!("obfuscade-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let stl = dir.join("bar.stl").to_string_lossy().to_string();
        let gcode = dir.join("bar.gcode").to_string_lossy().to_string();

        protect(&["--part".into(), "bar".into(), "--out".into(), stl.clone()]).unwrap();
        inspect(std::slice::from_ref(&stl)).unwrap();
        slice(&[stl.clone(), "--orientation".into(), "xz".into(), "--out".into(), gcode.clone()])
            .unwrap();
        // A non-positive --layer must surface as a typed error, not a panic.
        let bad = slice(&[
            stl,
            "--orientation".into(),
            "xz".into(),
            "--out".into(),
            gcode.clone(),
            "--layer".into(),
            "0".into(),
        ]);
        assert!(bad.unwrap_err().contains("layer_height must be positive"));
        print(std::slice::from_ref(&gcode)).unwrap();
        authenticate(std::slice::from_ref(&gcode)).unwrap();
        authenticate(&[gcode.clone(), "--reference".into(), gcode]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_flags_are_reported() {
        assert!(protect(&["--out".into(), "/nonexistent-dir-xyz/o.stl".into()]).is_err());
        assert!(inspect(&[]).is_err());
        assert!(slice(&[]).is_err());
    }

    #[test]
    fn serve_and_submit_round_trip_through_the_daemon() {
        let dir = std::env::temp_dir().join(format!("obfuscade-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("daemon.addr").to_string_lossy().to_string();

        // `serve` blocks until a shutdown request drains it, so it runs on
        // its own thread; the port file is how we learn the ephemeral port.
        let serve_args: Vec<String> = [
            "--addr", "127.0.0.1:0", "--workers", "2", "--port-file", port_file.as_str(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let daemon = std::thread::spawn(move || serve(&serve_args));
        // `submit --port-file` polls for the daemon's address itself —
        // no external wait loop needed even though serve is still
        // booting on the other thread.
        let with_addr = |extra: &[&str]| -> Vec<String> {
            ["--port-file", port_file.as_str()].iter().chain(extra).map(|s| s.to_string()).collect()
        };
        submit(&with_addr(&["--kind", "ping"])).unwrap();
        submit(&with_addr(&["--kind", "run", "--seed", "2"])).unwrap();
        submit(&with_addr(&["--kind", "authenticate"])).unwrap();
        submit(&with_addr(&["--kind", "stats"])).unwrap();
        submit(&with_addr(&["--load", "6", "--concurrency", "2"])).unwrap();
        // PR 10: detection and sanitization, byte-verified against the
        // in-process am-detect run, on both wire codecs.
        submit(&with_addr(&[
            "--kind", "detect", "--faults", "toolpath.dup=0.5", "--jam", "1.5", "--verify",
        ]))
        .unwrap();
        submit(&with_addr(&[
            "--kind", "sanitize", "--payload-seed", "7", "--codec", "binary", "--verify",
        ]))
        .unwrap();
        // Client-side validation catches bad job specs before any I/O.
        assert!(submit(&with_addr(&["--part", "teapot"])).is_err());
        assert!(submit(&with_addr(&["--kind", "warp"])).is_err());
        submit(&with_addr(&["--kind", "shutdown"])).unwrap();
        daemon.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detect_roc_sweeps_the_jamming_axis() {
        // Smallest real sweep: one quality, jamming off vs on, one
        // replicate — still covers the full 15-fault catalog.
        detect_roc(&[
            "--quality".into(),
            "smartphone".into(),
            "--jam".into(),
            "0,2.5".into(),
            "--replicates".into(),
            "1".into(),
            "--json".into(),
        ])
        .unwrap();
        // Bad axes fail client-side with typed messages.
        assert!(detect_roc(&["--quality".into(), "telepathy".into()]).is_err());
        assert!(detect_roc(&["--jam".into(), "loud".into()]).is_err());
        assert!(detect_roc(&["extra".into()]).is_err());
    }

    #[test]
    fn route_round_trips_jobs_through_backends() {
        let dir = std::env::temp_dir().join(format!("obfuscade-route-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let poll_addr = |path: &str| -> String {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                if let Ok(addr) = std::fs::read_to_string(path) {
                    if !addr.trim().is_empty() {
                        return addr.trim().to_string();
                    }
                }
                assert!(std::time::Instant::now() < deadline, "no address in {path}");
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        };

        // Two backend daemons on ephemeral ports…
        let mut backend_files = Vec::new();
        let mut backend_threads = Vec::new();
        for i in 0..2 {
            let file = dir.join(format!("backend{i}.addr")).to_string_lossy().to_string();
            let args: Vec<String> = [
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--node",
                &format!("node{i}"),
                "--port-file",
                file.as_str(),
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            backend_threads.push(std::thread::spawn(move || serve(&args)));
            backend_files.push(file);
        }
        let to =
            backend_files.iter().map(|f| poll_addr(f)).collect::<Vec<_>>().join(",");

        // …behind one router.
        let router_file = dir.join("router.addr").to_string_lossy().to_string();
        let route_args: Vec<String> = [
            "--to",
            to.as_str(),
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            router_file.as_str(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let router_thread = std::thread::spawn(move || route(&route_args));

        let with_front = |extra: &[&str]| -> Vec<String> {
            ["--port-file", router_file.as_str()]
                .iter()
                .chain(extra)
                .map(|s| s.to_string())
                .collect()
        };
        // Jobs, a verdict, a byte-verified load, and the stats snapshot
        // all flow through the router tier.
        submit(&with_front(&["--kind", "run", "--seed", "3"])).unwrap();
        submit(&with_front(&["--kind", "authenticate"])).unwrap();
        submit(&with_front(&["--load", "6", "--concurrency", "2"])).unwrap();
        submit(&with_front(&["--kind", "stats"])).unwrap();
        submit(&with_front(&["--kind", "shutdown"])).unwrap();
        router_thread.join().unwrap().unwrap();
        for (file, thread) in backend_files.iter().zip(backend_threads) {
            let args: Vec<String> =
                ["--port-file", file.as_str(), "--kind", "shutdown"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
            submit(&args).unwrap();
            thread.join().unwrap().unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backend_endpoint_specs_parse() {
        assert!(matches!(
            backend_endpoint("127.0.0.1:7777"),
            Ok(am_service::Endpoint::Tcp(_))
        ));
        assert!(matches!(
            backend_endpoint("unix:/tmp/node.sock"),
            Ok(am_service::Endpoint::Unix(_))
        ));
        assert!(backend_endpoint("justahost").is_err());
        assert!(backend_endpoint("unix:").is_err());
        assert!(route(&["--to".into(), ",".into()]).is_err());
        assert!(route(&[]).is_err());
    }

    #[test]
    fn port_file_poll_times_out_with_a_clear_error() {
        let mut flags = HashMap::new();
        flags.insert("port-file".to_string(), "/nonexistent/daemon.addr".to_string());
        let err = submit_endpoint_within(&flags, std::time::Duration::from_millis(60)).unwrap_err();
        assert!(err.contains("--port-file /nonexistent/daemon.addr"), "{err}");
        assert!(err.contains("no daemon address appeared"), "{err}");
        // An explicit --uds bypasses the port file entirely.
        flags.insert("uds".to_string(), "/tmp/x.sock".to_string());
        assert!(matches!(
            submit_endpoint_within(&flags, std::time::Duration::from_millis(60)),
            Ok(am_service::Endpoint::Unix(_))
        ));
    }

    #[test]
    fn faults_command_lists_runs_and_rejects() {
        faults(&["--list".into()]).unwrap();
        // A catalog entry by name degrades the run but still completes.
        faults(&["stl-degenerate".into(), "--seed".into(), "3".into()]).unwrap();
        // A parsed multi-fault plan that misconfigures the slicer aborts
        // with a stage-named error.
        let err = faults(&["slicer.zero_layer".into()]).unwrap_err();
        assert!(err.contains("slice stage"), "{err}");
        // Garbage tokens are rejected by the parser.
        assert!(faults(&["stl.bogus=1".into()]).is_err());
    }
}
