//! `obfuscade` — the command-line front end of the ObfusCADe toolchain.
//!
//! ```text
//! obfuscade protect --part bar --out protected.stl [--resolution fine] [--intact]
//! obfuscade inspect protected.stl
//! obfuscade slice protected.stl --orientation xz --out part.gcode
//! obfuscade print part.gcode [--machine fdm|polyjet] [--seed 1]
//! obfuscade authenticate part.gcode
//! obfuscade faults --list
//! obfuscade faults "stl.degenerate=3 firmware.feed=50" --part prism
//! obfuscade audit
//! obfuscade report <experiment>|all
//! obfuscade sweep [--threads N] [--seed N] [--cache-stats]
//! obfuscade serve [--addr 127.0.0.1:7777] [--uds PATH] [--workers N] [--port-file FILE]
//!                 [--allow-remote-shutdown] [--node NAME]
//! obfuscade route --to EP1,EP2,EP3 [--addr 127.0.0.1:7878] [--policy affinity|round-robin]
//! obfuscade submit [--addr HOST:PORT] [--kind run|authenticate|stats|ping|shutdown]
//! obfuscade submit --load 200 --concurrency 8
//! obfuscade detect-roc [--quality lab,smartphone,room] [--jam 0,2.5] [--replicates N]
//! obfuscade bench [--smoke] [--serve] [--threads N] [--out FILE.json] [--check FILE.json]
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprint!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "protect" => commands::protect(rest),
        "inspect" => commands::inspect(rest),
        "slice" => commands::slice(rest),
        "print" => commands::print(rest),
        "preview" => commands::preview(rest),
        "authenticate" => commands::authenticate(rest),
        "faults" => commands::faults(rest),
        "audit" => commands::audit(rest),
        "report" => commands::report(rest),
        "sweep" => commands::sweep(rest),
        "serve" => commands::serve(rest),
        "route" => commands::route(rest),
        "submit" => commands::submit(rest),
        "detect-roc" => commands::detect_roc(rest),
        "bench" => commands::bench(rest),
        "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
