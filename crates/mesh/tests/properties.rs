//! Property-based tests for tessellation, STL round trips and tampering.

use am_cad::{Feature, Part, SolidShape};
use am_geom::{Aabb3, Point3, Tolerance};
use am_mesh::{
    analyze_topology, fingerprint, read_stl, scale_attack, tessellate_part, verify_fingerprint,
    weld_vertices, write_binary_stl, Resolution,
};
use proptest::prelude::*;

fn boxy() -> impl Strategy<Value = (f64, f64, f64)> {
    (2.0..50.0f64, 2.0..30.0f64, 2.0..30.0f64)
}

fn box_part(w: f64, h: f64, d: f64) -> am_cad::ResolvedPart {
    Part::new("box")
        .with_feature(Feature::Base(SolidShape::Cuboid(Aabb3::new(
            Point3::ZERO,
            Point3::new(w, h, d),
        ))))
        .unwrap()
        .resolve()
        .unwrap()
}

fn sphere_part(r: f64) -> am_cad::ResolvedPart {
    Part::new("sphere")
        .with_feature(Feature::Base(
            SolidShape::sphere(Point3::new(r + 1.0, r + 1.0, r + 1.0), r).unwrap(),
        ))
        .unwrap()
        .resolve()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn box_volume_exact_at_every_resolution((w, h, d) in boxy(), res_idx in 0usize..3) {
        let part = box_part(w, h, d);
        let mesh = tessellate_part(&part, &Resolution::ALL[res_idx].params());
        prop_assert_eq!(mesh.triangle_count(), 12);
        prop_assert!((mesh.signed_volume() - w * h * d).abs() < 1e-6);
        prop_assert!(analyze_topology(&mesh).is_watertight());
    }

    #[test]
    fn sphere_mesh_is_watertight_and_inscribed(r in 1.0..8.0f64, res_idx in 0usize..2) {
        let part = sphere_part(r);
        let mesh = tessellate_part(&part, &Resolution::ALL[res_idx].params());
        prop_assert!(analyze_topology(&mesh).is_watertight());
        let exact = 4.0 / 3.0 * std::f64::consts::PI * r.powi(3);
        let v = mesh.signed_volume();
        prop_assert!(v > 0.8 * exact && v < exact, "v {v} vs {exact}");
    }

    #[test]
    fn stl_round_trip_preserves_volume((w, h, d) in boxy()) {
        let mesh = tessellate_part(&box_part(w, h, d), &Resolution::Fine.params());
        let mut buf = Vec::new();
        write_binary_stl(&mesh, &mut buf).unwrap();
        let back = read_stl(&buf[..]).unwrap();
        prop_assert_eq!(back.triangle_count(), mesh.triangle_count());
        // f32 quantization: relative volume error stays tiny.
        let rel = (back.signed_volume() - mesh.signed_volume()).abs() / mesh.signed_volume();
        prop_assert!(rel < 1e-5, "rel {rel}");
    }

    #[test]
    fn welding_watertight_mesh_is_lossless((w, h, d) in boxy()) {
        let mesh = tessellate_part(&box_part(w, h, d), &Resolution::Fine.params());
        let (welded, report) = weld_vertices(&mesh, Tolerance::new(1e-6));
        prop_assert_eq!(report.triangles_dropped, 0);
        prop_assert!((welded.signed_volume() - mesh.signed_volume()).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_catches_any_scaling((w, h, d) in boxy(), factor in 0.5..1.5f64) {
        prop_assume!((factor - 1.0).abs() > 0.01);
        let mesh = tessellate_part(&box_part(w, h, d), &Resolution::Fine.params());
        let fp = fingerprint(&mesh);
        let attacked = scale_attack(&mesh, factor);
        prop_assert!(!verify_fingerprint(&attacked, &fp).is_empty());
        // And the honest copy always verifies.
        prop_assert!(verify_fingerprint(&mesh, &fp).is_empty());
    }

    #[test]
    fn components_count_scales_with_disjoint_bodies(n in 1usize..5) {
        let mut merged = am_mesh::TriMesh::new();
        for i in 0..n {
            let part = box_part(2.0, 2.0, 2.0);
            let mesh = tessellate_part(&part, &Resolution::Fine.params());
            let moved = mesh.transformed(&am_geom::Transform3::translation(
                am_geom::Vec3::new(i as f64 * 10.0, 0.0, 0.0),
            ));
            merged.merge(&moved);
        }
        prop_assert_eq!(merged.connected_components().len(), n);
    }
}
