//! Tessellation: CAD shells → triangle meshes at a chosen STL resolution.
//!
//! Each shell is tessellated **independently** — exactly like real CAD
//! exporters, and this is the property ObfusCADe exploits: two bodies that
//! share a spline boundary walk the curve in opposite directions, so their
//! chord breakpoints (and hence triangle corners) disagree along the seam
//! (Fig. 4 of the paper).

use am_cad::{ResolvedPart, Shell, ShellOrientation, SolidShape};
use am_geom::{triangulate_polygon, Point2, Point3, SubdivisionParams, Vec3};

use crate::{MeshBuilder, TriMesh};

/// Tessellates a single shell at the given resolution, honouring its
/// normal orientation (inward shells come out with flipped normals).
///
/// # Examples
///
/// ```
/// use am_cad::parts::{intact_prism, PrismDims};
/// use am_mesh::{tessellate_shell, Resolution};
///
/// let part = intact_prism(&PrismDims::default()).resolve()?;
/// let mesh = tessellate_shell(&part.shells()[0], &Resolution::Fine.params());
/// assert_eq!(mesh.triangle_count(), 12); // a box is always 12 facets
/// # Ok::<(), am_cad::CadError>(())
/// ```
pub fn tessellate_shell(shell: &Shell, params: &SubdivisionParams) -> TriMesh {
    let mesh = match &shell.shape {
        SolidShape::Extrusion { profile, z_min, z_max } => {
            tessellate_extrusion(&profile.polygonize(params), *z_min, *z_max)
        }
        SolidShape::Cuboid(b) => {
            let loop2 = vec![
                Point2::new(b.min.x, b.min.y),
                Point2::new(b.max.x, b.min.y),
                Point2::new(b.max.x, b.max.y),
                Point2::new(b.min.x, b.max.y),
            ];
            tessellate_extrusion(&loop2, b.min.z, b.max.z)
        }
        SolidShape::Sphere { center, radius } => tessellate_sphere(*center, *radius, params),
    };
    match shell.orientation {
        ShellOrientation::Outward => mesh,
        ShellOrientation::Inward => mesh.flipped(),
    }
}

/// Tessellates every shell of a resolved part separately.
pub fn tessellate_shells(part: &ResolvedPart, params: &SubdivisionParams) -> Vec<TriMesh> {
    part.shells().iter().map(|s| tessellate_shell(s, params)).collect()
}

/// Tessellates a resolved part into one merged mesh (the STL export).
///
/// Shells are *not* welded together: bodies keep their independent
/// tessellations, as in a real multi-body STL export.
pub fn tessellate_part(part: &ResolvedPart, params: &SubdivisionParams) -> TriMesh {
    let mut out = TriMesh::new();
    for shell in part.shells() {
        out.merge(&tessellate_shell(shell, params));
    }
    out
}

/// Tessellates a prism (vertex loop × z range) into a closed mesh.
fn tessellate_extrusion(loop2: &[Point2], z_min: f64, z_max: f64) -> TriMesh {
    assert!(loop2.len() >= 3, "extrusion loop needs at least three vertices");
    // Normalize to CCW so cap/wall winding is predictable.
    let ccw = {
        let n = loop2.len();
        let area2: f64 = (0..n).map(|i| loop2[i].cross(loop2[(i + 1) % n])).sum();
        area2 > 0.0
    };
    let pts: Vec<Point2> = if ccw { loop2.to_vec() } else { loop2.iter().rev().copied().collect() };

    let mut b = MeshBuilder::new();
    let n = pts.len();
    // Side walls.
    for i in 0..n {
        let p = pts[i];
        let q = pts[(i + 1) % n];
        let a0 = b.vertex(p.to_3d(z_min));
        let b0 = b.vertex(q.to_3d(z_min));
        let b1 = b.vertex(q.to_3d(z_max));
        let a1 = b.vertex(p.to_3d(z_max));
        if a0 != b0 {
            b.push_indices([a0, b0, b1]);
            b.push_indices([a0, b1, a1]);
        }
    }
    // Caps.
    let tris = triangulate_polygon(&pts);
    for [i, j, k] in tris {
        let (ti, tj, tk) = (
            b.vertex(pts[i].to_3d(z_max)),
            b.vertex(pts[j].to_3d(z_max)),
            b.vertex(pts[k].to_3d(z_max)),
        );
        b.push_indices([ti, tj, tk]); // top cap: +z normal, CCW from above
        let (bi, bj, bk) = (
            b.vertex(pts[i].to_3d(z_min)),
            b.vertex(pts[j].to_3d(z_min)),
            b.vertex(pts[k].to_3d(z_min)),
        );
        b.push_indices([bi, bk, bj]); // bottom cap: flipped
    }
    b.build()
}

/// Tessellates a UV sphere whose facet density satisfies the angle and
/// deviation tolerances.
fn tessellate_sphere(center: Point3, radius: f64, params: &SubdivisionParams) -> TriMesh {
    // Max step angle from the deviation bound: sagitta r·(1−cos(θ/2)) ≤ d.
    let dev_angle = if params.max_deviation() >= radius {
        std::f64::consts::PI
    } else {
        2.0 * (1.0 - params.max_deviation() / radius).acos()
    };
    let step = params.max_angle().min(dev_angle).max(1e-3);
    let slices = ((std::f64::consts::TAU / step).ceil() as usize).max(6);
    let stacks = ((std::f64::consts::PI / step).ceil() as usize).max(3);

    let mut b = MeshBuilder::new();
    // Ring vertices; poles handled separately.
    let ring_point = |stack: usize, slice: usize| -> Point3 {
        let phi = std::f64::consts::PI * stack as f64 / stacks as f64; // 0..π from +z pole
        let theta = std::f64::consts::TAU * slice as f64 / slices as f64;
        center
            + Vec3::new(
                radius * phi.sin() * theta.cos(),
                radius * phi.sin() * theta.sin(),
                radius * phi.cos(),
            )
    };
    let top = center + Vec3::new(0.0, 0.0, radius);
    let bottom = center - Vec3::new(0.0, 0.0, radius);

    for slice in 0..slices {
        let next = (slice + 1) % slices;
        // Top cap fan.
        let t = b.vertex(top);
        let a = b.vertex(ring_point(1, slice));
        let c = b.vertex(ring_point(1, next));
        b.push_indices([t, a, c]);
        // Bottom cap fan.
        let bo = b.vertex(bottom);
        let a2 = b.vertex(ring_point(stacks - 1, slice));
        let c2 = b.vertex(ring_point(stacks - 1, next));
        b.push_indices([bo, c2, a2]);
        // Body quads.
        for stack in 1..stacks - 1 {
            let p00 = b.vertex(ring_point(stack, slice));
            let p01 = b.vertex(ring_point(stack, next));
            let p10 = b.vertex(ring_point(stack + 1, slice));
            let p11 = b.vertex(ring_point(stack + 1, next));
            b.push_indices([p00, p10, p11]);
            b.push_indices([p00, p11, p01]);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Resolution;
    use am_cad::parts::{
        intact_prism, prism_with_sphere, tensile_bar, tensile_bar_with_spline, PrismDims,
        TensileBarDims,
    };
    use am_cad::{BodyKind, MaterialRemoval};

    #[test]
    fn box_is_twelve_facets_at_every_resolution() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        for res in Resolution::ALL {
            let mesh = tessellate_part(&part, &res.params());
            assert_eq!(mesh.triangle_count(), 12);
            let vol = mesh.signed_volume();
            assert!((vol - 25.4 * 12.7 * 12.7).abs() < 1e-6, "vol = {vol}");
        }
    }

    #[test]
    fn sphere_volume_converges_with_resolution() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
            .unwrap()
            .resolve()
            .unwrap();
        let exact = 4.0 / 3.0 * std::f64::consts::PI * dims.sphere_radius.powi(3);
        let mut errs = Vec::new();
        for res in Resolution::ALL {
            let meshes = tessellate_shells(&part, &res.params());
            // Shell 1 is the inward sphere: negative volume.
            let v = -meshes[1].signed_volume();
            errs.push((exact - v).abs() / exact);
            assert!(v > 0.0 && v < exact, "inscribed polyhedron volume {v} vs {exact}");
        }
        assert!(errs[0] > errs[1] && errs[1] > errs[2], "errors should shrink: {errs:?}");
    }

    #[test]
    fn finer_resolution_more_sphere_triangles() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
            .unwrap()
            .resolve()
            .unwrap();
        let counts: Vec<usize> = Resolution::ALL
            .iter()
            .map(|r| tessellate_part(&part, &r.params()).triangle_count())
            .collect();
        assert!(counts[0] < counts[1] && counts[1] < counts[2], "{counts:?}");
    }

    #[test]
    fn tensile_bar_volume_matches_cad() {
        let dims = TensileBarDims::default();
        let part = tensile_bar(&dims).unwrap().resolve().unwrap();
        let mesh = tessellate_part(&part, &Resolution::Fine.params());
        let cad_vol = part.net_volume(&Resolution::Fine.params());
        assert!((mesh.signed_volume() - cad_vol).abs() / cad_vol < 1e-9);
    }

    #[test]
    fn split_bar_bodies_conserve_volume() {
        let dims = TensileBarDims::default();
        let intact = tensile_bar(&dims).unwrap().resolve().unwrap();
        let split = tensile_bar_with_spline(&dims).unwrap().resolve().unwrap();
        for res in Resolution::ALL {
            let vi = tessellate_part(&intact, &res.params()).signed_volume();
            let vs = tessellate_part(&split, &res.params()).signed_volume();
            // The two tessellated halves may overlap/underlap slightly along
            // the seam (that *is* the exploit), so allow the gap scale.
            let tol = 40.0 * res.params().max_deviation() + 1e-6;
            assert!((vi - vs).abs() < tol, "{res}: intact {vi} split {vs}");
        }
    }

    #[test]
    fn inward_shell_has_negative_volume() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Surface, MaterialRemoval::Without)
            .unwrap()
            .resolve()
            .unwrap();
        let meshes = tessellate_shells(&part, &Resolution::Fine.params());
        assert!(meshes[0].signed_volume() > 0.0);
        assert!(meshes[1].signed_volume() < 0.0);
    }

    #[test]
    fn solid_and_surface_variants_have_equal_triangle_counts() {
        // The paper: "though the CAD file size for surface sphere and solid
        // sphere is different, the STL file size is the same."
        let dims = PrismDims::default();
        for removal in [MaterialRemoval::With, MaterialRemoval::Without] {
            let solid = prism_with_sphere(&dims, BodyKind::Solid, removal)
                .unwrap()
                .resolve()
                .unwrap();
            let surface = prism_with_sphere(&dims, BodyKind::Surface, removal)
                .unwrap()
                .resolve()
                .unwrap();
            for res in Resolution::ALL {
                let a = tessellate_part(&solid, &res.params()).triangle_count();
                let b = tessellate_part(&surface, &res.params()).triangle_count();
                assert_eq!(a, b, "{removal} at {res}");
            }
        }
    }

    #[test]
    fn with_removal_has_more_triangles_than_without() {
        let dims = PrismDims::default();
        let with = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::With)
            .unwrap()
            .resolve()
            .unwrap();
        let without = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
            .unwrap()
            .resolve()
            .unwrap();
        let params = Resolution::Fine.params();
        assert!(
            tessellate_part(&with, &params).triangle_count()
                > tessellate_part(&without, &params).triangle_count()
        );
    }
}
